//! Gravitational acceleration profile `g(r)` from the model's own density.
//!
//! Used by the solver's Cowling-approximation self-gravitation term. `g` is
//! obtained from the enclosed mass, `g(r) = G M(<r) / r²`, with the mass
//! integral done by composite Simpson quadrature per model region (so the
//! density discontinuities never fall inside a quadrature panel).

use crate::EarthModel;

/// Newtonian gravitational constant (SI).
pub const G_NEWTON: f64 = 6.674_30e-11;

/// Tabulated `g(r)` on a uniform radial grid with linear interpolation.
#[derive(Debug, Clone)]
pub struct GravityProfile {
    r_max: f64,
    g: Vec<f64>,
    mass_total: f64,
}

impl GravityProfile {
    /// Build the profile for `model` with `n` radial samples.
    pub fn new(model: &dyn EarthModel, n: usize) -> Self {
        assert!(n >= 16);
        let r_max = model.surface_radius();
        // Split integration at discontinuities.
        let mut edges = vec![0.0];
        edges.extend(model.discontinuities());
        edges.push(r_max);
        edges.dedup_by(|a, b| (*a - *b).abs() < 1.0);

        // Cumulative mass at the grid radii.
        let mut g = vec![0.0; n + 1];
        let dr = r_max / n as f64;
        let mut mass = 0.0;
        let mut prev_r = 0.0;
        for (i, gi) in g.iter_mut().enumerate().skip(1) {
            let r = dr * i as f64;
            mass += shell_mass(model, &edges, prev_r, r);
            *gi = G_NEWTON * mass / (r * r);
            prev_r = r;
        }
        g[0] = 0.0;
        Self {
            r_max,
            g,
            mass_total: mass,
        }
    }

    /// `g(r)` in m/s², linear interpolation; clamped at the surface.
    pub fn g_at(&self, r: f64) -> f64 {
        if r <= 0.0 {
            return 0.0;
        }
        if r >= self.r_max {
            // outside: point-mass field
            return G_NEWTON * self.mass_total / (r * r);
        }
        let n = self.g.len() - 1;
        let t = r / self.r_max * n as f64;
        let i = (t as usize).min(n - 1);
        let frac = t - i as f64;
        self.g[i] * (1.0 - frac) + self.g[i + 1] * frac
    }

    /// Total mass of the model (kg).
    pub fn total_mass(&self) -> f64 {
        self.mass_total
    }
}

/// Mass of the shell `[r0, r1]`, integrating region by region.
fn shell_mass(model: &dyn EarthModel, edges: &[f64], r0: f64, r1: f64) -> f64 {
    let mut total = 0.0;
    let mut a = r0;
    for &e in edges {
        if e <= a + 1e-9 {
            continue;
        }
        let b = e.min(r1);
        if b > a {
            total += simpson_shell(model, a, b);
            a = b;
        }
        if a >= r1 - 1e-9 {
            break;
        }
    }
    if a < r1 - 1e-9 {
        total += simpson_shell(model, a, r1);
    }
    total
}

/// ∫ 4π r² ρ(r) dr over `[a, b]` by composite Simpson with 8 panels.
fn simpson_shell(model: &dyn EarthModel, a: f64, b: f64) -> f64 {
    const PANELS: usize = 8;
    let h = (b - a) / (2 * PANELS) as f64;
    let f = |r: f64| {
        let rho = model.material_at(r.clamp(a, b), r > 0.5 * (a + b)).rho;
        4.0 * std::f64::consts::PI * r * r * rho
    };
    let mut acc = f(a) + f(b);
    for i in 1..2 * PANELS {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        acc += w * f(a + h * i as f64);
    }
    acc * h / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prem::{Prem, CMB_RADIUS_M, EARTH_RADIUS_M};
    use crate::HomogeneousModel;

    #[test]
    fn uniform_ball_gravity_is_linear_inside() {
        let m = HomogeneousModel {
            rho: 5000.0,
            vp: 8000.0,
            vs: 4500.0,
            radius: 6.0e6,
            q_mu: 600.0,
        };
        let prof = GravityProfile::new(&m, 256);
        // Inside a uniform ball g(r) = (4/3)πGρ r.
        let slope = 4.0 / 3.0 * std::f64::consts::PI * G_NEWTON * 5000.0;
        for &r in &[1.0e6, 3.0e6, 5.5e6] {
            let expect = slope * r;
            let got = prof.g_at(r);
            assert!((got - expect).abs() < 1e-3 * expect, "{got} vs {expect}");
        }
    }

    #[test]
    fn prem_total_mass_matches_earth() {
        let prem = Prem::default();
        let prof = GravityProfile::new(&prem, 512);
        // Earth mass ≈ 5.972e24 kg; PREM integrates to within ~0.5%.
        let m = prof.total_mass();
        assert!(
            (m - 5.972e24).abs() < 0.01 * 5.972e24,
            "PREM mass {m:.3e} kg"
        );
    }

    #[test]
    fn prem_surface_gravity_is_9_8() {
        let prem = Prem::default();
        let prof = GravityProfile::new(&prem, 512);
        let g = prof.g_at(EARTH_RADIUS_M);
        assert!((g - 9.81).abs() < 0.05, "surface g = {g}");
    }

    #[test]
    fn prem_gravity_peaks_near_cmb() {
        // Known PREM feature: g is larger at the CMB (~10.7 m/s²) than at
        // the surface because of the dense core.
        let prem = Prem::default();
        let prof = GravityProfile::new(&prem, 512);
        let g_cmb = prof.g_at(CMB_RADIUS_M);
        let g_surf = prof.g_at(EARTH_RADIUS_M);
        assert!(g_cmb > g_surf, "g(CMB) = {g_cmb}, g(surface) = {g_surf}");
        assert!((g_cmb - 10.68).abs() < 0.15, "g(CMB) = {g_cmb}");
    }

    #[test]
    fn gravity_zero_at_center_and_decays_outside() {
        let prem = Prem::default();
        let prof = GravityProfile::new(&prem, 256);
        assert_eq!(prof.g_at(0.0), 0.0);
        let g1 = prof.g_at(EARTH_RADIUS_M);
        let g2 = prof.g_at(2.0 * EARTH_RADIUS_M);
        assert!((g2 - g1 / 4.0).abs() < 0.01 * g1);
    }
}
