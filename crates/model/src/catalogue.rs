//! CMT-style earthquake sources and a small built-in catalogue.
//!
//! The paper's science runs simulate "a few seconds of an earthquake in
//! Argentina" (§6) from a centroid-moment-tensor solution. We bundle a
//! synthetic but physically plausible deep Argentina-like event plus two
//! other canonical mechanisms so examples and benchmarks have realistic
//! inputs without shipping proprietary catalogue data.

use crate::prem::EARTH_RADIUS_M;

/// Symmetric moment tensor in the local (r, θ, φ) spherical basis, N·m.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MomentTensor {
    pub m_rr: f64,
    pub m_tt: f64,
    pub m_pp: f64,
    pub m_rt: f64,
    pub m_rp: f64,
    pub m_tp: f64,
}

impl MomentTensor {
    /// Scalar moment `M0 = sqrt(Σ M_ij² / 2)` (N·m).
    pub fn scalar_moment(&self) -> f64 {
        let sum = self.m_rr * self.m_rr
            + self.m_tt * self.m_tt
            + self.m_pp * self.m_pp
            + 2.0 * (self.m_rt * self.m_rt + self.m_rp * self.m_rp + self.m_tp * self.m_tp);
        (sum / 2.0).sqrt()
    }

    /// Moment magnitude `Mw = (2/3)(log10 M0 − 9.1)`.
    pub fn magnitude(&self) -> f64 {
        2.0 / 3.0 * (self.scalar_moment().log10() - 9.1)
    }
}

/// A point moment-tensor source in geographic coordinates.
#[derive(Debug, Clone)]
pub struct CmtSource {
    /// Event name.
    pub name: String,
    /// Latitude, degrees north.
    pub lat_deg: f64,
    /// Longitude, degrees east.
    pub lon_deg: f64,
    /// Depth below surface, km.
    pub depth_km: f64,
    /// Moment tensor (r, θ, φ basis).
    pub tensor: MomentTensor,
    /// Half-duration of the source-time function, s.
    pub half_duration_s: f64,
}

impl CmtSource {
    /// Cartesian position (m), Earth-centred: z toward the north pole,
    /// x toward (lat, lon) = (0, 0).
    pub fn position(&self) -> [f64; 3] {
        let r = EARTH_RADIUS_M - self.depth_km * 1000.0;
        let theta = (90.0 - self.lat_deg).to_radians(); // colatitude
        let phi = self.lon_deg.to_radians();
        [
            r * theta.sin() * phi.cos(),
            r * theta.sin() * phi.sin(),
            r * theta.cos(),
        ]
    }

    /// The moment tensor rotated to the global Cartesian basis.
    ///
    /// Local unit vectors at (θ, φ): r̂ (up), θ̂ (south), φ̂ (east); the
    /// Cartesian tensor is `R M_local Rᵀ` with `R = [r̂ θ̂ φ̂]`.
    pub fn tensor_cartesian(&self) -> [[f64; 3]; 3] {
        let theta = (90.0 - self.lat_deg).to_radians();
        let phi = self.lon_deg.to_radians();
        let (st, ct) = (theta.sin(), theta.cos());
        let (sp, cp) = (phi.sin(), phi.cos());
        let rhat = [st * cp, st * sp, ct];
        let that = [ct * cp, ct * sp, -st];
        let phat = [-sp, cp, 0.0];
        let basis = [rhat, that, phat];
        let t = &self.tensor;
        let m_local = [
            [t.m_rr, t.m_rt, t.m_rp],
            [t.m_rt, t.m_tt, t.m_tp],
            [t.m_rp, t.m_tp, t.m_pp],
        ];
        let mut out = [[0.0; 3]; 3];
        for a in 0..3 {
            for b in 0..3 {
                let mut acc = 0.0;
                for i in 0..3 {
                    for j in 0..3 {
                        acc += basis[i][a] * m_local[i][j] * basis[j][b];
                    }
                }
                out[a][b] = acc;
            }
        }
        out
    }
}

/// Built-in synthetic events (magnitude ≥ 6.5, per the paper's note that
/// 1–2 s global phases need large earthquakes).
pub fn builtin_events() -> Vec<CmtSource> {
    vec![
        // Deep slab event under Santiago del Estero, Argentina — the same
        // kind of event as the §6 science runs.
        CmtSource {
            name: "argentina_deep".into(),
            lat_deg: -27.9,
            lon_deg: -63.1,
            depth_km: 600.0,
            tensor: MomentTensor {
                m_rr: 1.1e19,
                m_tt: -0.3e19,
                m_pp: -0.8e19,
                m_rt: 0.4e19,
                m_rp: -0.6e19,
                m_tp: 0.2e19,
            },
            half_duration_s: 8.0,
        },
        // Shallow megathrust-style event.
        CmtSource {
            name: "sumatra_thrust".into(),
            lat_deg: 3.3,
            lon_deg: 95.8,
            depth_km: 30.0,
            tensor: MomentTensor {
                m_rr: 3.0e19,
                m_tt: -1.0e19,
                m_pp: -2.0e19,
                m_rt: 2.2e19,
                m_rp: -1.1e19,
                m_tp: 0.5e19,
            },
            half_duration_s: 12.0,
        },
        // Continental strike-slip event.
        CmtSource {
            name: "denali_strike_slip".into(),
            lat_deg: 63.5,
            lon_deg: -147.4,
            depth_km: 15.0,
            tensor: MomentTensor {
                m_rr: 0.1e19,
                m_tt: -0.9e19,
                m_pp: 0.8e19,
                m_rt: 0.1e19,
                m_rp: -0.2e19,
                m_tp: 1.4e19,
            },
            half_duration_s: 10.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_events_are_large_earthquakes() {
        for ev in builtin_events() {
            let mw = ev.tensor.magnitude();
            assert!(mw >= 6.5, "{} has Mw {mw:.2} < 6.5", ev.name);
            assert!(ev.half_duration_s > 0.0);
        }
    }

    #[test]
    fn position_radius_accounts_for_depth() {
        let ev = &builtin_events()[0];
        let p = ev.position();
        let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
        assert!((r - (EARTH_RADIUS_M - 600_000.0)).abs() < 1.0);
        // Southern hemisphere → z < 0.
        assert!(p[2] < 0.0);
    }

    #[test]
    fn cartesian_tensor_is_symmetric_and_preserves_norm() {
        for ev in builtin_events() {
            let m = ev.tensor_cartesian();
            for a in 0..3 {
                for b in 0..3 {
                    assert!((m[a][b] - m[b][a]).abs() < 1e-3 * ev.tensor.scalar_moment());
                }
            }
            // Frobenius norm is rotation-invariant.
            let frob: f64 = m.iter().flatten().map(|v| v * v).sum();
            let m0 = ev.tensor.scalar_moment();
            assert!(((frob / 2.0).sqrt() - m0).abs() < 1e-6 * m0);
        }
    }

    #[test]
    fn trace_is_rotation_invariant() {
        let ev = &builtin_events()[1];
        let m = ev.tensor_cartesian();
        let trace_cart = m[0][0] + m[1][1] + m[2][2];
        let t = &ev.tensor;
        let trace_local = t.m_rr + t.m_tt + t.m_pp;
        assert!((trace_cart - trace_local).abs() < 1e-3 * t.scalar_moment());
    }

    #[test]
    fn equator_source_position() {
        let ev = CmtSource {
            name: "test".into(),
            lat_deg: 0.0,
            lon_deg: 0.0,
            depth_km: 0.0,
            tensor: builtin_events()[0].tensor,
            half_duration_s: 1.0,
        };
        let p = ev.position();
        assert!((p[0] - EARTH_RADIUS_M).abs() < 1e-6);
        assert!(p[1].abs() < 1e-6 && p[2].abs() < 1e-6);
    }
}
