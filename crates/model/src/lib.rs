//! Earth models and source descriptions for global wave propagation.
//!
//! SPECFEM3D_GLOBE populates its cubed-sphere mesh with material properties
//! from a reference Earth model. This crate provides:
//!
//! * the canonical radially symmetric **PREM** model (Dziewonski & Anderson
//!   1981) as piecewise polynomials in normalized radius, including its
//!   transversely isotropic upper-mantle region and quality factors;
//! * **attenuation** machinery — fitting a constant-Q absorption band with a
//!   series of standard linear solids, producing the relaxation times the
//!   solver's memory variables integrate (the physics behind the paper's
//!   "attenuation on → 1.8× runtime" observation, §6);
//! * **gravity** `g(r)` from the model's own mass distribution (used by the
//!   Cowling-approximation self-gravitation term);
//! * a deterministic smooth **3-D perturbation** layer standing in for the
//!   tomographic mantle models the production code loads;
//! * a small **earthquake catalogue** of CMT-style moment-tensor sources and
//!   the usual source-time functions, including a deep Argentina-like event
//!   matching the science runs of §6.

// Numeric kernels index several arrays with one loop variable by design.
#![allow(clippy::needless_range_loop)]

pub mod attenuation;
pub mod catalogue;
pub mod gravity;
pub mod linalg;
pub mod material;
pub mod model3d;
pub mod perturbation;
pub mod prem;
pub mod stf;

pub use attenuation::{AttenuationFit, AttenuationSpec, N_SLS};
pub use catalogue::{builtin_events, CmtSource, MomentTensor};
pub use gravity::GravityProfile;
pub use material::{ElasticModuli, Material, TransverseIsotropy};
pub use model3d::Prem3D;
pub use perturbation::Perturbation3D;
pub use prem::{
    Prem, Region, CMB_RADIUS_M, EARTH_RADIUS_M, ICB_RADIUS_M, MOHO_RADIUS_M, OCEAN_FLOOR_M, R670_M,
};
pub use stf::{SourceTimeFunction, StfKind};

/// A radially symmetric reference Earth model the mesher can sample.
///
/// Radii in metres from the Earth's centre; outputs in SI (kg/m³, m/s).
pub trait EarthModel: Sync {
    /// Material properties at radius `r` (metres). For points exactly on a
    /// discontinuity the property of the *lower* (deeper) side is returned
    /// when `from_below` is true, else the upper side.
    fn material_at(&self, r: f64, from_below: bool) -> Material;

    /// Material properties at a Cartesian position (metres) — laterally
    /// heterogeneous ("3-D") models override this; the default delegates
    /// to the radial profile.
    fn material_at_point(&self, p: [f64; 3], from_below: bool) -> Material {
        let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
        self.material_at(r, from_below)
    }

    /// Radii (metres, ascending) of first-order discontinuities the mesh must
    /// honour with element boundaries.
    fn discontinuities(&self) -> Vec<f64>;

    /// Outer radius of the model in metres.
    fn surface_radius(&self) -> f64;

    /// True if the shell `[r_in, r_out]` is fluid (vs == 0 throughout).
    fn is_fluid_shell(&self, r_in: f64, r_out: f64) -> bool {
        let rm = 0.5 * (r_in + r_out);
        self.material_at(rm, false).vs == 0.0
    }
}

/// A uniform solid ball — the "homogeneous Earth" used by validation tests
/// (plane-wave speed, energy conservation) where analytic answers exist.
#[derive(Debug, Clone)]
pub struct HomogeneousModel {
    /// Density, kg/m³.
    pub rho: f64,
    /// P-wave speed, m/s.
    pub vp: f64,
    /// S-wave speed, m/s.
    pub vs: f64,
    /// Outer radius, m.
    pub radius: f64,
    /// Shear quality factor.
    pub q_mu: f64,
}

impl Default for HomogeneousModel {
    fn default() -> Self {
        Self {
            rho: 3000.0,
            vp: 8000.0,
            vs: 4500.0,
            radius: EARTH_RADIUS_M,
            q_mu: 600.0,
        }
    }
}

impl EarthModel for HomogeneousModel {
    fn material_at(&self, _r: f64, _from_below: bool) -> Material {
        Material::isotropic(self.rho, self.vp, self.vs, self.q_mu, 57823.0)
    }

    fn discontinuities(&self) -> Vec<f64> {
        Vec::new()
    }

    fn surface_radius(&self) -> f64 {
        self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_model_is_uniform() {
        let m = HomogeneousModel::default();
        let a = m.material_at(1.0e6, false);
        let b = m.material_at(6.0e6, true);
        assert_eq!(a.rho, b.rho);
        assert_eq!(a.vp, b.vp);
        assert!(m.discontinuities().is_empty());
        assert!(!m.is_fluid_shell(0.0, m.surface_radius()));
    }
}
