//! Laterally heterogeneous ("3-D") Earth models: a radial reference model
//! plus a smooth lateral perturbation — the stand-in for the tomographic
//! mantle models production SPECFEM3D_GLOBE loads (paper title: "3D
//! anelastic, anisotropic, rotating and self-gravitating Earth models").

use crate::perturbation::Perturbation3D;
use crate::prem::Prem;
use crate::{EarthModel, Material};

/// PREM with a deterministic 3-D velocity perturbation in the mantle.
#[derive(Debug, Clone)]
pub struct Prem3D {
    /// The radial reference.
    pub reference: Prem,
    /// The lateral perturbation field δln v.
    pub perturbation: Perturbation3D,
    /// Density scaling: δln ρ = `density_ratio` · δln v_s (tomographic
    /// convention, typically ~0.3).
    pub density_ratio: f64,
}

impl Prem3D {
    /// Isotropic PREM + the default mantle perturbation.
    pub fn default_mantle() -> Self {
        Self {
            reference: Prem::isotropic_no_ocean(),
            perturbation: Perturbation3D::mantle_default(),
            density_ratio: 0.3,
        }
    }
}

impl EarthModel for Prem3D {
    fn material_at(&self, r: f64, from_below: bool) -> Material {
        // Radial-only callers get the reference model (perturbations
        // average to zero laterally).
        self.reference.material_at(r, from_below)
    }

    fn material_at_point(&self, p: [f64; 3], from_below: bool) -> Material {
        let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
        let mut m = self.reference.material_at(r, from_below);
        let dln = self.perturbation.dln_v(p[0], p[1], p[2]);
        if dln != 0.0 && !m.is_fluid() {
            m.vs *= 1.0 + dln;
            m.vp *= 1.0 + 0.5 * dln; // δln vp ≈ half δln vs (tomography)
            m.rho *= 1.0 + self.density_ratio * dln;
        }
        m
    }

    fn discontinuities(&self) -> Vec<f64> {
        self.reference.discontinuities()
    }

    fn surface_radius(&self) -> f64 {
        self.reference.surface_radius()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prem::{CMB_RADIUS_M, MOHO_RADIUS_M};

    #[test]
    fn radial_query_matches_reference() {
        let m3d = Prem3D::default_mantle();
        let r = 5.0e6;
        let a = m3d.material_at(r, false);
        let b = m3d.reference.material_at(r, false);
        assert_eq!(a.vs, b.vs);
    }

    #[test]
    fn lateral_variation_exists_in_mantle_only() {
        let m3d = Prem3D::default_mantle();
        let r = 0.5 * (CMB_RADIUS_M + MOHO_RADIUS_M);
        // Two points at the same radius, different longitude.
        let a = m3d.material_at_point([r, 0.0, 0.0], false);
        let b = m3d.material_at_point([0.0, r, 0.0], false);
        assert!(
            (a.vs - b.vs).abs() > 1.0,
            "no lateral variation: {} vs {}",
            a.vs,
            b.vs
        );
        // Fluid outer core untouched.
        let rc = 2.5e6;
        let f1 = m3d.material_at_point([rc, 0.0, 0.0], false);
        let f2 = m3d.material_at_point([0.0, rc, 0.0], false);
        assert_eq!(f1.vs, 0.0);
        assert!((f1.rho - f2.rho).abs() < 1e-9);
    }

    #[test]
    fn perturbations_are_bounded_and_sign_consistent() {
        let m3d = Prem3D::default_mantle();
        let r = 4.5e6;
        for i in 0..50 {
            let th = std::f64::consts::PI * (i as f64 + 0.5) / 50.0;
            let p = [r * th.sin(), 0.0, r * th.cos()];
            let m = m3d.material_at_point(p, false);
            let m0 = m3d.reference.material_at(r, false);
            let dv = m.vs / m0.vs - 1.0;
            assert!(dv.abs() < 0.03, "perturbation too large: {dv}");
            // Density moves with vs.
            let drho = m.rho / m0.rho - 1.0;
            if dv.abs() > 1e-6 {
                assert!(drho * dv > 0.0, "δρ and δvs must have the same sign");
            }
        }
    }
}
