//! Property-based tests of the Earth-model crate.

use proptest::prelude::*;
use specfem_model::{AttenuationFit, AttenuationSpec, EarthModel, Prem, EARTH_RADIUS_M};

proptest! {
    /// PREM returns finite, positive density and non-negative velocities
    /// everywhere inside the Earth, from both boundary sides.
    #[test]
    fn prem_is_physical_everywhere(
        frac in 0.0f64..1.0,
        from_below in any::<bool>(),
        ti in any::<bool>(),
    ) {
        let prem = Prem::new(true, ti);
        let m = prem.material_at(frac * EARTH_RADIUS_M, from_below);
        prop_assert!(m.rho.is_finite() && m.rho > 900.0 && m.rho < 14000.0);
        prop_assert!(m.vp.is_finite() && m.vp > 1000.0 && m.vp < 14000.0);
        prop_assert!(m.vs.is_finite() && m.vs >= 0.0 && m.vs < 8000.0);
        prop_assert!(m.kappa() > 0.0);
        prop_assert!(m.mu() >= 0.0);
        // vp > vs always (κ > 0).
        prop_assert!(m.vp > m.vs);
    }

    /// Fluid regions are exactly where μ = 0, and they match `is_fluid`.
    #[test]
    fn fluid_iff_zero_shear(frac in 0.0f64..1.0) {
        let prem = Prem::default();
        let m = prem.material_at(frac * EARTH_RADIUS_M, false);
        prop_assert_eq!(m.is_fluid(), m.mu() == 0.0);
    }

    /// The attenuation fit produces positive SLS coefficients and a valid
    /// relaxed-modulus ratio for any physical Q and band.
    #[test]
    fn attenuation_fit_is_valid(
        q in 40.0f64..1500.0,
        t_min in 1.0f64..60.0,
    ) {
        let fit = AttenuationFit::fit(AttenuationSpec::for_shortest_period(q, t_min));
        for &y in &fit.y {
            prop_assert!(y.is_finite());
            prop_assert!(y > 0.0, "y = {:?}", fit.y);
        }
        prop_assert!(fit.one_minus_sum_y > 0.0 && fit.one_minus_sum_y <= 1.0);
        // 1/Q at band centre within 30 % of the target (3 SLS ripple bound).
        let f_mid = (1.0 / t_min / 100.0 * (1.0 / t_min)).sqrt();
        let inv_q = fit.inv_q_at(2.0 * std::f64::consts::PI * f_mid);
        prop_assert!((inv_q * q - 1.0).abs() < 0.3, "Q error: {}", inv_q * q);
    }

    /// The fit is linear in 1/Q: doubling Q halves every coefficient.
    #[test]
    fn attenuation_fit_linear_in_inverse_q(q in 50.0f64..500.0) {
        let a = AttenuationFit::fit(AttenuationSpec::for_shortest_period(q, 10.0));
        let b = AttenuationFit::fit(AttenuationSpec::for_shortest_period(2.0 * q, 10.0));
        for j in 0..specfem_model::N_SLS {
            prop_assert!((a.y[j] - 2.0 * b.y[j]).abs() < 1e-9 * a.y[j].abs());
        }
    }

    /// Source-time functions stay finite and bounded for random times.
    #[test]
    fn stf_bounded(
        t in -10.0f64..1.0e4,
        hdur in 0.5f64..100.0,
    ) {
        use specfem_model::{SourceTimeFunction, StfKind};
        for kind in [StfKind::Gaussian, StfKind::Ricker, StfKind::SmoothedHeaviside] {
            let stf = SourceTimeFunction::new(kind, hdur);
            let v = stf.eval(t);
            prop_assert!(v.is_finite());
            let bound = match kind {
                StfKind::Gaussian => 1.0 / hdur, // α/√π < 1.63/hdur/1.77
                _ => 1.0 + 1e-9,
            };
            prop_assert!(v.abs() <= bound.max(1.0), "{kind:?}({t}) = {v}");
        }
    }
}
