//! `specfem-serve` — synthetics as a service.
//!
//! The paper's workflow is batch: configure, mesh, solve, collect
//! seismograms. This crate wraps the same [`Simulation`] pipeline in a
//! long-running daemon so repeated queries — the common case for
//! catalogue events and fixed station networks — are answered from a
//! **content-addressed result cache** instead of re-solved:
//!
//! * requests arrive over plain HTTP/1.1 ([`http`]) as JSON bodies,
//!   validated into typed 4xx errors ([`request`]) — no payload panics
//!   the daemon or silently defaults;
//! * each request is keyed by [`Simulation::result_key`] — a fingerprint
//!   of everything that determines the answer (geometry, model, source,
//!   stations, solver knobs) and nothing that doesn't (deadlines,
//!   checkpoint cadence, telemetry);
//! * misses are admitted through `specfem-campaign`'s priority scheduler
//!   and worker pool; identical concurrent requests **single-flight**
//!   into one solve, and every waiter is answered from the same cached
//!   value;
//! * with `BATCH_MAX_LANES > 1`, *distinct* concurrent misses that share
//!   a mesh and timeloop shape (different earthquakes or station sets)
//!   fuse into one multi-event solve via the campaign's batch packer —
//!   one mesh build and one time loop answer K requests, each lane
//!   bit-identical to its single-event answer;
//! * results land in a two-tier [`ResultCache`] (LRU memory + SFCN disk
//!   containers), so repeats are O(1) and survive daemon restarts;
//! * per-request deadlines bound the wait: the connection gets a typed
//!   `504 {"error":{"code":"deadline"}}` instead of hanging, and cold
//!   solves carry the deadline into the solver's straggler watchdog;
//! * `/health` and `/metrics` expose liveness, cache counters, and the
//!   process-global `specfem-obs` registry; completed solves are
//!   batched into run-ledger records.
//!
//! The protocol walkthrough lives in the workspace README ("Serving");
//! the load-test harness is `specfem-bench`'s `serve_load` binary
//! (EXPERIMENTS.md E-SERVE).

pub mod http;
pub mod request;

pub use request::{parse_request, ServeError, SimRequest};

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use specfem_campaign::{Campaign, CampaignConfig, Job};
use specfem_core::obs::ledger::{self, LedgerMachine, LedgerRecord, LEDGER_SCHEMA_VERSION};
use specfem_core::parfile::ServeKnobs;
use specfem_core::Simulation;
use specfem_io::{CachedResult, ResultCache, ResultCacheOutcome, ResultKey};
use specfem_obs::{
    global_counter_add, global_hist_record, global_snapshot, json_escape, metrics_json,
    perfetto_tracks, TraceId, Track, TrackEvent,
};

/// Daemon configuration. [`ServeConfig::from_knobs`] maps the Par_file
/// knobs (`SERVE_ADDR`, `RESULT_CACHE_BYTES`, `REQUEST_DEADLINE_MS`)
/// onto it.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP listen address; `127.0.0.1:0` picks a free port.
    pub addr: String,
    /// Memory-tier budget for the result cache.
    pub result_cache_bytes: usize,
    /// Default per-request deadline (`None` = wait forever); requests
    /// can override it with `deadline_ms`.
    pub request_deadline: Option<Duration>,
    /// Campaign worker-pool size; 0 = auto.
    pub workers: usize,
    /// Root for on-disk state; the result cache lives in
    /// `<data_dir>/results`.
    pub data_dir: PathBuf,
    /// Append a run-ledger record here after every
    /// [`ServeConfig::ledger_batch`] solves (and at shutdown); `None`
    /// disables the ledger.
    pub ledger_dir: Option<PathBuf>,
    /// Solves per ledger record.
    pub ledger_batch: usize,
    /// Max event lanes per fused solve (`BATCH_MAX_LANES`); 1 keeps
    /// every solve single-lane. Requests for the same mesh and
    /// timeloop shape but different sources/stations fuse into one
    /// K-event solve (bit-identical per lane to the serial answer).
    /// A request carrying a deadline runs single-lane regardless: its
    /// deadline becomes the solver watchdog, which is per-solve, and a
    /// fused solve must not let one lane's deadline kill its siblings.
    pub batch_max_lanes: usize,
    /// How long a worker holds an underfull batch open waiting for
    /// fusable queue mates (`BATCH_WINDOW_MS`); 0 = only fuse what is
    /// already queued.
    pub batch_window_ms: u64,
}

impl ServeConfig {
    /// Build from parsed Par_file knobs plus a state directory.
    pub fn from_knobs(knobs: &ServeKnobs, data_dir: impl Into<PathBuf>) -> Self {
        Self {
            addr: knobs.addr.clone(),
            result_cache_bytes: knobs.result_cache_bytes,
            request_deadline: match knobs.request_deadline_ms {
                0 => None,
                ms => Some(Duration::from_millis(ms)),
            },
            workers: 0,
            data_dir: data_dir.into(),
            ledger_dir: None,
            ledger_batch: 32,
            batch_max_lanes: knobs.batch_max_lanes,
            batch_window_ms: knobs.batch_window_ms,
        }
    }
}

/// What a waiter on an in-flight solve receives.
type WaitReply = Result<Arc<CachedResult>, String>;

/// Outcome of admission: a cache hit that raced in (`Ok`), or the
/// channel this request must wait on (`Err`).
type Admission = Result<(Arc<CachedResult>, ResultCacheOutcome), Receiver<WaitReply>>;

/// Batched ledger accounting for completed solves.
struct LedgerSink {
    dir: PathBuf,
    batch: usize,
    state: Mutex<LedgerBatch>,
}

struct LedgerBatch {
    started: Instant,
    solves: u64,
    failures: u64,
    element_steps: u64,
}

/// Completed solves the `GET /jobs` endpoint remembers (newest last).
const JOB_LOG_CAPACITY: usize = 256;
/// Stitched per-request timelines `GET /trace/<id>` can answer.
const TRACE_STORE_CAPACITY: usize = 64;

/// One completed solve, as `GET /jobs` reports it.
struct JobSummary {
    name: String,
    trace_id: Option<String>,
    ok: bool,
    error: Option<String>,
    attempts: usize,
    run_s: f64,
    element_steps: u64,
    dossier: Option<String>,
}

/// Shared daemon state: the cache, the single-flight table, and the
/// pipe into the scheduler thread.
struct Engine {
    cache: ResultCache,
    inflight: Mutex<HashMap<u64, Vec<Sender<WaitReply>>>>,
    jobs_tx: Mutex<Option<Sender<Job>>>,
    default_deadline: Option<Duration>,
    shutdown: AtomicBool,
    started: Instant,
    requests: AtomicU64,
    solves: AtomicU64,
    solve_errors: AtomicU64,
    workers: usize,
    ledger: Option<LedgerSink>,
    /// Ring of recent solve outcomes (`GET /jobs`).
    jobs_log: Mutex<VecDeque<JobSummary>>,
    /// Ring of `(trace id hex, stitched Perfetto JSON)` per traced solve
    /// (`GET /trace/<id>`).
    traces: Mutex<VecDeque<(String, String)>>,
}

impl Engine {
    /// Answer every waiter registered for `key` with `reply`.
    fn notify_waiters(&self, key: ResultKey, reply: &WaitReply) {
        let waiters = self
            .inflight
            .lock()
            .unwrap()
            .remove(&key.0)
            .unwrap_or_default();
        for tx in waiters {
            // A waiter that already timed out dropped its receiver; that
            // is its business, not an error here.
            let _ = tx.send(reply.clone());
        }
    }

    /// Completion hook, called from campaign worker threads: publish the
    /// outcome to the cache and wake the connections waiting on it.
    fn complete(&self, key: ResultKey, result: &Result<CachedResult, String>) {
        let reply = match result {
            Ok(cached) => {
                self.solves.fetch_add(1, Ordering::Relaxed);
                global_counter_add("serve.solves", 1);
                match self.cache.put(key, cached.clone()) {
                    Ok(arc) => Ok(arc),
                    // A full disk must not fail the request: serve the
                    // fresh result and let the next query re-solve.
                    Err(e) => {
                        global_counter_add("serve.cache_put_errors", 1);
                        eprintln!("serve: result cache put failed for {}: {e}", key.hex());
                        Ok(Arc::new(cached.clone()))
                    }
                }
            }
            Err(msg) => {
                self.solve_errors.fetch_add(1, Ordering::Relaxed);
                global_counter_add("serve.solve_errors", 1);
                Err(msg.clone())
            }
        };
        self.notify_waiters(key, &reply);
    }

    /// Fold one drained job outcome into the current ledger batch,
    /// flushing a record when the batch is full.
    fn record_outcome(&self, outcome: &specfem_campaign::JobOutcome) {
        let Some(sink) = &self.ledger else { return };
        let mut st = sink.state.lock().unwrap();
        st.solves += 1;
        st.element_steps += outcome.element_steps;
        if outcome.result.is_err() {
            st.failures += 1;
        }
        if st.solves >= sink.batch as u64 {
            self.flush_locked(sink, &mut st);
        }
    }

    /// Write any partial batch (shutdown path).
    fn flush_ledger(&self) {
        let Some(sink) = &self.ledger else { return };
        let mut st = sink.state.lock().unwrap();
        if st.solves > 0 {
            self.flush_locked(sink, &mut st);
        }
    }

    fn flush_locked(&self, sink: &LedgerSink, st: &mut LedgerBatch) {
        let mut extra = std::collections::BTreeMap::new();
        extra.insert("solve_failures".to_string(), st.failures as f64);
        let stats = self.cache.stats();
        extra.insert("cache_mem_hits".to_string(), stats.mem_hits as f64);
        extra.insert("cache_disk_hits".to_string(), stats.disk_hits as f64);
        extra.insert("cache_misses".to_string(), stats.misses as f64);
        extra.insert(
            "requests".to_string(),
            self.requests.load(Ordering::Relaxed) as f64,
        );
        let record = LedgerRecord {
            schema_version: LEDGER_SCHEMA_VERSION,
            harness: "serve_daemon".to_string(),
            ranks: self.workers.max(1),
            wall_s: st.started.elapsed().as_secs_f64(),
            comm_fraction: 0.0,
            imbalance: 0.0,
            bytes_sent: 0,
            bytes_received: 0,
            messages: 0,
            collectives: st.solves,
            element_steps: st.element_steps,
            phases: Vec::new(),
            machine: LedgerMachine::detect("none"),
            extra,
        };
        let path = sink.dir.join("BENCH_serve_daemon.json");
        if let Err(e) = ledger::append(&path, &record) {
            eprintln!("serve: ledger append failed: {e}");
        }
        *st = LedgerBatch {
            started: Instant::now(),
            solves: 0,
            failures: 0,
            element_steps: 0,
        };
    }

    /// Remember a finished solve for `GET /jobs`, and stitch its
    /// cross-layer timeline into the trace store when it ran under a
    /// correlation id. Runs on campaign worker threads via the
    /// completion hook.
    fn record_job(&self, outcome: &specfem_campaign::JobOutcome) {
        let summary = JobSummary {
            name: outcome.name.clone(),
            trace_id: outcome.telemetry.trace_id.clone(),
            ok: outcome.result.is_ok(),
            error: outcome.result.as_ref().err().cloned(),
            attempts: outcome.attempts,
            run_s: outcome.run_s,
            element_steps: outcome.element_steps,
            dossier: outcome.telemetry.dossier.clone(),
        };
        {
            let mut log = self.jobs_log.lock().unwrap();
            if log.len() == JOB_LOG_CAPACITY {
                log.pop_front();
            }
            log.push_back(summary);
        }
        if let Some(id) = &outcome.telemetry.trace_id {
            let json = stitch_timeline(outcome, id);
            let mut traces = self.traces.lock().unwrap();
            if traces.len() == TRACE_STORE_CAPACITY {
                traces.pop_front();
            }
            traces.push_back((id.clone(), json));
        }
    }

    /// Handle `GET /jobs`: recent solves, oldest first.
    fn jobs_json(&self) -> String {
        let log = self.jobs_log.lock().unwrap();
        let mut out = String::from("{\"jobs\":[");
        for (i, j) in log.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ok\":{},\"attempts\":{},\"run_s\":{:.6},\
                 \"element_steps\":{}",
                json_escape(&j.name),
                j.ok,
                j.attempts,
                j.run_s,
                j.element_steps
            ));
            if let Some(id) = &j.trace_id {
                out.push_str(&format!(",\"trace_id\":\"{}\"", json_escape(id)));
            }
            if let Some(e) = &j.error {
                out.push_str(&format!(",\"error\":\"{}\"", json_escape(e)));
            }
            if let Some(d) = &j.dossier {
                out.push_str(&format!(",\"dossier\":\"{}\"", json_escape(d)));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Handle `GET /trace/<id>`: the stitched Perfetto timeline of the
    /// solve that ran under that correlation id.
    fn trace_json(&self, id: &str) -> (u16, &'static str, String) {
        let traces = self.traces.lock().unwrap();
        match traces.iter().rev().find(|(k, _)| k == id) {
            Some((_, json)) => (200, "OK", json.clone()),
            None => {
                let e = ServeError {
                    status: 404,
                    code: "unknown_trace",
                    message: format!("no timeline stored for trace id {id}"),
                };
                (404, e.reason(), e.to_json())
            }
        }
    }

    /// Register for `key`'s in-flight solve (submitting the job when
    /// this is the first waiter), or return the cached value if the
    /// solve completed in the window since the caller's cache miss.
    fn wait_or_submit(
        &self,
        key: ResultKey,
        mut sim: Simulation,
        priority: i32,
        deadline: Option<Duration>,
        trace: TraceId,
    ) -> Result<Admission, ServeError> {
        let mut map = self.inflight.lock().unwrap();
        // Re-check under the lock: `complete` puts into the cache
        // *before* taking the waiter list, so either we see the value
        // here or our sender makes it into the list in time.
        let (hit, outcome) = self.cache.get(key);
        if let Some(value) = hit {
            return Ok(Ok((value, outcome)));
        }
        let entry = map.entry(key.0).or_default();
        let first = entry.is_empty();
        let (tx, rx) = unbounded();
        entry.push(tx);
        drop(map);
        if first {
            // Wire the request deadline into the solver's straggler
            // watchdog; the result key deliberately ignores it. Traced
            // rank spans are what `GET /trace/<id>` stitches, so solves
            // admitted by the daemon always record them (the key ignores
            // that knob too — hits and misses answer identically).
            sim.config.watchdog_timeout = deadline;
            sim.config.trace = true;
            let job = Job::new(format!("req_{}", key.hex()), sim)
                .priority(priority)
                .trace(trace);
            let sent = match &*self.jobs_tx.lock().unwrap() {
                Some(tx) => tx.send(job).is_ok(),
                None => false,
            };
            if !sent {
                self.inflight.lock().unwrap().remove(&key.0);
                return Err(ServeError {
                    status: 500,
                    code: "shutting_down",
                    message: "daemon is shutting down".to_string(),
                });
            }
        }
        Ok(Err(rx))
    }

    /// Handle `POST /simulate`: returns `(status, reason, body)`.
    fn simulate(&self, body: &[u8]) -> (u16, &'static str, String) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        global_counter_add("serve.requests", 1);
        // The request is an outermost entry point: every `/simulate`
        // gets its own correlation id, echoed in the response (success
        // or error) so the caller can come back for `GET /trace/<id>`.
        let trace = TraceId::mint();
        let t0 = Instant::now();
        let reply = self.simulate_inner(body, trace);
        global_hist_record("serve.latency_ms", t0.elapsed().as_millis() as u64);
        match reply {
            Ok(body) => (200, "OK", body),
            Err(e) => {
                global_counter_add("serve.request_errors", 1);
                (e.status, e.reason(), error_json(&e, trace))
            }
        }
    }

    fn simulate_inner(&self, body: &[u8], trace: TraceId) -> Result<String, ServeError> {
        let req = parse_request(body)?;
        let sim = req.build()?;
        let key = sim.result_key();
        let (hit, outcome) = self.cache.get(key);
        if let Some(value) = hit {
            global_counter_add(outcome_counter(outcome), 1);
            return Ok(result_json(key, trace, outcome.as_str(), &value));
        }
        let deadline = req
            .deadline_ms
            .map(Duration::from_millis)
            .or(self.default_deadline);
        let rx = match self.wait_or_submit(key, sim, req.priority, deadline, trace)? {
            Ok((value, outcome)) => {
                global_counter_add(outcome_counter(outcome), 1);
                return Ok(result_json(key, trace, outcome.as_str(), &value));
            }
            Err(rx) => rx,
        };
        let received = match deadline {
            Some(d) => rx.recv_timeout(d).map_err(|e| match e {
                RecvTimeoutError::Timeout => {
                    global_counter_add("serve.deadline_timeouts", 1);
                    ServeError {
                        status: 504,
                        code: "deadline",
                        message: format!("no result within {} ms", d.as_millis()),
                    }
                }
                RecvTimeoutError::Disconnected => shutdown_error(),
            })?,
            None => rx.recv().map_err(|_| shutdown_error())?,
        };
        match received {
            Ok(value) => {
                global_counter_add("serve.cache_misses_solved", 1);
                Ok(result_json(
                    key,
                    trace,
                    ResultCacheOutcome::Miss.as_str(),
                    &value,
                ))
            }
            Err(msg) => {
                // A watchdog trip is the deadline surfacing from inside
                // the solver — report it as the same typed timeout.
                if msg.contains("watchdog") || msg.contains("Stalled") {
                    Err(ServeError {
                        status: 504,
                        code: "deadline",
                        message: msg,
                    })
                } else {
                    Err(ServeError {
                        status: 500,
                        code: "solver",
                        message: msg,
                    })
                }
            }
        }
    }

    /// Handle `GET /health`.
    fn health_json(&self) -> String {
        let stats = self.cache.stats();
        format!(
            "{{\"status\":\"ok\",\"uptime_s\":{:.3},\"requests\":{},\"solves\":{},\
             \"solve_errors\":{},\"in_flight\":{},\"cache\":{{\"mem_hits\":{},\
             \"disk_hits\":{},\"misses\":{},\"inserts\":{},\"evictions\":{},\
             \"memory_bytes\":{}}}}}",
            self.started.elapsed().as_secs_f64(),
            self.requests.load(Ordering::Relaxed),
            self.solves.load(Ordering::Relaxed),
            self.solve_errors.load(Ordering::Relaxed),
            self.inflight.lock().unwrap().len(),
            stats.mem_hits,
            stats.disk_hits,
            stats.misses,
            stats.inserts,
            stats.evictions,
            self.cache.memory_bytes(),
        )
    }
}

/// Stitch one solve into a single cross-layer Perfetto timeline: a
/// `request` track spanning the job's life in the worker (queue handoff
/// to completion), plus one track per solver rank carrying its recorded
/// spans. Every layer shares the process trace epoch, so the rows line
/// up on one wall-clock axis.
fn stitch_timeline(o: &specfem_campaign::JobOutcome, trace_id: &str) -> String {
    let mut tracks = vec![Track {
        name: "request".to_string(),
        tid: 0,
        events: vec![TrackEvent {
            name: format!(
                "{} [trace {}, {}{}]",
                o.name,
                trace_id,
                o.cache.as_str(),
                if o.attempts > 1 {
                    format!(", {} attempts", o.attempts)
                } else {
                    String::new()
                }
            ),
            start_ns: o.start_ns,
            dur_ns: o.end_ns.saturating_sub(o.start_ns),
            depth: 0,
        }],
    }];
    if let Ok(res) = &o.result {
        for r in &res.ranks {
            if let Some(profile) = &r.profile {
                tracks.push(Track {
                    name: format!("rank {}", r.rank),
                    tid: 1 + r.rank,
                    events: profile
                        .trace
                        .events
                        .iter()
                        .map(|e| TrackEvent {
                            name: e.name.to_string(),
                            start_ns: e.start_ns,
                            dur_ns: e.dur_ns,
                            depth: e.depth,
                        })
                        .collect(),
                });
            }
        }
    }
    perfetto_tracks(&tracks)
}

fn outcome_counter(outcome: ResultCacheOutcome) -> &'static str {
    match outcome {
        ResultCacheOutcome::MemHit => "serve.mem_hits",
        ResultCacheOutcome::DiskHit => "serve.disk_hits",
        ResultCacheOutcome::Miss => "serve.misses",
    }
}

/// An error response body carrying the request's correlation id.
fn error_json(e: &ServeError, trace: TraceId) -> String {
    format!(
        "{{\"error\":{{\"code\":\"{}\",\"message\":\"{}\"}},\"trace_id\":\"{}\"}}",
        e.code,
        json_escape(&e.message),
        trace.hex()
    )
}

fn shutdown_error() -> ServeError {
    ServeError {
        status: 500,
        code: "shutting_down",
        message: "daemon shut down before the solve finished".to_string(),
    }
}

/// Serialize one result. `f32`/`f64` `Display` is shortest-round-trip,
/// so `value → JSON → parse → cast` reproduces the exact bits — the
/// differential tests compare `to_bits` across this boundary.
fn result_json(key: ResultKey, trace: TraceId, cache: &str, r: &CachedResult) -> String {
    let mut out = String::with_capacity(256 + r.approx_bytes());
    out.push_str(&format!(
        "{{\"key\":\"{}\",\"trace_id\":\"{}\",\"cache\":\"{cache}\",\
         \"element_steps\":{},\"seismograms\":[",
        key.hex(),
        trace.hex(),
        r.element_steps
    ));
    for (i, s) in r.seismograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"station\":\"{}\",\"dt\":{},\"data\":[",
            specfem_obs::json_escape(&s.station),
            s.dt
        ));
        for (j, sample) in s.data.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{},{}]", sample[0], sample[1], sample[2]));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// A running daemon. Dropping the handle shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<Engine>,
    accept: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the daemon stops (a `POST /shutdown` arrives), then
    /// finish cleanly: drain the scheduler and flush the ledger.
    pub fn join(mut self) {
        self.finish();
    }

    /// Stop the daemon from this side (the programmatic equivalent of
    /// `POST /shutdown`).
    pub fn shutdown(mut self) {
        self.engine.shutdown.store(true, Ordering::SeqCst);
        self.finish();
    }

    fn finish(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Closing the job channel lets the scheduler run the campaign
        // down and exit.
        *self.engine.jobs_tx.lock().unwrap() = None;
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
        self.engine.flush_ledger();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.engine.shutdown.store(true, Ordering::SeqCst);
        self.finish();
    }
}

/// Bind, spawn the scheduler and accept threads, and return the handle.
pub fn serve(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let cache = ResultCache::new(cfg.data_dir.join("results"), cfg.result_cache_bytes)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    let (jobs_tx, jobs_rx) = unbounded::<Job>();
    let engine = Arc::new(Engine {
        cache,
        inflight: Mutex::new(HashMap::new()),
        jobs_tx: Mutex::new(Some(jobs_tx)),
        default_deadline: cfg.request_deadline,
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        requests: AtomicU64::new(0),
        solves: AtomicU64::new(0),
        solve_errors: AtomicU64::new(0),
        workers: cfg.workers,
        ledger: cfg.ledger_dir.map(|dir| LedgerSink {
            dir,
            batch: cfg.ledger_batch.max(1),
            state: Mutex::new(LedgerBatch {
                started: Instant::now(),
                solves: 0,
                failures: 0,
                element_steps: 0,
            }),
        }),
        jobs_log: Mutex::new(VecDeque::new()),
        traces: Mutex::new(VecDeque::new()),
    });

    let scheduler = {
        let engine = Arc::clone(&engine);
        let campaign_cfg = CampaignConfig {
            workers: cfg.workers,
            queue_capacity: (cfg.workers.max(1)) * 4,
            ..CampaignConfig::default()
        }
        .batching(
            cfg.batch_max_lanes,
            Duration::from_millis(cfg.batch_window_ms),
        );
        std::thread::spawn(move || scheduler_loop(engine, jobs_rx, campaign_cfg))
    };
    let accept = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || accept_loop(listener, engine))
    };
    Ok(ServerHandle {
        addr,
        engine,
        accept: Some(accept),
        scheduler: Some(scheduler),
    })
}

/// Own the campaign: admit jobs off the channel, wake waiters via the
/// completion callback, and fold drained outcomes into ledger batches.
/// With `batch_max_lanes > 1` in the config, compatible concurrent
/// requests (same mesh + timeloop shape, different sources/stations)
/// fuse into one K-event solve inside the campaign's worker pool.
fn scheduler_loop(engine: Arc<Engine>, jobs_rx: Receiver<Job>, cfg: CampaignConfig) {
    let mut campaign = Campaign::new(cfg);
    {
        let engine = Arc::clone(&engine);
        campaign.on_completion(move |outcome| {
            engine.record_job(outcome);
            let Some(hex) = outcome.name.strip_prefix("req_") else {
                return;
            };
            let Ok(bits) = u64::from_str_radix(hex, 16) else {
                return;
            };
            let result = outcome
                .result
                .as_ref()
                .map_err(Clone::clone)
                .map(|r| CachedResult {
                    seismograms: r.seismograms.clone(),
                    element_steps: outcome.element_steps,
                });
            engine.complete(ResultKey(bits), &result);
        });
    }
    loop {
        match jobs_rx.recv_timeout(Duration::from_millis(200)) {
            Ok(job) => campaign.submit(job),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        for outcome in campaign.drain() {
            engine.record_outcome(&outcome);
        }
    }
    for outcome in campaign.finish().outcomes {
        engine.record_outcome(&outcome);
    }
}

/// Accept connections until shutdown; one thread per connection.
fn accept_loop(listener: TcpListener, engine: Arc<Engine>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !engine.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let engine = Arc::clone(&engine);
                conns.push(std::thread::spawn(move || {
                    handle_connection(stream, engine)
                }));
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Serve one connection: read a request, route it, answer, close.
fn handle_connection(stream: TcpStream, engine: Arc<Engine>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let req = match http::read_request(&mut reader) {
        Ok(req) => req,
        Err(http::HttpError::Closed) => return,
        Err(e) => {
            let err = ServeError::bad_request("http", e.to_string());
            let _ = http::write_response(&mut writer, 400, "Bad Request", &err.to_json());
            return;
        }
    };
    let (status, reason, body) = route(&engine, &req);
    let _ = http::write_response(&mut writer, status, reason, &body);
    let _ = writer.flush();
}

fn route(engine: &Arc<Engine>, req: &http::Request) -> (u16, &'static str, String) {
    let t0 = Instant::now();
    let reply = route_inner(engine, req);
    // Per-route × per-outcome request latency. The label set is bounded:
    // unknown paths all share the "other" row, so a scanner cannot grow
    // the registry, and hostile path bytes are escaped by `metrics_json`
    // anyway.
    let route_label = match req.path.as_str() {
        "/health" | "/metrics" | "/simulate" | "/shutdown" | "/jobs" => req.path.as_str(),
        p if p.starts_with("/trace/") => "/trace",
        _ => "other",
    };
    global_hist_record(
        format!(
            "serve.latency_ms{{route=\"{route_label}\",outcome=\"{}\"}}",
            reply.0
        ),
        t0.elapsed().as_millis() as u64,
    );
    reply
}

fn route_inner(engine: &Arc<Engine>, req: &http::Request) -> (u16, &'static str, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => (200, "OK", engine.health_json()),
        ("GET", "/metrics") => (200, "OK", metrics_json(&global_snapshot())),
        ("GET", "/jobs") => (200, "OK", engine.jobs_json()),
        ("GET", path) if path.starts_with("/trace/") => {
            engine.trace_json(path.trim_start_matches("/trace/"))
        }
        ("POST", "/simulate") => engine.simulate(&req.body),
        ("POST", "/shutdown") => {
            engine.shutdown.store(true, Ordering::SeqCst);
            (200, "OK", "{\"status\":\"shutting_down\"}".to_string())
        }
        ("GET" | "POST", "/health" | "/metrics" | "/simulate" | "/shutdown" | "/jobs") => {
            let e = ServeError {
                status: 405,
                code: "method_not_allowed",
                message: format!("{} not allowed on {}", req.method, req.path),
            };
            (405, e.reason(), e.to_json())
        }
        (_, path) => {
            let e = ServeError {
                status: 404,
                code: "not_found",
                message: format!("no such endpoint: {path}"),
            };
            (404, e.reason(), e.to_json())
        }
    }
}

/// Blocking HTTP client helpers — shared by the tests, the CI smoke
/// job, and the `serve_load` harness.
pub mod client {
    use super::http::{self, HttpError};
    use std::io::{BufReader, Write};
    use std::net::{SocketAddr, TcpStream};

    fn roundtrip(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, String), HttpError> {
        let stream = TcpStream::connect(addr).map_err(|e| HttpError::Io(e.to_string()))?;
        let mut writer = stream
            .try_clone()
            .map_err(|e| HttpError::Io(e.to_string()))?;
        write!(
            writer,
            "{method} {path} HTTP/1.1\r\nHost: specfem\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .map_err(|e| HttpError::Io(e.to_string()))?;
        writer.flush().map_err(|e| HttpError::Io(e.to_string()))?;
        http::read_response(&mut BufReader::new(stream))
    }

    /// `GET` the path, returning `(status, body)`.
    pub fn get(addr: SocketAddr, path: &str) -> Result<(u16, String), HttpError> {
        roundtrip(addr, "GET", path, "")
    }

    /// `POST` a JSON body, returning `(status, body)`.
    pub fn post(addr: SocketAddr, path: &str, body: &str) -> Result<(u16, String), HttpError> {
        roundtrip(addr, "POST", path, body)
    }
}
