//! Request validation: JSON body → [`Simulation`], or a typed 4xx.
//!
//! The contract the fuzz tests enforce: **no byte sequence panics, and
//! nothing silently defaults**. Every field is either absent (documented
//! default), well-typed and in range (used), or a [`ServeError`] with a
//! machine-readable code. Unknown fields are rejected rather than
//! ignored so a typo'd knob (`"atenuation"`) fails loudly instead of
//! quietly running the wrong physics.

use serde_json::Value;
use specfem_core::{KernelVariant, ModelChoice, Simulation, Station};
use specfem_obs::json_escape;

/// Hard ceilings on request size — a public daemon must bound the work
/// a single body can demand.
pub const MAX_RESOLUTION: usize = 512;
/// See [`MAX_RESOLUTION`].
pub const MAX_STEPS: usize = 1_000_000;
/// See [`MAX_RESOLUTION`].
pub const MAX_STATIONS: usize = 10_000;

/// A request rejection: an HTTP status plus a stable machine-readable
/// code. Serialized as `{"error":{"code":…,"message":…}}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// HTTP status (400 family for caller mistakes, 504 for deadlines,
    /// 500 for solver failures).
    pub status: u16,
    /// Stable identifier clients can branch on (`bad_json`,
    /// `unknown_field`, `out_of_range`, `deadline`, …).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ServeError {
    /// A 400 with the given code.
    pub fn bad_request(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            status: 400,
            code,
            message: message.into(),
        }
    }

    /// Render as the error response body.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"error\":{{\"code\":\"{}\",\"message\":\"{}\"}}}}",
            self.code,
            json_escape(&self.message)
        )
    }

    /// HTTP reason phrase for the status line.
    pub fn reason(&self) -> &'static str {
        match self.status {
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            504 => "Gateway Timeout",
            _ => "Error",
        }
    }
}

/// A validated `/simulate` request, ready to build.
#[derive(Debug, Clone)]
pub struct SimRequest {
    /// Mesh resolution (`NEX_XI`).
    pub resolution: usize,
    /// Timeloop length.
    pub steps: usize,
    /// Earth model.
    pub model: ModelChoice,
    /// Catalogue event name, when given.
    pub event: Option<String>,
    /// Explicit station list; empty means use `nstations`.
    pub stations: Vec<Station>,
    /// Evenly-distributed station count when no explicit list came.
    pub nstations: usize,
    /// Physics toggles.
    pub attenuation: bool,
    /// See `attenuation`.
    pub rotation: bool,
    /// See `attenuation`.
    pub gravity: bool,
    /// See `attenuation`.
    pub oceans: bool,
    /// Force kernel variant.
    pub kernel: KernelVariant,
    /// Per-request deadline override in ms (`None` = server default).
    pub deadline_ms: Option<u64>,
    /// Scheduling priority (higher runs earlier).
    pub priority: i32,
}

fn field_u64(obj: &Value, key: &'static str, max: u64) -> Result<Option<u64>, ServeError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => {
            let n = v.as_u64().ok_or_else(|| {
                ServeError::bad_request(
                    "bad_type",
                    format!("{key}: expected a non-negative integer"),
                )
            })?;
            if n > max {
                return Err(ServeError::bad_request(
                    "out_of_range",
                    format!("{key}: {n} exceeds the limit of {max}"),
                ));
            }
            Ok(Some(n))
        }
    }
}

fn field_bool(obj: &Value, key: &'static str) -> Result<Option<bool>, ServeError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v.as_bool().map(Some).ok_or_else(|| {
            ServeError::bad_request("bad_type", format!("{key}: expected a boolean"))
        }),
    }
}

fn field_str<'a>(obj: &'a Value, key: &'static str) -> Result<Option<&'a str>, ServeError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v.as_str().map(Some).ok_or_else(|| {
            ServeError::bad_request("bad_type", format!("{key}: expected a string"))
        }),
    }
}

fn finite_deg(
    v: &Value,
    key: &'static str,
    lo: f64,
    hi: f64,
    station: &str,
) -> Result<f64, ServeError> {
    let x = v.as_f64().ok_or_else(|| {
        ServeError::bad_request(
            "bad_type",
            format!("station {station}: {key} must be a number"),
        )
    })?;
    if !x.is_finite() || !(lo..=hi).contains(&x) {
        return Err(ServeError::bad_request(
            "out_of_range",
            format!("station {station}: {key} = {x} outside [{lo}, {hi}]"),
        ));
    }
    Ok(x)
}

const KNOWN_FIELDS: &[&str] = &[
    "resolution",
    "steps",
    "model",
    "event",
    "stations",
    "nstations",
    "attenuation",
    "rotation",
    "gravity",
    "oceans",
    "kernel",
    "deadline_ms",
    "priority",
];

/// Parse and validate a `/simulate` body.
pub fn parse_request(body: &[u8]) -> Result<SimRequest, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServeError::bad_request("bad_json", "body is not UTF-8"))?;
    let root = serde_json::from_str(text)
        .map_err(|e| ServeError::bad_request("bad_json", format!("invalid JSON: {e}")))?;
    let obj = root
        .as_object()
        .ok_or_else(|| ServeError::bad_request("bad_request", "body must be a JSON object"))?;
    for key in obj.keys() {
        if !KNOWN_FIELDS.contains(&key.as_str()) {
            return Err(ServeError::bad_request(
                "unknown_field",
                format!("unknown field: {key}"),
            ));
        }
    }

    let resolution = field_u64(&root, "resolution", MAX_RESOLUTION as u64)?
        .ok_or_else(|| ServeError::bad_request("missing_field", "resolution is required"))?
        as usize;
    let steps = field_u64(&root, "steps", MAX_STEPS as u64)?
        .ok_or_else(|| ServeError::bad_request("missing_field", "steps is required"))?
        as usize;
    if steps == 0 {
        return Err(ServeError::bad_request(
            "out_of_range",
            "steps must be >= 1",
        ));
    }

    let model = match field_str(&root, "model")? {
        None | Some("prem_iso") => ModelChoice::IsotropicPrem,
        Some("prem") => ModelChoice::Prem,
        Some("prem_3d") => ModelChoice::Prem3D,
        Some("homogeneous") => ModelChoice::Homogeneous,
        Some(other) => {
            return Err(ServeError::bad_request(
                "unknown_model",
                format!("unknown model: {other} (expected prem, prem_iso, prem_3d, homogeneous)"),
            ))
        }
    };
    let kernel = match field_str(&root, "kernel")? {
        None | Some("reference") => KernelVariant::Reference,
        Some("simd") => KernelVariant::Simd,
        Some("blas") => KernelVariant::BlasStyle,
        Some(other) => {
            return Err(ServeError::bad_request(
                "unknown_kernel",
                format!("unknown kernel: {other} (expected reference, simd, blas)"),
            ))
        }
    };

    let event = field_str(&root, "event")?.map(str::to_string);

    let mut stations = Vec::new();
    let mut nstations = 0usize;
    let stations_given = root.get("stations").is_some();
    match root.get("stations") {
        None => {}
        Some(v) => {
            if let Some(n) = v.as_u64() {
                if n > MAX_STATIONS as u64 {
                    return Err(ServeError::bad_request(
                        "out_of_range",
                        format!("stations: {n} exceeds the limit of {MAX_STATIONS}"),
                    ));
                }
                nstations = n as usize;
            } else if let Some(list) = v.as_array() {
                if list.len() > MAX_STATIONS {
                    return Err(ServeError::bad_request(
                        "out_of_range",
                        format!(
                            "stations: {} entries exceed the limit of {MAX_STATIONS}",
                            list.len()
                        ),
                    ));
                }
                for (i, entry) in list.iter().enumerate() {
                    let name = entry
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or_else(|| {
                            ServeError::bad_request(
                                "bad_type",
                                format!("station {i}: name must be a string"),
                            )
                        })?
                        .to_string();
                    if name.is_empty() || name.len() > 64 {
                        return Err(ServeError::bad_request(
                            "out_of_range",
                            format!("station {i}: name must be 1..=64 bytes"),
                        ));
                    }
                    let lat = entry.get("lat_deg").ok_or_else(|| {
                        ServeError::bad_request(
                            "missing_field",
                            format!("station {name}: lat_deg is required"),
                        )
                    })?;
                    let lon = entry.get("lon_deg").ok_or_else(|| {
                        ServeError::bad_request(
                            "missing_field",
                            format!("station {name}: lon_deg is required"),
                        )
                    })?;
                    stations.push(Station {
                        lat_deg: finite_deg(lat, "lat_deg", -90.0, 90.0, &name)?,
                        lon_deg: finite_deg(lon, "lon_deg", -180.0, 360.0, &name)?,
                        name,
                    });
                }
            } else {
                return Err(ServeError::bad_request(
                    "bad_type",
                    "stations: expected a count or an array of {name, lat_deg, lon_deg}",
                ));
            }
        }
    }
    if let Some(n) = field_u64(&root, "nstations", MAX_STATIONS as u64)? {
        if stations_given {
            return Err(ServeError::bad_request(
                "bad_request",
                "give either stations or nstations, not both",
            ));
        }
        nstations = n as usize;
    }

    let priority = match root.get("priority") {
        None => 0,
        Some(v) => {
            let p = v.as_i64().ok_or_else(|| {
                ServeError::bad_request("bad_type", "priority: expected an integer")
            })?;
            i32::try_from(p).map_err(|_| {
                ServeError::bad_request("out_of_range", format!("priority: {p} outside i32"))
            })?
        }
    };

    Ok(SimRequest {
        resolution,
        steps,
        model,
        event,
        stations,
        nstations,
        attenuation: field_bool(&root, "attenuation")?.unwrap_or(false),
        rotation: field_bool(&root, "rotation")?.unwrap_or(false),
        gravity: field_bool(&root, "gravity")?.unwrap_or(false),
        oceans: field_bool(&root, "oceans")?.unwrap_or(false),
        kernel,
        deadline_ms: field_u64(&root, "deadline_ms", u64::MAX / 2)?,
        priority,
    })
}

impl SimRequest {
    /// Build the [`Simulation`]; builder-level rejections (resolution too
    /// low, unknown event, …) become 400s with code `build`.
    pub fn build(&self) -> Result<Simulation, ServeError> {
        let mut b = Simulation::builder()
            .resolution(self.resolution)
            .steps(self.steps)
            .model(self.model.clone())
            .attenuation(self.attenuation)
            .rotation(self.rotation)
            .gravity(self.gravity)
            .ocean_load(self.oceans)
            .kernel(self.kernel);
        if let Some(event) = &self.event {
            b = b.catalogue_event(event);
        }
        b = if self.stations.is_empty() {
            b.stations(self.nstations)
        } else {
            b.station_list(self.stations.clone())
        };
        b.build()
            .map_err(|e| ServeError::bad_request("build", e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err_code(body: &str) -> &'static str {
        parse_request(body.as_bytes()).unwrap_err().code
    }

    #[test]
    fn minimal_request_builds() {
        let req = parse_request(br#"{"resolution": 8, "steps": 20}"#).unwrap();
        assert_eq!(req.resolution, 8);
        assert_eq!(req.steps, 20);
        assert_eq!(req.nstations, 0);
        let sim = req.build().unwrap();
        assert_eq!(sim.config.nsteps, 20);
    }

    #[test]
    fn full_request_builds() {
        let body = br#"{
            "resolution": 8, "steps": 10, "model": "prem", "event": "argentina_deep",
            "stations": [{"name": "ANMO", "lat_deg": 34.9, "lon_deg": -106.5}],
            "attenuation": true, "kernel": "simd", "deadline_ms": 2000, "priority": 5
        }"#;
        let req = parse_request(body).unwrap();
        assert_eq!(req.stations.len(), 1);
        assert_eq!(req.deadline_ms, Some(2000));
        assert_eq!(req.priority, 5);
        let sim = req.build().unwrap();
        assert!(sim.config.attenuation);
        assert_eq!(sim.stations[0].name, "ANMO");
    }

    #[test]
    fn station_count_shorthand() {
        let req = parse_request(br#"{"resolution": 8, "steps": 5, "stations": 4}"#).unwrap();
        assert_eq!(req.nstations, 4);
        assert_eq!(req.build().unwrap().stations.len(), 4);
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert_eq!(err_code("not json"), "bad_json");
        assert_eq!(err_code("[1,2]"), "bad_request");
        assert_eq!(err_code("{\"steps\": 5}"), "missing_field");
        assert_eq!(err_code("{\"resolution\": 8}"), "missing_field");
        assert_eq!(
            err_code("{\"resolution\": 8, \"steps\": 0}"),
            "out_of_range"
        );
        assert_eq!(
            err_code("{\"resolution\": 8, \"steps\": 5, \"atenuation\": true}"),
            "unknown_field"
        );
        assert_eq!(
            err_code("{\"resolution\": \"big\", \"steps\": 5}"),
            "bad_type"
        );
        assert_eq!(
            err_code("{\"resolution\": 9999, \"steps\": 5}"),
            "out_of_range"
        );
        assert_eq!(
            err_code("{\"resolution\": 8, \"steps\": 5, \"model\": \"mars\"}"),
            "unknown_model"
        );
        assert_eq!(
            err_code("{\"resolution\": 8, \"steps\": 5, \"stations\": [{\"name\": \"A\", \"lat_deg\": 95, \"lon_deg\": 0}]}"),
            "out_of_range"
        );
        assert_eq!(
            err_code("{\"resolution\": 8, \"steps\": 5, \"stations\": [{\"lat_deg\": 5, \"lon_deg\": 0}]}"),
            "bad_type"
        );
        assert_eq!(
            err_code("{\"resolution\": 8, \"steps\": 5, \"stations\": [{\"name\": \"A\"}]}"),
            "missing_field"
        );
        assert_eq!(
            err_code("{\"resolution\": 8, \"steps\": 5, \"stations\": 2, \"nstations\": 3}"),
            "bad_request"
        );
        assert_eq!(
            err_code("{\"resolution\": 8, \"steps\": 5, \"priority\": 99999999999}"),
            "out_of_range"
        );
    }

    #[test]
    fn builder_rejections_become_400s() {
        // Resolution 1 parses fine but the builder's floor rejects it.
        let req = parse_request(br#"{"resolution": 1, "steps": 5}"#).unwrap();
        let err = req.build().unwrap_err();
        assert_eq!(err.status, 400);
        assert_eq!(err.code, "build");
        let req =
            parse_request(br#"{"resolution": 8, "steps": 5, "event": "no_such_quake"}"#).unwrap();
        assert_eq!(req.build().unwrap_err().code, "build");
    }

    #[test]
    fn error_json_is_stable() {
        let e = ServeError::bad_request("bad_json", "oops \"quoted\"");
        assert_eq!(
            e.to_json(),
            "{\"error\":{\"code\":\"bad_json\",\"message\":\"oops \\\"quoted\\\"\"}}"
        );
        assert_eq!(e.reason(), "Bad Request");
    }
}
