//! Minimal HTTP/1.1 — just enough protocol for a localhost synthetics
//! daemon: one request per connection, `Content-Length` bodies,
//! `Connection: close` responses. Hand-rolled over `std::net` because
//! the build environment vendors its dependencies; the subset here is
//! the stable core of RFC 9112 (request line, header block, sized
//! body), with hard limits so a garbage peer cannot balloon memory.

use std::io::{BufRead, Write};

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Body bytes (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Why a request could not be read. Each maps to one 4xx response; the
/// daemon never answers a malformed head with anything but a typed
/// error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed before sending a complete request head.
    Closed,
    /// Socket-level failure (represented by its message: `std::io::Error`
    /// is not `Clone`/`Eq`, and callers only report the text).
    Io(String),
    /// The request line or a header line was not HTTP.
    BadRequest(String),
    /// The head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// `Content-Length` exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed mid-request"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::BadRequest(d) => write!(f, "malformed request: {d}"),
            HttpError::HeadTooLarge => {
                write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            HttpError::BodyTooLarge(n) => {
                write!(f, "request body of {n} bytes exceeds {MAX_BODY_BYTES}")
            }
        }
    }
}

fn io_err(e: std::io::Error) -> HttpError {
    HttpError::Io(e.to_string())
}

/// Read one CRLF- (or bare-LF-) terminated line, bounding total head
/// consumption via `budget`.
fn read_line(stream: &mut impl BufRead, budget: &mut usize) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(HttpError::Closed);
                }
                break;
            }
            Ok(_) => {
                *budget = budget.checked_sub(1).ok_or(HttpError::HeadTooLarge)?;
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(io_err(e)),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::BadRequest("non-UTF-8 header line".into()))
}

/// Read and parse one request from the stream.
pub fn read_request(stream: &mut impl BufRead) -> Result<Request, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_line(stream, &mut budget)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?
        .to_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line missing target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line missing version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version}"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    loop {
        let line = read_line(stream, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "header without colon: {line}"
            )));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("bad Content-Length: {value}")))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(io_err)?;
    Ok(Request { method, path, body })
}

/// Write one `Connection: close` response with a JSON body.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Parse one response off a stream: `(status, body)`. The client half of
/// [`write_response`], shared by the load generator and the tests.
pub fn read_response(stream: &mut impl BufRead) -> Result<(u16, String), HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let status_line = read_line(stream, &mut budget)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::BadRequest(format!("bad status line: {status_line}")))?;
    let mut content_length = 0usize;
    loop {
        let line = read_line(stream, &mut budget)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::BadRequest(format!("bad Content-Length: {value}")))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(io_err)?;
    String::from_utf8(body)
        .map(|b| (status, b))
        .map_err(|_| HttpError::BadRequest("non-UTF-8 response body".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.to_vec()))
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/health");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let r = parse(b"post /simulate?x=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/simulate");
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn bare_lf_lines_are_tolerated() {
        let r = parse(b"GET /metrics HTTP/1.0\nContent-Length: 0\n\n").unwrap();
        assert_eq!(r.path, "/metrics");
    }

    #[test]
    fn malformed_heads_are_typed_errors() {
        assert!(matches!(parse(b"\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(
            parse(b"GET /x SPDY/3\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nContent-Length: lots\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert_eq!(parse(b""), Err(HttpError::Closed));
    }

    #[test]
    fn oversized_head_and_body_are_bounded() {
        let mut huge = b"GET /x HTTP/1.1\r\n".to_vec();
        huge.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert_eq!(parse(&huge), Err(HttpError::HeadTooLarge));
        let declared = MAX_BODY_BYTES + 1;
        let req = format!("POST /x HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        assert_eq!(
            parse(req.as_bytes()),
            Err(HttpError::BodyTooLarge(declared))
        );
    }

    #[test]
    fn response_roundtrip() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "OK", "{\"ok\":true}").unwrap();
        let (status, body) = read_response(&mut Cursor::new(wire)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
    }
}
