//! `specfem_serve` — the synthetics daemon.
//!
//! ```text
//! specfem_serve [--parfile PATH] [--addr HOST:PORT] [--data-dir DIR]
//!               [--workers N] [--ledger-dir DIR] [--ledger-batch N]
//!               [--batch-lanes K] [--batch-window-ms MS]
//! ```
//!
//! Knobs come from the Par_file (`SERVE_ADDR`, `RESULT_CACHE_BYTES`,
//! `REQUEST_DEADLINE_MS`, `BATCH_MAX_LANES`, `BATCH_WINDOW_MS`; see
//! `specfem_core::parfile::ServeKnobs`) with flags overriding. The
//! process prints the bound address on stdout (`SERVE_LISTENING <addr>`)
//! and blocks until `POST /shutdown`.

use std::path::PathBuf;

use specfem_core::parfile::serve_knobs_from_parfile;
use specfem_serve::{serve, ServeConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut parfile: Option<PathBuf> = None;
    let mut addr: Option<String> = None;
    let mut data_dir = PathBuf::from("OUTPUT_FILES/serve");
    let mut workers = 0usize;
    let mut ledger_dir: Option<PathBuf> = None;
    let mut ledger_batch = 32usize;
    let mut batch_lanes: Option<usize> = None;
    let mut batch_window_ms: Option<u64> = None;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--parfile" => parfile = Some(PathBuf::from(value("--parfile"))),
            "--addr" => addr = Some(value("--addr")),
            "--data-dir" => data_dir = PathBuf::from(value("--data-dir")),
            "--workers" => {
                workers = value("--workers")
                    .parse()
                    .expect("--workers must be a count")
            }
            "--ledger-dir" => ledger_dir = Some(PathBuf::from(value("--ledger-dir"))),
            "--ledger-batch" => {
                ledger_batch = value("--ledger-batch")
                    .parse()
                    .expect("--ledger-batch must be a count")
            }
            "--batch-lanes" => {
                batch_lanes = Some(
                    value("--batch-lanes")
                        .parse()
                        .expect("--batch-lanes must be a lane count"),
                )
            }
            "--batch-window-ms" => {
                batch_window_ms = Some(
                    value("--batch-window-ms")
                        .parse()
                        .expect("--batch-window-ms must be a millisecond count"),
                )
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }

    let knobs = match &parfile {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
            serve_knobs_from_parfile(&text).unwrap_or_else(|e| panic!("bad Par_file: {e}"))
        }
        None => Default::default(),
    };
    let mut cfg = ServeConfig::from_knobs(&knobs, data_dir);
    if let Some(addr) = addr {
        cfg.addr = addr;
    }
    cfg.workers = workers;
    cfg.ledger_dir = ledger_dir;
    cfg.ledger_batch = ledger_batch;
    if let Some(lanes) = batch_lanes {
        cfg.batch_max_lanes = lanes.max(1);
    }
    if let Some(ms) = batch_window_ms {
        cfg.batch_window_ms = ms;
    }

    let handle = serve(cfg).unwrap_or_else(|e| panic!("cannot start daemon: {e}"));
    println!("SERVE_LISTENING {}", handle.addr());
    handle.join();
    println!("SERVE_STOPPED");
}
