//! End-to-end daemon tests, anchored by the differential oracle: a
//! seismogram served over HTTP must be **bit-identical** to the batch
//! `Simulation::run_serial` answer — cold (solved on demand), warm
//! (memory tier), and after a restart (disk tier, no re-solve).

use std::path::PathBuf;
use std::time::Duration;

use serde_json::Value;
use specfem_serve::{client, serve, ServeConfig, ServerHandle};

const REQ: &str = r#"{"resolution": 4, "steps": 10, "event": "argentina_deep", "stations": 2}"#;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("specfem_serve_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(data_dir: PathBuf) -> ServerHandle {
    serve(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        result_cache_bytes: 32 << 20,
        request_deadline: Some(Duration::from_secs(300)),
        workers: 2,
        data_dir,
        ledger_dir: None,
        ledger_batch: 4,
        batch_max_lanes: 1,
        batch_window_ms: 0,
    })
    .expect("daemon starts")
}

/// Per-station `[x, y, z]` sample bits from a `/simulate` response body.
fn response_bits(body: &str) -> (String, Vec<Vec<[u32; 3]>>) {
    let v: Value = serde_json::from_str(body).expect("response is JSON");
    let cache = v.get("cache").unwrap().as_str().unwrap().to_string();
    let seis = v.get("seismograms").unwrap().as_array().unwrap();
    let bits = seis
        .iter()
        .map(|s| {
            s.get("data")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|row| {
                    let r = row.as_array().unwrap();
                    [
                        (r[0].as_f64().unwrap() as f32).to_bits(),
                        (r[1].as_f64().unwrap() as f32).to_bits(),
                        (r[2].as_f64().unwrap() as f32).to_bits(),
                    ]
                })
                .collect()
        })
        .collect();
    (cache, bits)
}

fn batch_bits() -> Vec<Vec<[u32; 3]>> {
    let sim = specfem_core::Simulation::builder()
        .resolution(4)
        .steps(10)
        .catalogue_event("argentina_deep")
        .stations(2)
        .build()
        .unwrap();
    sim.run_serial()
        .seismograms
        .iter()
        .map(|s| {
            s.data
                .iter()
                .map(|v| [v[0].to_bits(), v[1].to_bits(), v[2].to_bits()])
                .collect()
        })
        .collect()
}

fn health_solves(addr: std::net::SocketAddr) -> u64 {
    let (status, body) = client::get(addr, "/health").unwrap();
    assert_eq!(status, 200, "{body}");
    let v: Value = serde_json::from_str(&body).unwrap();
    v.get("solves").unwrap().as_u64().unwrap()
}

#[test]
fn served_seismograms_match_batch_cold_warm_and_across_restart() {
    let dir = tmp_dir("oracle");
    let oracle = batch_bits();
    assert!(!oracle.is_empty() && !oracle[0].is_empty());

    let daemon = start(dir.clone());
    let addr = daemon.addr();

    // Cold: solved on demand, reported as a miss, bit-identical.
    let (status, body) = client::post(addr, "/simulate", REQ).unwrap();
    assert_eq!(status, 200, "{body}");
    let (cache, bits) = response_bits(&body);
    assert_eq!(cache, "miss");
    assert_eq!(bits, oracle, "cold daemon result diverges from batch");
    assert_eq!(health_solves(addr), 1);

    // Warm: memory tier, same bits, no extra solve.
    let (status, body) = client::post(addr, "/simulate", REQ).unwrap();
    assert_eq!(status, 200, "{body}");
    let (cache, bits) = response_bits(&body);
    assert_eq!(cache, "mem_hit");
    assert_eq!(bits, oracle, "warm daemon result diverges from batch");
    assert_eq!(health_solves(addr), 1);

    daemon.shutdown();

    // Restart on the same data dir: the disk tier answers, still bit
    // for bit, and the solver never runs.
    let daemon = start(dir);
    let addr = daemon.addr();
    let (status, body) = client::post(addr, "/simulate", REQ).unwrap();
    assert_eq!(status, 200, "{body}");
    let (cache, bits) = response_bits(&body);
    assert_eq!(cache, "disk_hit");
    assert_eq!(bits, oracle, "restarted daemon result diverges from batch");
    assert_eq!(health_solves(addr), 0, "disk hit must not re-solve");
    daemon.shutdown();
}

#[test]
fn concurrent_identical_requests_single_flight_into_one_solve() {
    let daemon = start(tmp_dir("single_flight"));
    let addr = daemon.addr();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let (status, body) = client::post(addr, "/simulate", REQ).unwrap();
                assert_eq!(status, 200, "{body}");
                response_bits(&body).1
            })
        })
        .collect();
    let mut answers: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    answers.dedup();
    assert_eq!(answers.len(), 1, "all waiters must see the same result");
    assert_eq!(
        health_solves(addr),
        1,
        "identical requests must share one solve"
    );
    daemon.shutdown();
}

/// Serial-oracle bits for one catalogue event (the per-lane expectation
/// for the batched daemon test).
fn event_bits(event: &str) -> Vec<Vec<[u32; 3]>> {
    let sim = specfem_core::Simulation::builder()
        .resolution(4)
        .steps(10)
        .catalogue_event(event)
        .stations(2)
        .build()
        .unwrap();
    sim.run_serial()
        .seismograms
        .iter()
        .map(|s| {
            s.data
                .iter()
                .map(|v| [v[0].to_bits(), v[1].to_bits(), v[2].to_bits()])
                .collect()
        })
        .collect()
}

#[test]
fn batched_daemon_answers_each_event_bit_identical_to_serial() {
    // One worker, lanes wide open, a generous fuse window, and *no*
    // request deadline (a deadline becomes the solver watchdog, which
    // forces the single-lane path). Three concurrent requests for
    // different catalogue events share the mesh and timeloop shape, so
    // they fuse into one 3-lane solve — and every lane must still be
    // bit-identical to its own single-event serial answer.
    let daemon = serve(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        result_cache_bytes: 32 << 20,
        request_deadline: None,
        workers: 1,
        data_dir: tmp_dir("batched"),
        ledger_dir: None,
        ledger_batch: 4,
        batch_max_lanes: 4,
        batch_window_ms: 2_000,
    })
    .expect("daemon starts");
    let addr = daemon.addr();

    let events = ["argentina_deep", "sumatra_thrust", "denali_strike_slip"];
    let threads: Vec<_> = events
        .map(|event| {
            std::thread::spawn(move || {
                let body = format!(
                    r#"{{"resolution": 4, "steps": 10, "event": "{event}", "stations": 2}}"#
                );
                let (status, reply) = client::post(addr, "/simulate", &body).unwrap();
                assert_eq!(status, 200, "{reply}");
                let (cache, bits) = response_bits(&reply);
                assert_eq!(cache, "miss");
                bits
            })
        })
        .into_iter()
        .collect();
    let answers: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    for (event, got) in events.iter().zip(&answers) {
        assert_eq!(
            got,
            &event_bits(event),
            "batched daemon answer for {event} diverges from serial"
        );
    }
    assert_eq!(health_solves(addr), 3, "every lane counts as one solve");

    // Warm repeats hit the cache under the lane's own result key.
    for event in events {
        let body =
            format!(r#"{{"resolution": 4, "steps": 10, "event": "{event}", "stations": 2}}"#);
        let (status, reply) = client::post(addr, "/simulate", &body).unwrap();
        assert_eq!(status, 200, "{reply}");
        let (cache, bits) = response_bits(&reply);
        assert_eq!(cache, "mem_hit");
        assert_eq!(bits, event_bits(event), "cached lane result diverges");
    }
    daemon.shutdown();
}

#[test]
fn deadline_returns_a_typed_timeout() {
    let daemon = start(tmp_dir("deadline"));
    let addr = daemon.addr();
    let body = r#"{"resolution": 4, "steps": 200, "stations": 2, "deadline_ms": 1}"#;
    let (status, reply) = client::post(addr, "/simulate", body).unwrap();
    assert_eq!(status, 504, "{reply}");
    let v: Value = serde_json::from_str(&reply).unwrap();
    assert_eq!(
        v.get("error")
            .unwrap()
            .get("code")
            .unwrap()
            .as_str()
            .unwrap(),
        "deadline"
    );
    daemon.shutdown();
}

#[test]
fn validation_and_routing_over_the_wire() {
    let daemon = start(tmp_dir("validation"));
    let addr = daemon.addr();

    let (status, body) = client::post(addr, "/simulate", "not json").unwrap();
    assert_eq!(status, 400);
    let v: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(
        v.get("error")
            .unwrap()
            .get("code")
            .unwrap()
            .as_str()
            .unwrap(),
        "bad_json"
    );

    let (status, _) = client::post(addr, "/simulate", r#"{"resolution": 8}"#).unwrap();
    assert_eq!(status, 400);
    let (status, _) = client::get(addr, "/nope").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client::get(addr, "/simulate").unwrap();
    assert_eq!(status, 405);

    let (status, body) = client::get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    let v: Value = serde_json::from_str(&body).unwrap();
    assert!(v.get("counters").is_some());
    daemon.shutdown();
}

#[test]
fn requests_carry_trace_ids_end_to_end() {
    let daemon = start(tmp_dir("tracing"));
    let addr = daemon.addr();

    // A cold request mints a correlation id and echoes it.
    let (status, body) = client::post(addr, "/simulate", REQ).unwrap();
    assert_eq!(status, 200, "{body}");
    let v: Value = serde_json::from_str(&body).unwrap();
    let trace_id = v.get("trace_id").unwrap().as_str().unwrap().to_string();
    assert_eq!(trace_id.len(), 16, "trace id is 16 hex digits: {trace_id}");
    assert!(trace_id.chars().all(|c| c.is_ascii_hexdigit()));

    // The job ledger remembers the solve under the same id.
    let (status, jobs) = client::get(addr, "/jobs").unwrap();
    assert_eq!(status, 200, "{jobs}");
    let v: Value = serde_json::from_str(&jobs).unwrap();
    let rows = v.get("jobs").unwrap().as_array().unwrap();
    assert!(!rows.is_empty());
    let row = rows
        .iter()
        .find(|r| r.get("trace_id").and_then(|t| t.as_str()) == Some(trace_id.as_str()))
        .expect("the solve appears in /jobs under its trace id");
    assert!(row.get("ok").unwrap().as_bool().unwrap());

    // The stitched timeline: one request track plus the solver rank's
    // spans, on one shared clock axis.
    let (status, timeline) = client::get(addr, &format!("/trace/{trace_id}")).unwrap();
    assert_eq!(status, 200, "{timeline}");
    let v: Value = serde_json::from_str(&timeline).expect("timeline is valid JSON");
    assert!(!v.get("traceEvents").unwrap().as_array().unwrap().is_empty());
    assert!(timeline.contains("\"request\""), "{timeline}");
    assert!(timeline.contains("rank 0"), "{timeline}");
    assert!(timeline.contains(&trace_id));

    // Unknown ids are a typed 404, not a hang or a panic.
    let (status, missing) = client::get(addr, "/trace/0000000000000000").unwrap();
    assert_eq!(status, 404, "{missing}");
    let v: Value = serde_json::from_str(&missing).unwrap();
    assert_eq!(
        v.get("error")
            .unwrap()
            .get("code")
            .unwrap()
            .as_str()
            .unwrap(),
        "unknown_trace"
    );

    // Error responses carry a trace id too.
    let (status, err) = client::post(addr, "/simulate", "not json").unwrap();
    assert_eq!(status, 400);
    let v: Value = serde_json::from_str(&err).unwrap();
    assert_eq!(v.get("trace_id").unwrap().as_str().unwrap().len(), 16);

    // Per-route × per-outcome latency histograms in /metrics.
    let (status, metrics) = client::get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    let v: Value = serde_json::from_str(&metrics).expect("metrics stay valid JSON");
    let hists = v.get("histograms").unwrap();
    let ok_row = hists.get("serve.latency_ms{route=\"/simulate\",outcome=\"200\"}");
    assert!(
        ok_row.is_some_and(|r| r.get("count").unwrap().as_u64().unwrap() >= 1),
        "{metrics}"
    );
    let err_row = hists.get("serve.latency_ms{route=\"/simulate\",outcome=\"400\"}");
    assert!(err_row.is_some(), "{metrics}");

    daemon.shutdown();
}

#[test]
fn shutdown_endpoint_stops_the_daemon_cleanly() {
    let daemon = start(tmp_dir("shutdown"));
    let addr = daemon.addr();
    let (status, body) = client::post(addr, "/shutdown", "").unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, "{\"status\":\"shutting_down\"}");
    // join() returns once the accept loop notices the flag and the
    // campaign runs down — a hang here is the failure being tested.
    daemon.join();
}
