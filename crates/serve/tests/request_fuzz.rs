//! Fuzzed request validation: no byte sequence may panic the parser,
//! and every rejection must be a typed 4xx — the "never panic, never
//! silently default" contract the daemon's front door depends on.

use proptest::prelude::*;
use specfem_serve::parse_request;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes — including invalid UTF-8 and truncated JSON —
    /// always produce Ok or a 4xx ServeError, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic(body in prop::collection::vec(any::<u8>(), 0..512)) {
        match parse_request(&body) {
            Ok(req) => {
                // Anything accepted respects the documented ceilings.
                prop_assert!(req.resolution <= specfem_serve::request::MAX_RESOLUTION);
                prop_assert!(req.steps >= 1 && req.steps <= specfem_serve::request::MAX_STEPS);
            }
            Err(e) => {
                prop_assert_eq!(e.status, 400);
                prop_assert!(!e.code.is_empty());
            }
        }
    }

    /// Structurally valid JSON with fuzzed field values: same contract,
    /// and whenever parsing succeeds the builder path must not panic
    /// either (it may reject with a typed 400).
    #[test]
    fn fuzzed_json_fields_never_panic(
        resolution in -4i64..600,
        steps in -2i64..40,
        nstations in -2i64..20,
        lat in -200.0f64..200.0,
        lon in -400.0f64..400.0,
        model_idx in 0usize..6,
        extra_field in any::<bool>(),
        use_list in any::<bool>(),
    ) {
        let model = ["prem", "prem_iso", "prem_3d", "homogeneous", "mars", ""][model_idx];
        let extra = if extra_field { ",\"surprise\":1" } else { "" };
        let stations = if use_list {
            format!("\"stations\":[{{\"name\":\"XY\",\"lat_deg\":{lat},\"lon_deg\":{lon}}}]")
        } else {
            format!("\"nstations\":{nstations}")
        };
        let body = format!(
            "{{\"resolution\":{resolution},\"steps\":{steps},\"model\":\"{model}\",{stations}{extra}}}"
        );
        match parse_request(body.as_bytes()) {
            Ok(req) => {
                // Builder-level rejection is fine; panicking is not.
                let _ = req.build();
            }
            Err(e) => {
                prop_assert_eq!(e.status, 400);
                let _ = e.to_json();
            }
        }
    }
}
