//! Property-based tests for the observability crate: arbitrary span
//! open/close interleavings must yield well-formed trees, histogram
//! bucketing must be consistent at all edges, and the cross-rank report
//! must be input-order independent.

use proptest::prelude::*;
use specfem_obs::{
    finish_rank, init_rank, span, IpmRankInput, IpmReport, LogHistogram, Span, TagTraffic,
    TraceConfig,
};

/// Names for randomly opened spans.
const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary interleavings of opens and (possibly out-of-order)
    /// guard drops always produce a well-formed span forest, and every
    /// opened span is eventually recorded exactly once.
    #[test]
    fn random_open_close_yields_well_formed_tree(
        ops in prop::collection::vec(0u8..=255, 1..60),
    ) {
        init_rank(0, &TraceConfig { capacity: 4096 });
        let mut opened = 0usize;
        let mut held: Vec<Span> = Vec::new();
        for op in &ops {
            if *op % 2 == 0 || held.is_empty() {
                held.push(span(NAMES[(*op as usize / 2) % NAMES.len()]));
                opened += 1;
            } else {
                // Drop an arbitrary held guard — possibly out of order.
                let idx = (*op as usize) % held.len();
                drop(held.swap_remove(idx));
            }
        }
        drop(held);
        let trace = finish_rank().unwrap().trace;
        prop_assert_eq!(trace.events.len(), opened);
        prop_assert_eq!(trace.dropped, 0);
        if let Err(msg) = trace.check_well_formed() {
            prop_assert!(false, "{}", msg);
        }
        // Events are reported oldest-completed first.
        for w in trace.events.windows(2) {
            prop_assert!(w[0].end_ns() <= w[1].end_ns());
        }
    }

    /// Every value lands in a bucket whose bounds contain it, including
    /// 0 and u64::MAX, and bucket counts always sum to the total count.
    #[test]
    fn histogram_buckets_contain_their_values(
        values in prop::collection::vec(any::<u64>(), 0..40),
        edge_zero in any::<bool>(),
        edge_max in any::<bool>(),
    ) {
        let mut values = values;
        if edge_zero {
            values.push(0);
        }
        if edge_max {
            values.push(u64::MAX);
        }
        let mut h = LogHistogram::default();
        for &v in &values {
            let i = LogHistogram::bucket_index(v);
            let (lo, hi) = LogHistogram::bucket_bounds(i);
            prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.counts.iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(h.min(), values.iter().min().copied());
        prop_assert_eq!(h.max(), values.iter().max().copied());
    }

    /// Merging histograms is equivalent to recording the concatenation.
    #[test]
    fn histogram_merge_matches_concatenation(
        a in prop::collection::vec(any::<u64>(), 0..30),
        b in prop::collection::vec(any::<u64>(), 0..30),
    ) {
        let mut ha = LogHistogram::default();
        let mut hb = LogHistogram::default();
        let mut hall = LogHistogram::default();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha, hall);
    }

    /// Merge is commutative: a⊕b == b⊕a for all value sets, including
    /// the 0 and u64::MAX edge buckets. The ledger's cross-rank rollup
    /// merges in nondeterministic worker order, so this is load-bearing.
    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(any::<u64>(), 0..30),
        b in prop::collection::vec(any::<u64>(), 0..30),
        edges in any::<u8>(),
    ) {
        let mut a = a;
        let mut b = b;
        if edges & 1 != 0 { a.push(0); }
        if edges & 2 != 0 { a.push(u64::MAX); }
        if edges & 4 != 0 { b.push(0); }
        if edges & 8 != 0 { b.push(u64::MAX); }
        let record_all = |vals: &[u64]| {
            let mut h = LogHistogram::default();
            for &v in vals { h.record(v); }
            h
        };
        let (ha, hb) = (record_all(&a), record_all(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count(), (a.len() + b.len()) as u64);
    }

    /// Merge is associative: (a⊕b)⊕c == a⊕(b⊕c), and the merged total
    /// count is the sum of the parts (no value lost or double-counted).
    #[test]
    fn histogram_merge_is_associative_and_preserves_count(
        a in prop::collection::vec(any::<u64>(), 0..20),
        b in prop::collection::vec(any::<u64>(), 0..20),
        c in prop::collection::vec(any::<u64>(), 0..20),
        edges in any::<u8>(),
    ) {
        let mut a = a;
        let mut b = b;
        let mut c = c;
        if edges & 1 != 0 { a.push(0); }
        if edges & 2 != 0 { b.push(u64::MAX); }
        if edges & 4 != 0 { c.push(0); }
        if edges & 8 != 0 { c.push(u64::MAX); }
        let record_all = |vals: &[u64]| {
            let mut h = LogHistogram::default();
            for &v in vals { h.record(v); }
            h
        };
        let (ha, hb, hc) = (record_all(&a), record_all(&b), record_all(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        let total = (a.len() + b.len() + c.len()) as u64;
        prop_assert_eq!(left.count(), total);
        prop_assert_eq!(left.counts.iter().sum::<u64>(), total);
        prop_assert_eq!(left.min(), a.iter().chain(&b).chain(&c).min().copied());
        prop_assert_eq!(left.max(), a.iter().chain(&b).chain(&c).max().copied());
    }

    /// The cross-rank report is deterministic and independent of the
    /// order ranks are supplied in, and totals match a direct sum.
    #[test]
    fn report_is_order_independent(
        ranks in prop::collection::vec(
            (0.001f64..10.0, 0.0f64..1.0, 0u64..1_000_000, 1u64..100),
            1..8,
        ),
    ) {
        let inputs: Vec<IpmRankInput> = ranks
            .iter()
            .enumerate()
            .map(|(rank, &(elapsed, comm_frac, bytes, msgs))| {
                let mut size_hist = LogHistogram::default();
                size_hist.record(bytes);
                IpmRankInput {
                    rank,
                    elapsed_s: elapsed,
                    comm_wall_s: elapsed * comm_frac,
                    modeled_comm_s: elapsed * comm_frac * 0.5,
                    bytes_sent: bytes,
                    bytes_received: bytes,
                    messages_sent: msgs,
                    collectives: 1,
                    per_tag: vec![TagTraffic { tag: 100, messages: msgs, bytes }],
                    size_hist,
                    phase_seconds: vec![("halo".into(), elapsed * comm_frac)],
                }
            })
            .collect();
        let forward = IpmReport::build(&inputs);
        let mut reversed = inputs.clone();
        reversed.reverse();
        let backward = IpmReport::build(&reversed);
        prop_assert_eq!(&forward, &backward);
        prop_assert_eq!(forward.render_text(), backward.render_text());
        prop_assert_eq!(forward.to_json(), backward.to_json());

        let bytes_sum: u64 = inputs.iter().map(|i| i.bytes_sent).sum();
        let msgs_sum: u64 = inputs.iter().map(|i| i.messages_sent).sum();
        prop_assert_eq!(forward.total_bytes_sent, bytes_sum);
        prop_assert_eq!(forward.total_messages, msgs_sum);
        prop_assert_eq!(forward.ranks, inputs.len());
        prop_assert_eq!(forward.tags.len(), 1);
        prop_assert_eq!(forward.tags[0].bytes, bytes_sum);
        // Per-rank rows come back sorted by rank.
        for w in forward.per_rank.windows(2) {
            prop_assert!(w[0].rank < w[1].rank);
        }
    }
}
