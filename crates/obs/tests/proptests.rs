//! Property-based tests for the observability crate: arbitrary span
//! open/close interleavings must yield well-formed trees, histogram
//! bucketing must be consistent at all edges, and the cross-rank report
//! must be input-order independent.

use proptest::prelude::*;
use specfem_obs::{
    finish_rank, init_rank, span, IpmRankInput, IpmReport, LogHistogram, Span, TagTraffic,
    TraceConfig,
};

/// Names for randomly opened spans.
const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary interleavings of opens and (possibly out-of-order)
    /// guard drops always produce a well-formed span forest, and every
    /// opened span is eventually recorded exactly once.
    #[test]
    fn random_open_close_yields_well_formed_tree(
        ops in prop::collection::vec(0u8..=255, 1..60),
    ) {
        init_rank(0, &TraceConfig { capacity: 4096 });
        let mut opened = 0usize;
        let mut held: Vec<Span> = Vec::new();
        for op in &ops {
            if *op % 2 == 0 || held.is_empty() {
                held.push(span(NAMES[(*op as usize / 2) % NAMES.len()]));
                opened += 1;
            } else {
                // Drop an arbitrary held guard — possibly out of order.
                let idx = (*op as usize) % held.len();
                drop(held.swap_remove(idx));
            }
        }
        drop(held);
        let trace = finish_rank().unwrap().trace;
        prop_assert_eq!(trace.events.len(), opened);
        prop_assert_eq!(trace.dropped, 0);
        if let Err(msg) = trace.check_well_formed() {
            prop_assert!(false, "{}", msg);
        }
        // Events are reported oldest-completed first.
        for w in trace.events.windows(2) {
            prop_assert!(w[0].end_ns() <= w[1].end_ns());
        }
    }

    /// Every value lands in a bucket whose bounds contain it, including
    /// 0 and u64::MAX, and bucket counts always sum to the total count.
    #[test]
    fn histogram_buckets_contain_their_values(
        values in prop::collection::vec(any::<u64>(), 0..40),
        edge_zero in any::<bool>(),
        edge_max in any::<bool>(),
    ) {
        let mut values = values;
        if edge_zero {
            values.push(0);
        }
        if edge_max {
            values.push(u64::MAX);
        }
        let mut h = LogHistogram::default();
        for &v in &values {
            let i = LogHistogram::bucket_index(v);
            let (lo, hi) = LogHistogram::bucket_bounds(i);
            prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.counts.iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(h.min(), values.iter().min().copied());
        prop_assert_eq!(h.max(), values.iter().max().copied());
    }

    /// Merging histograms is equivalent to recording the concatenation.
    #[test]
    fn histogram_merge_matches_concatenation(
        a in prop::collection::vec(any::<u64>(), 0..30),
        b in prop::collection::vec(any::<u64>(), 0..30),
    ) {
        let mut ha = LogHistogram::default();
        let mut hb = LogHistogram::default();
        let mut hall = LogHistogram::default();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha, hall);
    }

    /// The cross-rank report is deterministic and independent of the
    /// order ranks are supplied in, and totals match a direct sum.
    #[test]
    fn report_is_order_independent(
        ranks in prop::collection::vec(
            (0.001f64..10.0, 0.0f64..1.0, 0u64..1_000_000, 1u64..100),
            1..8,
        ),
    ) {
        let inputs: Vec<IpmRankInput> = ranks
            .iter()
            .enumerate()
            .map(|(rank, &(elapsed, comm_frac, bytes, msgs))| {
                let mut size_hist = LogHistogram::default();
                size_hist.record(bytes);
                IpmRankInput {
                    rank,
                    elapsed_s: elapsed,
                    comm_wall_s: elapsed * comm_frac,
                    modeled_comm_s: elapsed * comm_frac * 0.5,
                    bytes_sent: bytes,
                    bytes_received: bytes,
                    messages_sent: msgs,
                    collectives: 1,
                    per_tag: vec![TagTraffic { tag: 100, messages: msgs, bytes }],
                    size_hist,
                    phase_seconds: vec![("halo".into(), elapsed * comm_frac)],
                }
            })
            .collect();
        let forward = IpmReport::build(&inputs);
        let mut reversed = inputs.clone();
        reversed.reverse();
        let backward = IpmReport::build(&reversed);
        prop_assert_eq!(&forward, &backward);
        prop_assert_eq!(forward.render_text(), backward.render_text());
        prop_assert_eq!(forward.to_json(), backward.to_json());

        let bytes_sum: u64 = inputs.iter().map(|i| i.bytes_sent).sum();
        let msgs_sum: u64 = inputs.iter().map(|i| i.messages_sent).sum();
        prop_assert_eq!(forward.total_bytes_sent, bytes_sum);
        prop_assert_eq!(forward.total_messages, msgs_sum);
        prop_assert_eq!(forward.ranks, inputs.len());
        prop_assert_eq!(forward.tags.len(), 1);
        prop_assert_eq!(forward.tags[0].bytes, bytes_sum);
        // Per-rank rows come back sorted by rank.
        for w in forward.per_rank.windows(2) {
            prop_assert!(w[0].rank < w[1].rank);
        }
    }
}
