//! Numerical-health monitoring — in-flight NaN/Inf and blow-up detection.
//!
//! At 62K cores a single rank whose wave field goes non-finite (bad
//! heterogeneity sampling, a CFL violation after a restart, a flipped
//! bit) poisons every neighbour within a handful of halo exchanges and
//! the run burns its full allocation producing garbage. The
//! [`HealthMonitor`] is the cheap in-flight guard: every `HEALTH_EVERY`
//! steps the solver hands it the displacement and velocity fields, it
//! scans for non-finite entries and for sustained exponential growth
//! (the signature of a CFL instability, which doubles every few steps
//! long before it overflows), and on a trip it returns a structured
//! [`HealthReport`] so the step loop can abort *naming the culprit* —
//! rank, step, field, flat point index, and (once the solver maps the
//! point through `ibool`) the spectral element.
//!
//! The monitor is deliberately dependency-free and branch-cheap: with
//! `every == 0` (the default) [`HealthMonitor::should_check`] is a
//! single integer compare and the solver never touches the fields, so
//! the disabled path is bit-identical to a build without the monitor.

/// What tripped the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthTrip {
    /// A NaN entry in the scanned field.
    Nan,
    /// A ±Inf entry in the scanned field.
    Inf,
    /// Sustained exponential growth: the max-abs norm grew by more than
    /// [`GROWTH_FACTOR`] on [`GROWTH_STREAK`] consecutive samples (or
    /// exceeded [`HARD_CEILING`] outright).
    Growth,
}

impl std::fmt::Display for HealthTrip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthTrip::Nan => write!(f, "NaN"),
            HealthTrip::Inf => write!(f, "Inf"),
            HealthTrip::Growth => write!(f, "exponential growth"),
        }
    }
}

/// Structured abort report: who blew up, where, and how.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Rank whose field tripped the monitor.
    pub rank: usize,
    /// Time step at which the sample was taken.
    pub step: usize,
    /// Field name (`"displ"`, `"veloc"`, `"chi"`, …).
    pub field: &'static str,
    /// Flat index of the offending entry in the field array.
    pub point: usize,
    /// Local spectral element containing the point, once the solver has
    /// mapped `point` through `ibool`; `None` straight from the monitor.
    pub element: Option<usize>,
    /// The offending value (NaN/Inf for non-finite trips, the max-abs
    /// entry for growth trips).
    pub value: f64,
    /// Max-abs norm of the field at the sample.
    pub norm: f64,
    /// Trip classification.
    pub trip: HealthTrip,
}

impl std::fmt::Display for HealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "numerical-health trip ({}) on rank {} at step {}: field {}",
            self.trip, self.rank, self.step, self.field
        )?;
        match self.element {
            Some(e) => write!(f, " element {} point {}", e, self.point)?,
            None => write!(f, " point {}", self.point)?,
        }
        write!(f, " value {:e} (field max-abs {:e})", self.value, self.norm)
    }
}

impl HealthReport {
    /// Render as a JSON object (for campaign rollups and artifacts).
    pub fn to_json(&self) -> String {
        let element = match self.element {
            Some(e) => e.to_string(),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"rank\":{},\"step\":{},\"field\":\"{}\",\"point\":{},",
                "\"element\":{},\"value\":\"{:e}\",\"norm\":\"{:e}\",\"trip\":\"{}\"}}"
            ),
            self.rank,
            self.step,
            crate::json_escape(self.field),
            self.point,
            element,
            self.value,
            self.norm,
            self.trip,
        )
    }
}

/// Norm growth factor between consecutive samples that counts as one
/// step of a blow-up streak (a CFL instability grows by far more).
pub const GROWTH_FACTOR: f64 = 10.0;

/// Number of consecutive growing samples before a [`HealthTrip::Growth`]
/// trip — a single transient (e.g. the source ramp) never trips.
pub const GROWTH_STREAK: u32 = 3;

/// Norm below which growth is ignored: ramping up from numerical zero at
/// source onset is expected, not an instability.
pub const GROWTH_FLOOR: f64 = 1.0;

/// Absolute norm ceiling that trips immediately, streak or no streak —
/// f32 overflows to Inf at ~3.4e38, so 1e30 means the field is already
/// physically meaningless.
pub const HARD_CEILING: f64 = 1e30;

/// Per-rank in-flight health monitor. Create one per run with the
/// sampling cadence; feed it field slices from the step loop.
#[derive(Debug, Clone, Default)]
pub struct HealthMonitor {
    every: usize,
    prev_norm: Option<f64>,
    streak: u32,
}

impl HealthMonitor {
    /// A monitor sampling every `every` steps; `every == 0` disables it.
    pub fn new(every: usize) -> Self {
        Self {
            every,
            prev_norm: None,
            streak: 0,
        }
    }

    /// Whether the monitor is enabled at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.every != 0
    }

    /// Whether step `istep` is a sampling step. This is the *entire*
    /// disabled-path cost: one compare.
    #[inline]
    pub fn should_check(&self, istep: usize) -> bool {
        self.every != 0 && istep.is_multiple_of(self.every)
    }

    /// Re-arm after a checkpoint restore: drop the growth history so a
    /// resumed run cannot trip on the jump from zero fields to the
    /// restored amplitude.
    pub fn re_arm(&mut self) {
        self.prev_norm = None;
        self.streak = 0;
    }

    /// Scan `fields` (name, slice) pairs at step `istep`. Returns a
    /// report (with `element: None`; the caller attributes the element)
    /// on a trip, `None` when the sample is healthy. Growth tracking
    /// uses the max-abs norm across *all* scanned fields so a blow-up
    /// in any field advances one shared streak.
    pub fn check(
        &mut self,
        rank: usize,
        istep: usize,
        fields: &[(&'static str, &[f32])],
    ) -> Option<HealthReport> {
        let mut overall_norm = 0.0f64;
        let mut worst: Option<(&'static str, usize, f64, f64)> = None; // field, point, value, norm
        for &(name, data) in fields {
            let mut max_abs = 0.0f32;
            let mut max_idx = 0usize;
            for (i, &v) in data.iter().enumerate() {
                if !v.is_finite() {
                    let trip = if v.is_nan() {
                        HealthTrip::Nan
                    } else {
                        HealthTrip::Inf
                    };
                    return Some(HealthReport {
                        rank,
                        step: istep,
                        field: name,
                        point: i,
                        element: None,
                        value: v as f64,
                        norm: f64::from(max_abs),
                        trip,
                    });
                }
                let a = v.abs();
                if a > max_abs {
                    max_abs = a;
                    max_idx = i;
                }
            }
            let norm = f64::from(max_abs);
            if norm > overall_norm {
                overall_norm = norm;
            }
            if worst.is_none_or(|w| norm > w.3) {
                let v = f64::from(data.get(max_idx).copied().unwrap_or(0.0));
                worst = Some((name, max_idx, v, norm));
            }
        }
        let (field, point, value, _) = worst.unwrap_or(("<empty>", 0, 0.0, 0.0));
        // Hard ceiling: the field is already astrophysical.
        if overall_norm > HARD_CEILING {
            return Some(HealthReport {
                rank,
                step: istep,
                field,
                point,
                element: None,
                value,
                norm: overall_norm,
                trip: HealthTrip::Growth,
            });
        }
        // Streak-based drift: GROWTH_STREAK consecutive samples each
        // more than GROWTH_FACTOR above the last, all above the floor.
        match self.prev_norm {
            Some(prev) if prev > GROWTH_FLOOR && overall_norm > GROWTH_FACTOR * prev => {
                self.streak += 1;
            }
            _ => self.streak = 0,
        }
        self.prev_norm = Some(overall_norm);
        if self.streak >= GROWTH_STREAK {
            return Some(HealthReport {
                rank,
                step: istep,
                field,
                point,
                element: None,
                value,
                norm: overall_norm,
                trip: HealthTrip::Growth,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_monitor_never_samples() {
        let m = HealthMonitor::new(0);
        assert!(!m.enabled());
        for istep in 0..100 {
            assert!(!m.should_check(istep));
        }
    }

    #[test]
    fn cadence_matches_every() {
        let m = HealthMonitor::new(5);
        let steps: Vec<usize> = (0..20).filter(|&i| m.should_check(i)).collect();
        assert_eq!(steps, vec![0, 5, 10, 15]);
    }

    #[test]
    fn nan_trips_with_point_and_field() {
        let mut m = HealthMonitor::new(1);
        let mut displ = vec![0.5f32; 8];
        displ[5] = f32::NAN;
        let veloc = vec![0.1f32; 8];
        let r = m
            .check(3, 7, &[("displ", &displ), ("veloc", &veloc)])
            .expect("NaN must trip");
        assert_eq!(r.trip, HealthTrip::Nan);
        assert_eq!(r.rank, 3);
        assert_eq!(r.step, 7);
        assert_eq!(r.field, "displ");
        assert_eq!(r.point, 5);
        assert!(r.value.is_nan());
        let msg = r.to_string();
        assert!(msg.contains("rank 3") && msg.contains("step 7") && msg.contains("displ"));
    }

    #[test]
    fn inf_trips_as_inf() {
        let mut m = HealthMonitor::new(1);
        let veloc = vec![0.0f32, f32::NEG_INFINITY];
        let r = m.check(0, 0, &[("veloc", &veloc)]).unwrap();
        assert_eq!(r.trip, HealthTrip::Inf);
        assert_eq!(r.field, "veloc");
        assert_eq!(r.point, 1);
    }

    #[test]
    fn healthy_fields_pass() {
        let mut m = HealthMonitor::new(1);
        let displ = vec![1e-3f32; 16];
        for istep in 0..10 {
            assert!(m.check(0, istep, &[("displ", &displ)]).is_none());
        }
    }

    #[test]
    fn sustained_growth_trips_after_streak() {
        let mut m = HealthMonitor::new(1);
        // Norm sequence: 2, 40, 800, 16000 — three consecutive >10× jumps.
        let mut trip = None;
        for (istep, norm) in [2.0f32, 40.0, 800.0, 16000.0].iter().enumerate() {
            let field = vec![*norm; 4];
            trip = m.check(1, istep, &[("displ", &field)]);
            if trip.is_some() {
                break;
            }
        }
        let r = trip.expect("three 10x jumps must trip");
        assert_eq!(r.trip, HealthTrip::Growth);
        assert_eq!(r.step, 3);
    }

    #[test]
    fn single_jump_does_not_trip() {
        let mut m = HealthMonitor::new(1);
        // One big jump then plateau: a source onset, not an instability.
        for (istep, norm) in [0.0f32, 50.0, 55.0, 60.0, 58.0].iter().enumerate() {
            let field = vec![*norm; 4];
            assert!(m.check(0, istep, &[("displ", &field)]).is_none());
        }
    }

    #[test]
    fn growth_from_numerical_zero_is_ignored() {
        let mut m = HealthMonitor::new(1);
        // Each sample 100x the last but all below the floor until late:
        // the sub-floor samples must not count toward the streak.
        for (istep, norm) in [1e-9f32, 1e-7, 1e-5, 1e-3, 1e-1].iter().enumerate() {
            let field = vec![*norm; 4];
            assert!(m.check(0, istep, &[("displ", &field)]).is_none());
        }
    }

    #[test]
    fn hard_ceiling_trips_immediately() {
        let mut m = HealthMonitor::new(1);
        let field = vec![1e31f32; 4];
        let r = m.check(0, 0, &[("displ", &field)]).unwrap();
        assert_eq!(r.trip, HealthTrip::Growth);
    }

    #[test]
    fn re_arm_clears_growth_history() {
        let mut m = HealthMonitor::new(1);
        let a = vec![2.0f32; 4];
        let b = vec![40.0f32; 4];
        let c = vec![800.0f32; 4];
        assert!(m.check(0, 0, &[("displ", &a)]).is_none());
        assert!(m.check(0, 1, &[("displ", &b)]).is_none());
        assert!(m.check(0, 2, &[("displ", &c)]).is_none());
        // Without re-arm the next 10x jump would trip; after re-arm the
        // restored amplitude is a fresh reference point.
        m.re_arm();
        let d = vec![16000.0f32; 4];
        assert!(m.check(0, 3, &[("displ", &d)]).is_none());
    }

    #[test]
    fn report_json_shape() {
        let r = HealthReport {
            rank: 2,
            step: 40,
            field: "veloc",
            point: 17,
            element: Some(3),
            value: f64::INFINITY,
            norm: 1.5,
            trip: HealthTrip::Inf,
        };
        let j = r.to_json();
        assert!(j.contains("\"rank\":2"));
        assert!(j.contains("\"step\":40"));
        assert!(j.contains("\"element\":3"));
        assert!(j.contains("\"trip\":\"Inf\""));
    }
}
