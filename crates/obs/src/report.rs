//! The IPM-style cross-rank report (paper §5).
//!
//! IPM's banner for a SPECFEM run answers: how much of the main loop was
//! communication, how is it distributed over ranks (imbalance), which
//! operations dominate, and what message sizes move. [`IpmReport`]
//! reproduces that: per-rank rows, per-phase min/mean/max/imbalance
//! aggregated from span traces, per-tag traffic, and the top-k
//! message-size buckets — renderable as aligned plain text or JSON.
//! Construction is deterministic: inputs are sorted by rank and all maps
//! are ordered, so equal inputs (in any order) produce byte-identical
//! output.

use std::collections::BTreeMap;

use crate::json_escape;
use crate::metrics::LogHistogram;

/// Human-readable name for a known solver message tag (values mirror
/// `specfem_comm::tags`; this crate stays dependency-free, so they are
/// restated here and pinned by a test on the comm side). Unknown tags
/// render as an empty string.
pub fn tag_name(tag: u32) -> &'static str {
    match tag {
        100 => "halo_solid",
        101 => "halo_fluid",
        110 => "halo_batched_solid",
        111 => "halo_batched_fluid",
        200 => "reduce",
        201 => "bcast",
        202 => "barrier",
        300 => "mesh_handoff",
        _ => "",
    }
}

/// Traffic attributed to one message tag.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagTraffic {
    /// The message tag.
    pub tag: u32,
    /// Messages sent with it.
    pub messages: u64,
    /// Bytes sent with it.
    pub bytes: u64,
}

/// Everything one rank contributes to the report. The comm fields mirror
/// `specfem-comm`'s `StatsSnapshot` (this crate stays dependency-free;
/// the facade converts).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IpmRankInput {
    /// Rank id.
    pub rank: usize,
    /// Wall seconds of the measured window (the solver main loop).
    pub elapsed_s: f64,
    /// Wall seconds inside communication calls.
    pub comm_wall_s: f64,
    /// Modeled (latency/bandwidth) communication seconds.
    pub modeled_comm_s: f64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_received: u64,
    /// Point-to-point messages sent.
    pub messages_sent: u64,
    /// Collectives entered.
    pub collectives: u64,
    /// Per-tag sent traffic.
    pub per_tag: Vec<TagTraffic>,
    /// Sent message-size distribution.
    pub size_hist: LogHistogram,
    /// Seconds per span name, from the rank's trace (empty when tracing
    /// was off — the comm columns still fill in).
    pub phase_seconds: Vec<(String, f64)>,
}

/// One rank's row in the report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankRow {
    /// Rank id.
    pub rank: usize,
    /// Wall seconds of the measured window.
    pub elapsed_s: f64,
    /// Wall seconds communicating.
    pub comm_wall_s: f64,
    /// `comm_wall_s / elapsed_s`.
    pub comm_fraction: f64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_received: u64,
    /// Messages sent.
    pub messages_sent: u64,
}

/// Cross-rank aggregate for one phase (span name).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseRow {
    /// Span name.
    pub name: String,
    /// Fastest rank's total seconds in the phase.
    pub min_s: f64,
    /// Mean over reporting ranks.
    pub mean_s: f64,
    /// Slowest rank's total seconds.
    pub max_s: f64,
    /// Sum over ranks.
    pub total_s: f64,
    /// `max / mean` — 1.0 is perfectly balanced.
    pub imbalance: f64,
    /// Ranks that recorded the phase at all.
    pub ranks_reporting: usize,
}

/// The assembled cross-rank report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IpmReport {
    /// World size.
    pub ranks: usize,
    /// Slowest rank's wall seconds.
    pub wall_max_s: f64,
    /// Mean wall seconds.
    pub wall_mean_s: f64,
    /// Mean of per-rank comm fractions (the paper's 1.9–4.2 % numbers).
    pub comm_fraction_mean: f64,
    /// Smallest per-rank comm fraction.
    pub comm_fraction_min: f64,
    /// Largest per-rank comm fraction.
    pub comm_fraction_max: f64,
    /// Mean modeled-comm fraction (modeled seconds / wall).
    pub modeled_fraction_mean: f64,
    /// Total bytes sent over all ranks.
    pub total_bytes_sent: u64,
    /// Total bytes received over all ranks.
    pub total_bytes_received: u64,
    /// Total point-to-point messages.
    pub total_messages: u64,
    /// Total collectives entered.
    pub total_collectives: u64,
    /// One row per rank, ascending rank order.
    pub per_rank: Vec<RankRow>,
    /// Cross-rank phase table, alphabetical by name.
    pub phases: Vec<PhaseRow>,
    /// Merged per-tag traffic, ascending tag order.
    pub tags: Vec<TagTraffic>,
    /// Merged message-size distribution.
    pub size_hist: LogHistogram,
    /// Top-k `(lo, hi, count)` size buckets.
    pub top_sizes: Vec<(u64, u64, u64)>,
}

/// How many size buckets the banner lists.
const TOP_K_SIZES: usize = 8;

impl IpmReport {
    /// Aggregate per-rank inputs. Input order does not matter; the
    /// report is identical for any permutation of `inputs`.
    pub fn build(inputs: &[IpmRankInput]) -> IpmReport {
        let mut inputs: Vec<&IpmRankInput> = inputs.iter().collect();
        inputs.sort_by_key(|i| i.rank);
        let n = inputs.len();
        let nf = n.max(1) as f64;

        let mut report = IpmReport {
            ranks: n,
            comm_fraction_min: f64::INFINITY,
            ..IpmReport::default()
        };

        let mut tags: BTreeMap<u32, TagTraffic> = BTreeMap::new();
        let mut phases: BTreeMap<String, Vec<f64>> = BTreeMap::new();

        for i in &inputs {
            let frac = if i.elapsed_s > 0.0 {
                i.comm_wall_s / i.elapsed_s
            } else {
                0.0
            };
            let modeled_frac = if i.elapsed_s > 0.0 {
                i.modeled_comm_s / i.elapsed_s
            } else {
                0.0
            };
            report.wall_max_s = report.wall_max_s.max(i.elapsed_s);
            report.wall_mean_s += i.elapsed_s / nf;
            report.comm_fraction_mean += frac / nf;
            report.comm_fraction_min = report.comm_fraction_min.min(frac);
            report.comm_fraction_max = report.comm_fraction_max.max(frac);
            report.modeled_fraction_mean += modeled_frac / nf;
            report.total_bytes_sent += i.bytes_sent;
            report.total_bytes_received += i.bytes_received;
            report.total_messages += i.messages_sent;
            report.total_collectives += i.collectives;
            report.per_rank.push(RankRow {
                rank: i.rank,
                elapsed_s: i.elapsed_s,
                comm_wall_s: i.comm_wall_s,
                comm_fraction: frac,
                bytes_sent: i.bytes_sent,
                bytes_received: i.bytes_received,
                messages_sent: i.messages_sent,
            });
            for t in &i.per_tag {
                let e = tags.entry(t.tag).or_insert(TagTraffic {
                    tag: t.tag,
                    ..Default::default()
                });
                e.messages += t.messages;
                e.bytes += t.bytes;
            }
            report.size_hist.merge(&i.size_hist);
            for (name, secs) in &i.phase_seconds {
                phases.entry(name.clone()).or_default().push(*secs);
            }
        }
        if report.comm_fraction_min == f64::INFINITY {
            report.comm_fraction_min = 0.0;
        }

        report.tags = tags.into_values().collect();
        report.phases = phases
            .into_iter()
            .map(|(name, secs)| {
                let total: f64 = secs.iter().sum();
                let mean = total / secs.len() as f64;
                let min = secs.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = secs.iter().cloned().fold(0.0f64, f64::max);
                PhaseRow {
                    name,
                    min_s: min,
                    mean_s: mean,
                    max_s: max,
                    total_s: total,
                    imbalance: if mean > 0.0 { max / mean } else { 1.0 },
                    ranks_reporting: secs.len(),
                }
            })
            .collect();
        report.top_sizes = report.size_hist.top_k(TOP_K_SIZES);
        report
    }

    /// The IPM-style plain-text banner.
    pub fn render_text(&self) -> String {
        let mut o = String::new();
        let bar = "#".repeat(74);
        o.push_str(&bar);
        o.push('\n');
        o.push_str("# specfem-obs IPM-style report\n");
        o.push_str(&format!("# ranks      : {}\n", self.ranks));
        o.push_str(&format!(
            "# wallclock  : max {:.6} s   mean {:.6} s\n",
            self.wall_max_s, self.wall_mean_s
        ));
        o.push_str(&format!(
            "# comm       : mean {:.2} %   min {:.2} %   max {:.2} %   (modeled mean {:.2} %)\n",
            100.0 * self.comm_fraction_mean,
            100.0 * self.comm_fraction_min,
            100.0 * self.comm_fraction_max,
            100.0 * self.modeled_fraction_mean,
        ));
        o.push_str(&format!(
            "# bytes sent : {}   recv : {}   msgs : {}   collectives : {}\n",
            self.total_bytes_sent,
            self.total_bytes_received,
            self.total_messages,
            self.total_collectives
        ));
        if !self.phases.is_empty() {
            o.push_str(
                "#\n# phase                          min(s)     mean(s)    max(s)   imbal  ranks\n",
            );
            for p in &self.phases {
                o.push_str(&format!(
                    "# {:<28} {:>9.6} {:>10.6} {:>9.6} {:>6.2} {:>6}\n",
                    p.name, p.min_s, p.mean_s, p.max_s, p.imbalance, p.ranks_reporting
                ));
            }
        }
        if !self.tags.is_empty() {
            o.push_str("#\n# tag                            messages          bytes\n");
            for t in &self.tags {
                o.push_str(&format!(
                    "# {:<8} {:<20} {:>10} {:>14}\n",
                    t.tag,
                    tag_name(t.tag),
                    t.messages,
                    t.bytes
                ));
            }
        }
        if !self.top_sizes.is_empty() {
            o.push_str("#\n# message size bucket        count\n");
            for (lo, hi, c) in &self.top_sizes {
                o.push_str(&format!("# [{lo}, {hi}] B{:>width$}\n", c, width = 12));
            }
        }
        if self.size_hist.count() > 0 {
            o.push_str(&format!(
                "# size quantiles : p50 {} B   p95 {} B   p99 {} B\n",
                self.size_hist.quantile(0.50).unwrap_or(0),
                self.size_hist.quantile(0.95).unwrap_or(0),
                self.size_hist.quantile(0.99).unwrap_or(0),
            ));
        }
        o.push_str("#\n# rank     wall(s)    comm(s)   comm%      sent B      recv B    msgs\n");
        for r in &self.per_rank {
            o.push_str(&format!(
                "# {:<5} {:>9.6} {:>10.6} {:>6.2} {:>11} {:>11} {:>7}\n",
                r.rank,
                r.elapsed_s,
                r.comm_wall_s,
                100.0 * r.comm_fraction,
                r.bytes_sent,
                r.bytes_received,
                r.messages_sent
            ));
        }
        o.push_str(&bar);
        o.push('\n');
        o
    }

    /// JSON rendering (stable key order, parseable by the vendored
    /// `serde_json` stand-in).
    pub fn to_json(&self) -> String {
        let mut o = String::from("{");
        o.push_str(&format!("\"ranks\":{},", self.ranks));
        o.push_str(&format!("\"wall_max_s\":{:.9},", self.wall_max_s));
        o.push_str(&format!("\"wall_mean_s\":{:.9},", self.wall_mean_s));
        o.push_str(&format!(
            "\"comm_fraction\":{{\"mean\":{:.9},\"min\":{:.9},\"max\":{:.9},\"modeled_mean\":{:.9}}},",
            self.comm_fraction_mean,
            self.comm_fraction_min,
            self.comm_fraction_max,
            self.modeled_fraction_mean
        ));
        o.push_str(&format!(
            "\"totals\":{{\"bytes_sent\":{},\"bytes_received\":{},\"messages\":{},\"collectives\":{}}},",
            self.total_bytes_sent,
            self.total_bytes_received,
            self.total_messages,
            self.total_collectives
        ));
        o.push_str("\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&format!(
                "{{\"name\":\"{}\",\"min_s\":{:.9},\"mean_s\":{:.9},\"max_s\":{:.9},\"total_s\":{:.9},\"imbalance\":{:.9},\"ranks\":{}}}",
                json_escape(&p.name), p.min_s, p.mean_s, p.max_s, p.total_s, p.imbalance, p.ranks_reporting
            ));
        }
        o.push_str("],\"tags\":[");
        for (i, t) in self.tags.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&format!(
                "{{\"tag\":{},\"messages\":{},\"bytes\":{}}}",
                t.tag, t.messages, t.bytes
            ));
        }
        o.push_str("],\"top_message_sizes\":[");
        for (i, (lo, hi, c)) in self.top_sizes.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&format!("{{\"lo\":{lo},\"hi\":{hi},\"count\":{c}}}"));
        }
        o.push_str(&format!(
            "],\"size_quantiles\":{{\"p50\":{},\"p95\":{},\"p99\":{}}},",
            self.size_hist.quantile(0.50).unwrap_or(0),
            self.size_hist.quantile(0.95).unwrap_or(0),
            self.size_hist.quantile(0.99).unwrap_or(0),
        ));
        o.push_str("\"per_rank\":[");
        for (i, r) in self.per_rank.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&format!(
                "{{\"rank\":{},\"wall_s\":{:.9},\"comm_s\":{:.9},\"comm_fraction\":{:.9},\"bytes_sent\":{},\"bytes_received\":{},\"messages_sent\":{}}}",
                r.rank, r.elapsed_s, r.comm_wall_s, r.comm_fraction, r.bytes_sent, r.bytes_received, r.messages_sent
            ));
        }
        o.push_str("]}");
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(rank: usize, elapsed: f64, comm: f64, bytes: u64) -> IpmRankInput {
        let mut size_hist = LogHistogram::default();
        size_hist.record(bytes);
        IpmRankInput {
            rank,
            elapsed_s: elapsed,
            comm_wall_s: comm,
            modeled_comm_s: comm / 2.0,
            bytes_sent: bytes,
            bytes_received: bytes,
            messages_sent: 4,
            collectives: 2,
            per_tag: vec![TagTraffic {
                tag: 100,
                messages: 4,
                bytes,
            }],
            size_hist,
            phase_seconds: vec![("forces".into(), elapsed - comm), ("halo".into(), comm)],
        }
    }

    #[test]
    fn aggregates_across_ranks() {
        let r = IpmReport::build(&[input(0, 2.0, 0.1, 1000), input(1, 2.5, 0.2, 3000)]);
        assert_eq!(r.ranks, 2);
        assert!((r.wall_max_s - 2.5).abs() < 1e-12);
        assert_eq!(r.total_bytes_sent, 4000);
        assert_eq!(r.total_messages, 8);
        assert_eq!(r.tags.len(), 1);
        assert_eq!(r.tags[0].bytes, 4000);
        assert_eq!(r.phases.len(), 2);
        let halo = r.phases.iter().find(|p| p.name == "halo").unwrap();
        assert!((halo.total_s - 0.3).abs() < 1e-12);
        assert!((halo.max_s - 0.2).abs() < 1e-12);
        assert_eq!(halo.ranks_reporting, 2);
        assert!(halo.imbalance > 1.0);
        // comm fractions: 0.05 and 0.08.
        assert!((r.comm_fraction_min - 0.05).abs() < 1e-12);
        assert!((r.comm_fraction_max - 0.08).abs() < 1e-12);
    }

    #[test]
    fn order_independent_and_deterministic() {
        let a = vec![input(0, 2.0, 0.1, 1000), input(1, 2.5, 0.2, 3000)];
        let b = vec![a[1].clone(), a[0].clone()];
        let ra = IpmReport::build(&a);
        let rb = IpmReport::build(&b);
        assert_eq!(ra, rb);
        assert_eq!(ra.render_text(), rb.render_text());
        assert_eq!(ra.to_json(), rb.to_json());
    }

    #[test]
    fn empty_input_is_well_defined() {
        let r = IpmReport::build(&[]);
        assert_eq!(r.ranks, 0);
        assert_eq!(r.comm_fraction_min, 0.0);
        assert!(r.render_text().contains("ranks      : 0"));
        assert!(r.to_json().starts_with('{'));
    }

    #[test]
    fn text_banner_contains_key_lines() {
        let r = IpmReport::build(&[input(0, 2.0, 0.1, 1000)]);
        let text = r.render_text();
        assert!(text.contains("comm       : mean 5.00 %"));
        assert!(text.contains("forces"));
        assert!(text.contains("message size bucket"));
        // Single recorded size (1000 B): every quantile is the value.
        assert!(text.contains("size quantiles : p50 1000 B   p95 1000 B   p99 1000 B"));
    }

    #[test]
    fn json_carries_size_quantiles() {
        let r = IpmReport::build(&[input(0, 2.0, 0.1, 1000)]);
        let json = r.to_json();
        assert!(json.contains("\"size_quantiles\":{\"p50\":1000,\"p95\":1000,\"p99\":1000}"));
        serde_json::from_str(&json).expect("valid JSON");
    }
}
