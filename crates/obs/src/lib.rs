//! `specfem-obs` — the observability subsystem (paper §5 methodology).
//!
//! The paper's scaling story rests on two instruments: **IPM**, which
//! reports per-rank communication time, byte counts, and message-size
//! distributions for the solver main loop, and the **PMaC** trace-driven
//! framework, which replays captured traces through machine models. This
//! crate is their in-process analog, shared by every other crate in the
//! workspace:
//!
//! * a **span tracer** ([`span`]) — scoped RAII timers with parent/child
//!   nesting, recorded into a fixed-capacity per-rank ring buffer;
//! * a **metrics registry** ([`metrics`]) — named counters, gauges, and
//!   log₂-bucketed histograms (message sizes, halo waits, step times);
//! * **exporters** — a Chrome/Perfetto `trace_event` JSON file per run
//!   ([`perfetto`]) and an IPM-style cross-rank report ([`report`]) with
//!   per-phase min/mean/max/imbalance, communication fractions, per-tag
//!   traffic, and top-k message sizes.
//!
//! # Threading model
//!
//! The workspace simulates MPI with one OS thread per rank, so all
//! recording state is **thread-local**: a rank thread calls
//! [`init_rank`] once, records spans and metrics while it works, and
//! harvests everything with [`finish_rank`], which returns the rank's
//! [`RankProfile`]. Threads that never call [`init_rank`] pay a single
//! relaxed atomic load per would-be span — the zero-cost-when-disabled
//! contract the hot kernels rely on.
//!
//! ```
//! use specfem_obs as obs;
//!
//! obs::init_rank(0, &obs::TraceConfig::default());
//! {
//!     let _outer = obs::span("timeloop");
//!     let _inner = obs::span("forces.solid");
//!     obs::hist_record("msg_bytes", 4096);
//!     obs::counter_add("steps", 1);
//! }
//! let profile = obs::finish_rank().unwrap();
//! assert_eq!(profile.rank, 0);
//! assert_eq!(profile.trace.events.len(), 2);
//! ```

pub mod flight;
pub mod global;
pub mod health;
pub mod ledger;
pub mod metrics;
pub mod perfetto;
pub mod report;
pub mod span;

pub use flight::{
    flight_active, flight_arm, flight_event, flight_harvest, flight_set_step, FlightEvent,
    FlightEventKind, FlightJournal,
};
pub use global::{
    global_counter_add, global_gauge_set, global_hist_record, global_reset, global_snapshot,
    metrics_json,
};
pub use health::{HealthMonitor, HealthReport, HealthTrip};
pub use ledger::{LedgerDiff, LedgerMachine, LedgerPhase, LedgerRecord, LEDGER_SCHEMA_VERSION};
pub use metrics::{LogHistogram, MetricName, MetricsRegistry, MetricsSnapshot};
pub use perfetto::{perfetto_json, perfetto_tracks, Track, TrackEvent};
pub use report::{IpmRankInput, IpmReport, PhaseRow, RankRow, TagTraffic};
pub use span::{RankTrace, Span, SpanEvent};

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A compact correlation id minted at the outermost entry point of a
/// piece of work (an HTTP request, a campaign job submit, a CLI run) and
/// propagated through every layer that executes on its behalf — daemon →
/// campaign → batch lanes → solver ranks. Rendered as 16 lowercase hex
/// digits everywhere it crosses a serialization boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Mint a fresh, non-zero id: an FNV-1a mix of the wall clock and a
    /// process-wide sequence number, so ids are unique within a process
    /// and overwhelmingly unlikely to collide across processes.
    pub fn mint() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        let seq = NEXT.fetch_add(1, Ordering::Relaxed);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in nanos.to_le_bytes().into_iter().chain(seq.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        if h == 0 {
            h = seq | 1;
        }
        TraceId(h)
    }

    /// The canonical wire form: 16 lowercase hex digits.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse the canonical wire form (exactly 16 hex digits).
    pub fn parse_hex(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Configuration for one rank's tracer.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Ring-buffer capacity in completed spans; when full, the oldest
    /// events are overwritten (the most recent window survives, like a
    /// flight recorder).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { capacity: 8192 }
    }
}

/// Everything one rank recorded: its trace and its metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankProfile {
    /// The rank id given to [`init_rank`].
    pub rank: usize,
    /// Completed spans (oldest first) and drop accounting.
    pub trace: RankTrace,
    /// Counter/gauge/histogram values at harvest time.
    pub metrics: MetricsSnapshot,
}

/// Number of threads with a live tracer — the global fast-path gate. A
/// relaxed load of this is the *entire* cost of a span on an
/// uninstrumented run.
static ACTIVE_TRACERS: AtomicUsize = AtomicUsize::new(0);

/// Common epoch for all ranks, so cross-rank timestamps line up in the
/// merged Perfetto timeline.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide trace epoch.
pub(crate) fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Nanoseconds since the process-wide trace epoch, for callers that
/// build their own timelines (e.g. the campaign runtime's per-worker
/// tracks) and need timestamps on the same axis as rank spans.
pub fn timestamp_ns() -> u64 {
    now_ns()
}

pub(crate) struct RankObs {
    pub(crate) rank: usize,
    pub(crate) spans: span::SpanRecorder,
    pub(crate) metrics: MetricsRegistry,
}

thread_local! {
    static RANK_OBS: RefCell<Option<RankObs>> = const { RefCell::new(None) };
}

/// Start recording on the current thread as `rank`. A second call on the
/// same thread replaces the previous recorder (its data is discarded).
pub fn init_rank(rank: usize, config: &TraceConfig) {
    // Pin the epoch before the first span so ts 0 ≈ run start.
    let _ = now_ns();
    RANK_OBS.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_none() {
            ACTIVE_TRACERS.fetch_add(1, Ordering::Relaxed);
        }
        *slot = Some(RankObs {
            rank,
            spans: span::SpanRecorder::new(config.capacity),
            metrics: MetricsRegistry::default(),
        });
    });
}

/// Stop recording on the current thread and return everything it
/// captured. Returns `None` when [`init_rank`] was never called (the
/// disabled path), so callers can write
/// `profile: specfem_obs::finish_rank()` unconditionally.
pub fn finish_rank() -> Option<RankProfile> {
    RANK_OBS.with(|slot| {
        let taken = slot.borrow_mut().take();
        taken.map(|obs| {
            ACTIVE_TRACERS.fetch_sub(1, Ordering::Relaxed);
            RankProfile {
                rank: obs.rank,
                trace: obs.spans.finish(obs.rank),
                metrics: obs.metrics.snapshot(),
            }
        })
    })
}

/// Whether the current thread has a live tracer.
pub fn is_active() -> bool {
    if ACTIVE_TRACERS.load(Ordering::Relaxed) == 0 {
        return false;
    }
    RANK_OBS.with(|slot| slot.borrow().is_some())
}

/// Run `f` against the current thread's recorder, if any.
pub(crate) fn with_obs<R>(f: impl FnOnce(&mut RankObs) -> R) -> Option<R> {
    if ACTIVE_TRACERS.load(Ordering::Relaxed) == 0 {
        return None;
    }
    RANK_OBS.with(|slot| slot.borrow_mut().as_mut().map(f))
}

/// Open a scoped span; it closes (and is recorded) when the returned
/// guard drops. Spans feed both the tracer ring buffer and, when the
/// thread's flight recorder is armed, the flight journal. On a thread
/// with neither instrument this is two relaxed atomic loads and returns
/// an inert guard — still effectively free next to the work spans wrap.
#[inline]
pub fn span(name: &'static str) -> Span {
    let traced = ACTIVE_TRACERS.load(Ordering::Relaxed) != 0;
    if !traced && !flight::any_armed() {
        return Span::inert();
    }
    Span::open(name, traced)
}

/// Add `delta` to the named counter (no-op without a live tracer).
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    with_obs(|o| o.metrics.counter_add(name, delta));
}

/// Set the named gauge (no-op without a live tracer).
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    with_obs(|o| o.metrics.gauge_set(name, value));
}

/// Record `value` into the named log₂ histogram (no-op without a live
/// tracer).
#[inline]
pub fn hist_record(name: &'static str, value: u64) {
    with_obs(|o| o.metrics.hist_record(name, value));
}

/// Escape a string for inclusion in a JSON string literal (shared by the
/// exporters; kept public so downstream report embedders reuse it).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_thread_records_nothing() {
        assert!(!is_active());
        {
            let _s = span("ignored");
            counter_add("ignored", 1);
            hist_record("ignored", 2);
            gauge_set("ignored", 3.0);
        }
        assert!(finish_rank().is_none());
    }

    #[test]
    fn init_record_finish_roundtrip() {
        init_rank(7, &TraceConfig::default());
        assert!(is_active());
        {
            let _outer = span("outer");
            let _inner = span("inner");
            counter_add("n", 2);
            counter_add("n", 3);
            gauge_set("g", 1.5);
            hist_record("h", 1024);
        }
        let p = finish_rank().unwrap();
        assert!(!is_active());
        assert_eq!(p.rank, 7);
        assert_eq!(p.trace.events.len(), 2);
        assert_eq!(p.metrics.counters.get("n"), Some(&5));
        assert_eq!(p.metrics.gauges.get("g"), Some(&1.5));
        assert_eq!(p.metrics.histograms.get("h").unwrap().count(), 1);
        p.trace.check_well_formed().unwrap();
    }

    #[test]
    fn reinit_replaces_previous_recorder() {
        init_rank(0, &TraceConfig::default());
        {
            let _s = span("a");
        }
        init_rank(1, &TraceConfig::default());
        let p = finish_rank().unwrap();
        assert_eq!(p.rank, 1);
        assert!(p.trace.events.is_empty());
        assert!(finish_rank().is_none());
    }

    #[test]
    fn trace_ids_are_unique_nonzero_and_roundtrip_hex() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        assert_ne!(a.0, 0);
        let hex = a.hex();
        assert_eq!(hex.len(), 16);
        assert_eq!(TraceId::parse_hex(&hex), Some(a));
        assert_eq!(format!("{a}"), hex);
        assert_eq!(TraceId::parse_hex("zzzz"), None);
        assert_eq!(TraceId::parse_hex("0123456789abcdeg"), None);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
