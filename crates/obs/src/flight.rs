//! The per-rank flight recorder — a fixed-size ring journal of recent
//! runtime events (span enter/exit, comm send/recv/wait edges, health
//! samples, checkpoint/restore marks) kept so that when a rank dies the
//! last moments before the failure survive for the crash dossier.
//!
//! Mirrors the span tracer's threading contract: state is thread-local,
//! armed per rank thread with [`flight_arm`] and harvested with
//! [`flight_harvest`]. A disarmed thread pays one relaxed atomic load
//! per would-be event — the same zero-cost-when-disabled discipline the
//! hot kernels already rely on, which is what keeps an armed recorder
//! bit-transparent to the physics (it only ever *reads* metadata, never
//! field values).

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::now_ns;

/// What a journal entry records. Discriminants are stable — they are the
/// on-disk codes inside crash-dossier containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightEventKind {
    /// A span opened (`label` = span name).
    SpanEnter = 0,
    /// A span closed (`label` = span name, `a` = duration ns).
    SpanExit = 1,
    /// A point-to-point send (`a` = message tag, `b` = bytes).
    CommSend = 2,
    /// A point-to-point receive (`b` = bytes).
    CommRecv = 3,
    /// A completed wait on a non-blocking request (`a` = overlap ns,
    /// `b` = blocked ns).
    CommWait = 4,
    /// A clean numerical-health sample.
    HealthSample = 5,
    /// The health monitor tripped (`label` = field, `a` = flat point).
    HealthTrip = 6,
    /// A checkpoint was written (`a` = next resume step).
    Checkpoint = 7,
    /// State was restored from a checkpoint (`a` = resume step).
    Restore = 8,
}

impl FlightEventKind {
    /// Decode the stable on-disk discriminant.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Self::SpanEnter,
            1 => Self::SpanExit,
            2 => Self::CommSend,
            3 => Self::CommRecv,
            4 => Self::CommWait,
            5 => Self::HealthSample,
            6 => Self::HealthTrip,
            7 => Self::Checkpoint,
            8 => Self::Restore,
            _ => return None,
        })
    }

    /// Human-readable name (dossier rendering).
    pub fn name(&self) -> &'static str {
        match self {
            Self::SpanEnter => "span_enter",
            Self::SpanExit => "span_exit",
            Self::CommSend => "send",
            Self::CommRecv => "recv",
            Self::CommWait => "wait",
            Self::HealthSample => "health_sample",
            Self::HealthTrip => "health_trip",
            Self::Checkpoint => "checkpoint",
            Self::Restore => "restore",
        }
    }
}

/// One journal entry. Fixed-size except for the static label, so the
/// ring never allocates while recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Nanoseconds since the process trace epoch.
    pub t_ns: u64,
    /// The time step the rank was on (see [`flight_set_step`]).
    pub step: u64,
    /// What happened.
    pub kind: FlightEventKind,
    /// Kind-specific operand (tag, duration, point, …).
    pub a: u64,
    /// Kind-specific operand (bytes, blocked ns, …).
    pub b: u64,
    /// Static label (span name, field name, `""` when irrelevant).
    pub label: &'static str,
}

/// One rank's harvested journal, oldest event first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightJournal {
    /// The rank that recorded it.
    pub rank: usize,
    /// Ring capacity the journal ran with.
    pub capacity: usize,
    /// Events overwritten after the ring filled — how much history was
    /// lost before the harvest.
    pub dropped: u64,
    /// Surviving events, oldest first.
    pub events: Vec<FlightEvent>,
}

struct FlightRing {
    rank: usize,
    capacity: usize,
    buf: Vec<FlightEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
    step: u64,
}

impl FlightRing {
    fn push(&mut self, e: FlightEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn finish(mut self) -> FlightJournal {
        self.buf.rotate_left(self.head);
        FlightJournal {
            rank: self.rank,
            capacity: self.capacity,
            dropped: self.dropped,
            events: self.buf,
        }
    }
}

/// Number of threads with an armed journal — the global fast-path gate.
/// A relaxed load of this is the entire cost of a would-be event on a
/// disarmed run.
static ACTIVE_FLIGHT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static FLIGHT: RefCell<Option<FlightRing>> = const { RefCell::new(None) };
}

/// Arm the flight recorder on the current thread as `rank` with a ring
/// of `capacity` events (clamped to at least 16). A second call replaces
/// the previous journal, discarding it.
pub fn flight_arm(rank: usize, capacity: usize) {
    let _ = now_ns(); // pin the shared epoch before the first event
    FLIGHT.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_none() {
            ACTIVE_FLIGHT.fetch_add(1, Ordering::Relaxed);
        }
        *slot = Some(FlightRing {
            rank,
            capacity: capacity.max(16),
            buf: Vec::new(),
            head: 0,
            dropped: 0,
            step: 0,
        });
    });
}

/// Disarm the current thread's journal and return it (`None` when
/// [`flight_arm`] was never called — the disabled path), so callers can
/// harvest unconditionally on both success and failure exits.
pub fn flight_harvest() -> Option<FlightJournal> {
    FLIGHT.with(|slot| {
        let taken = slot.borrow_mut().take();
        taken.map(|ring| {
            ACTIVE_FLIGHT.fetch_sub(1, Ordering::Relaxed);
            ring.finish()
        })
    })
}

/// Whether *any* thread currently has an armed journal (the cheap global
/// gate; thread-locality is resolved inside the recording calls).
#[inline]
pub(crate) fn any_armed() -> bool {
    ACTIVE_FLIGHT.load(Ordering::Relaxed) != 0
}

/// Whether the current thread has an armed journal.
pub fn flight_active() -> bool {
    if !any_armed() {
        return false;
    }
    FLIGHT.with(|slot| slot.borrow().is_some())
}

#[inline]
fn with_ring(f: impl FnOnce(&mut FlightRing)) {
    if !any_armed() {
        return;
    }
    FLIGHT.with(|slot| {
        if let Some(ring) = slot.borrow_mut().as_mut() {
            f(ring);
        }
    });
}

/// Update the step counter stamped onto subsequent events (no-op when
/// disarmed — one relaxed atomic load).
#[inline]
pub fn flight_set_step(step: u64) {
    with_ring(|r| r.step = step);
}

/// Journal one event at an explicit timestamp — used by the span layer,
/// which measures its own enter/exit instants so the exit's recorded
/// duration exactly equals the journaled timestamp delta.
#[inline]
pub(crate) fn flight_event_at(
    t_ns: u64,
    kind: FlightEventKind,
    label: &'static str,
    a: u64,
    b: u64,
) {
    with_ring(|r| {
        let e = FlightEvent {
            t_ns,
            step: r.step,
            kind,
            a,
            b,
            label,
        };
        r.push(e);
    });
}

/// Journal one event (no-op when disarmed — one relaxed atomic load).
#[inline]
pub fn flight_event(kind: FlightEventKind, label: &'static str, a: u64, b: u64) {
    with_ring(|r| {
        let e = FlightEvent {
            t_ns: now_ns(),
            step: r.step,
            kind,
            a,
            b,
            label,
        };
        r.push(e);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_thread_records_nothing() {
        assert!(!flight_active());
        flight_event(FlightEventKind::CommSend, "", 1, 2);
        flight_set_step(5);
        assert!(flight_harvest().is_none());
    }

    #[test]
    fn arm_record_harvest_roundtrip() {
        flight_arm(3, 64);
        assert!(flight_active());
        flight_set_step(7);
        flight_event(FlightEventKind::CommSend, "", 100, 4096);
        flight_event(FlightEventKind::Checkpoint, "", 8, 0);
        let j = flight_harvest().unwrap();
        assert!(!flight_active());
        assert_eq!(j.rank, 3);
        assert_eq!(j.dropped, 0);
        assert_eq!(j.events.len(), 2);
        assert_eq!(j.events[0].kind, FlightEventKind::CommSend);
        assert_eq!(j.events[0].step, 7);
        assert_eq!(j.events[0].a, 100);
        assert_eq!(j.events[0].b, 4096);
        assert_eq!(j.events[1].kind, FlightEventKind::Checkpoint);
        assert!(flight_harvest().is_none());
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        flight_arm(0, 16); // capacity clamp floor
        for i in 0..40u64 {
            flight_event(FlightEventKind::CommRecv, "", i, 0);
        }
        let j = flight_harvest().unwrap();
        assert_eq!(j.capacity, 16);
        assert_eq!(j.events.len(), 16);
        assert_eq!(j.dropped, 24);
        // Oldest-first ordering survives the wrap: the survivors are the
        // last 16 events, in emission order.
        let seen: Vec<u64> = j.events.iter().map(|e| e.a).collect();
        assert_eq!(seen, (24..40).collect::<Vec<u64>>());
        for w in j.events.windows(2) {
            assert!(w[0].t_ns <= w[1].t_ns);
        }
    }

    #[test]
    fn spans_are_journaled_when_armed_without_a_tracer() {
        flight_arm(1, 64);
        {
            let _s = crate::span("flight.test.phase");
        }
        let j = flight_harvest().unwrap();
        let kinds: Vec<FlightEventKind> = j.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![FlightEventKind::SpanEnter, FlightEventKind::SpanExit]
        );
        assert_eq!(j.events[0].label, "flight.test.phase");
        assert_eq!(j.events[1].label, "flight.test.phase");
        // Exit carries the duration.
        assert_eq!(j.events[1].a, j.events[1].t_ns - j.events[0].t_ns);
    }

    #[test]
    fn kind_codes_roundtrip() {
        for code in 0u8..=8 {
            let k = FlightEventKind::from_code(code).unwrap();
            assert_eq!(k as u8, code);
            assert!(!k.name().is_empty());
        }
        assert_eq!(FlightEventKind::from_code(9), None);
    }
}
