//! Scoped spans with parent/child nesting and a per-rank ring buffer.
//!
//! A [`Span`] is an RAII timer: opening pushes onto the rank's span
//! stack, dropping pops and records a completed [`SpanEvent`]. Guards may
//! be dropped out of order (e.g. held in collections); closing a span
//! that still has open children closes the children at the same instant,
//! so the recorded event set always forms a well-formed tree — verified
//! by [`RankTrace::check_well_formed`] and the crate's proptests.

use crate::flight::{self, FlightEventKind};
use crate::{now_ns, with_obs};

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name (e.g. `"forces.solid"`).
    pub name: &'static str,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at open (0 = top level).
    pub depth: u16,
}

impl SpanEvent {
    /// End timestamp (ns since epoch).
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// An open span on the stack.
struct OpenSpan {
    id: u64,
    name: &'static str,
    start_ns: u64,
}

/// Fixed-capacity ring of completed spans: when full, the oldest events
/// are overwritten so the most recent window survives (flight-recorder
/// semantics — on a 100k-step run you want the steady state, not the
/// first second).
pub(crate) struct SpanRecorder {
    capacity: usize,
    buf: Vec<SpanEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// Events overwritten after the ring filled.
    dropped: u64,
    stack: Vec<OpenSpan>,
    next_id: u64,
}

impl SpanRecorder {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            buf: Vec::new(),
            head: 0,
            dropped: 0,
            stack: Vec::new(),
            next_id: 0,
        }
    }

    fn push_event(&mut self, e: SpanEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn open(&mut self, name: &'static str) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.stack.push(OpenSpan {
            id,
            name,
            start_ns: now_ns(),
        });
        id
    }

    /// Close span `id` and any of its still-open children (they all end
    /// at the same instant, preserving tree shape under out-of-order
    /// guard drops). Ignores ids already closed by a parent.
    fn close(&mut self, id: u64) {
        let Some(pos) = self.stack.iter().rposition(|s| s.id == id) else {
            return;
        };
        let end = now_ns();
        while self.stack.len() > pos {
            let open = self.stack.pop().unwrap();
            let depth = self.stack.len() as u16;
            self.push_event(SpanEvent {
                name: open.name,
                start_ns: open.start_ns,
                dur_ns: end.saturating_sub(open.start_ns),
                depth,
            });
        }
    }

    /// Close anything still open and return the trace, oldest event
    /// first.
    pub(crate) fn finish(mut self, rank: usize) -> RankTrace {
        if let Some(bottom) = self.stack.first().map(|s| s.id) {
            self.close(bottom);
        }
        let mut events = self.buf;
        events.rotate_left(self.head);
        RankTrace {
            rank,
            events,
            dropped: self.dropped,
        }
    }
}

/// RAII guard returned by [`crate::span`].
pub struct Span {
    id: Option<u64>,
    /// `(name, start_ns)` when this thread's flight recorder is armed —
    /// the span is then also journaled as enter/exit flight events.
    flight: Option<(&'static str, u64)>,
}

impl Span {
    pub(crate) fn inert() -> Self {
        Span {
            id: None,
            flight: None,
        }
    }

    pub(crate) fn open(name: &'static str, traced: bool) -> Self {
        let id = if traced {
            with_obs(|o| o.spans.open(name))
        } else {
            None
        };
        let flight = if flight::flight_active() {
            let t0 = now_ns();
            flight::flight_event_at(t0, FlightEventKind::SpanEnter, name, 0, 0);
            Some((name, t0))
        } else {
            None
        };
        Span { id, flight }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            with_obs(|o| o.spans.close(id));
        }
        if let Some((name, t0)) = self.flight {
            let t1 = now_ns();
            flight::flight_event_at(t1, FlightEventKind::SpanExit, name, t1 - t0, 0);
        }
    }
}

/// One rank's completed trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankTrace {
    /// The rank that recorded it.
    pub rank: usize,
    /// Completed spans, oldest first. Children are recorded before their
    /// parents (a span completes only after everything inside it).
    pub events: Vec<SpanEvent>,
    /// Events overwritten because the ring buffer was full.
    pub dropped: u64,
}

impl RankTrace {
    /// Total seconds per span name (durations summed over all
    /// occurrences). Nested spans contribute to their own name only, so
    /// phase names should not nest within themselves.
    pub fn phase_seconds(&self) -> Vec<(String, f64)> {
        let mut per: std::collections::BTreeMap<&'static str, f64> = Default::default();
        for e in &self.events {
            *per.entry(e.name).or_default() += e.dur_ns as f64 * 1e-9;
        }
        per.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
    }

    /// Verify the events form a well-formed forest: any two spans are
    /// either disjoint in time or properly nested (with the inner one
    /// deeper). Quadratic — a test/debug aid, not a hot path.
    pub fn check_well_formed(&self) -> Result<(), String> {
        for (i, a) in self.events.iter().enumerate() {
            for b in self.events.iter().skip(i + 1) {
                let disjoint = a.end_ns() <= b.start_ns || b.end_ns() <= a.start_ns;
                let a_in_b = a.start_ns >= b.start_ns && a.end_ns() <= b.end_ns();
                let b_in_a = b.start_ns >= a.start_ns && b.end_ns() <= a.end_ns();
                if !(disjoint || a_in_b || b_in_a) {
                    return Err(format!("spans overlap without nesting: {a:?} vs {b:?}"));
                }
                // Equal-interval spans arise when a parent closes its
                // children at the same instant; depth still orders them.
                if (a_in_b && b_in_a) && a.depth == b.depth && a.name != b.name {
                    continue; // zero-length siblings at one instant are fine
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{finish_rank, init_rank, span, TraceConfig};

    #[test]
    fn nesting_depths_are_recorded() {
        init_rank(0, &TraceConfig::default());
        {
            let _a = span("a");
            {
                let _b = span("b");
                let _c = span("c");
            }
        }
        let t = finish_rank().unwrap().trace;
        let depth_of = |n: &str| t.events.iter().find(|e| e.name == n).unwrap().depth;
        assert_eq!(depth_of("a"), 0);
        assert_eq!(depth_of("b"), 1);
        assert_eq!(depth_of("c"), 2);
        t.check_well_formed().unwrap();
    }

    #[test]
    fn out_of_order_drop_closes_children() {
        init_rank(0, &TraceConfig::default());
        let a = span("a");
        let _b = span("b"); // child of a, dropped after a below
        drop(a); // closes both a and b
        let t = finish_rank().unwrap().trace;
        assert_eq!(t.events.len(), 2);
        t.check_well_formed().unwrap();
        // b must be contained in a.
        let ea = t.events.iter().find(|e| e.name == "a").unwrap();
        let eb = t.events.iter().find(|e| e.name == "b").unwrap();
        assert!(eb.start_ns >= ea.start_ns && eb.end_ns() <= ea.end_ns());
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        init_rank(0, &TraceConfig { capacity: 4 });
        for i in 0..10u64 {
            let _s = span(if i % 2 == 0 { "even" } else { "odd" });
        }
        let t = finish_rank().unwrap().trace;
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.dropped, 6);
        // Oldest-first ordering survives the wrap.
        for w in t.events.windows(2) {
            assert!(w[0].start_ns <= w[1].start_ns);
        }
    }

    #[test]
    fn unclosed_spans_are_closed_at_finish() {
        init_rank(3, &TraceConfig::default());
        let _leak = span("leaked");
        std::mem::forget(_leak);
        let t = finish_rank().unwrap().trace;
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].name, "leaked");
    }

    #[test]
    fn phase_seconds_sums_by_name() {
        init_rank(0, &TraceConfig::default());
        for _ in 0..3 {
            let _s = span("x");
        }
        {
            let _s = span("y");
        }
        let t = finish_rank().unwrap().trace;
        let phases = t.phase_seconds();
        let names: Vec<&str> = phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["x", "y"]);
    }
}
