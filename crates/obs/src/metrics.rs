//! Named counters, gauges, and log₂-bucketed histograms.
//!
//! The histogram is the IPM message-size distribution analog: 65 buckets
//! where bucket 0 holds exact zeros and bucket *i* ≥ 1 holds values in
//! `[2^(i−1), 2^i)` (bucket 64 tops out at `u64::MAX`). Recording is an
//! `ilog2` and an array increment — cheap enough for per-message use.

use std::borrow::Cow;
use std::collections::BTreeMap;

/// Number of histogram buckets: zeros + one per bit position.
pub const HIST_BUCKETS: usize = 65;

/// Metric-name key: `&'static str` call sites stay allocation-free
/// (`Cow::Borrowed`), while daemons may register dynamic names (per-route
/// request labels) with owned strings.
pub type MetricName = Cow<'static, str>;

/// A log₂-scale histogram over `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    /// Per-bucket counts; see [`LogHistogram::bucket_index`].
    pub counts: [u64; HIST_BUCKETS],
    /// Number of recorded values.
    count: u64,
    /// Saturating sum of recorded values.
    sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    min: u64,
    /// Largest recorded value (0 when empty).
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// The bucket a value lands in: 0 for 0, else `ilog2(v) + 1`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Inclusive `(lo, hi)` value range of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HIST_BUCKETS, "bucket {i} out of range");
        if i == 0 {
            (0, 0)
        } else if i == HIST_BUCKETS - 1 {
            (1 << (i - 1), u64::MAX)
        } else {
            (1 << (i - 1), (1 << i) - 1)
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values (0 when empty; saturated sums bias low).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) of the recorded
    /// values: walk the cumulative bucket counts to the bucket holding
    /// the target rank, then interpolate linearly by rank position
    /// within the bucket's value range (clamped to the observed
    /// min/max, so estimates never leave the data range). `None` when
    /// empty. An estimate — exact only when every value in the target
    /// bucket sits at the interpolated position — but log₂ buckets
    /// bound the relative error at 2× worst case, plenty for latency
    /// reporting.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Target rank in [1, count].
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let (lo, hi) = Self::bucket_bounds(i);
                let lo = lo.max(self.min);
                let hi = hi.min(self.max);
                if hi <= lo {
                    return Some(lo);
                }
                let frac = (target - seen) as f64 / c as f64;
                return Some(lo + ((hi - lo) as f64 * frac).round() as u64);
            }
            seen += c;
        }
        Some(self.max)
    }

    /// The `k` most-populated buckets as `(lo, hi, count)`, ordered by
    /// descending count then ascending lower bound — the IPM "top
    /// message sizes" table.
    pub fn top_k(&self, k: usize) -> Vec<(u64, u64, u64)> {
        let mut occupied: Vec<(usize, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect();
        occupied.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        occupied
            .into_iter()
            .take(k)
            .map(|(i, c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }
}

/// Per-rank registry of named metrics. Keys are [`MetricName`]s: the hot
/// paths pass `&'static str` (a `Cow::Borrowed` — recording never
/// allocates), while daemon surfaces may register dynamic names such as
/// per-route request labels.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricName, u64>,
    gauges: BTreeMap<MetricName, f64>,
    histograms: BTreeMap<MetricName, LogHistogram>,
}

impl MetricsRegistry {
    /// Add `delta` to a counter (created at 0 on first use).
    pub fn counter_add(&mut self, name: impl Into<MetricName>, delta: u64) {
        *self.counters.entry(name.into()).or_default() += delta;
    }

    /// Set a gauge to its latest value.
    pub fn gauge_set(&mut self, name: impl Into<MetricName>, value: f64) {
        self.gauges.insert(name.into(), value);
    }

    /// Record into a histogram (created empty on first use).
    pub fn hist_record(&mut self, name: impl Into<MetricName>, value: u64) {
        self.histograms
            .entry(name.into())
            .or_default()
            .record(value);
    }

    /// Immutable copy with owned keys (deterministic `BTreeMap` order).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }
}

/// Immutable copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counts.
    pub counters: BTreeMap<String, u64>,
    /// Last-set values.
    pub gauges: BTreeMap<String, f64>,
    /// Log₂ distributions.
    pub histograms: BTreeMap<String, LogHistogram>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 64);
        assert_eq!(LogHistogram::bucket_bounds(0), (0, 0));
        assert_eq!(LogHistogram::bucket_bounds(1), (1, 1));
        assert_eq!(LogHistogram::bucket_bounds(2), (2, 3));
        assert_eq!(LogHistogram::bucket_bounds(64).1, u64::MAX);
    }

    #[test]
    fn record_zero_and_max() {
        let mut h = LogHistogram::default();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[64], 1);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.sum(), u64::MAX); // saturated
    }

    #[test]
    fn merge_and_top_k() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        for _ in 0..5 {
            a.record(1000); // bucket 10
        }
        for _ in 0..3 {
            b.record(1000);
        }
        b.record(7); // bucket 3
        a.merge(&b);
        assert_eq!(a.count(), 9);
        let top = a.top_k(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], (512, 1023, 8));
        assert_eq!(top[1], (4, 7, 1));
    }

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = LogHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), None);
        assert!(h.top_k(3).is_empty());
    }

    #[test]
    fn quantiles_walk_cumulative_buckets() {
        let mut h = LogHistogram::default();
        // 100 values of 100 (bucket [64,127]) and 1 value of 100_000.
        for _ in 0..100 {
            h.record(100);
        }
        h.record(100_000);
        // Low/median quantiles stay inside the dominant bucket, clamped
        // to the observed range.
        let p50 = h.quantile(0.5).unwrap();
        assert!((100..=127).contains(&p50), "p50 {p50}");
        // p99 = rank 100 of 101, still the dominant bucket.
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 <= 127, "p99 {p99}");
        // The max quantile reaches the outlier exactly (clamped to max).
        assert_eq!(h.quantile(1.0), Some(100_000));
        // Degenerate single-value histogram: every quantile is the value.
        let mut one = LogHistogram::default();
        one.record(42);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), Some(42));
        }
    }

    #[test]
    fn dynamic_string_keys_coexist_with_static_keys() {
        let mut r = MetricsRegistry::default();
        r.counter_add("static.key", 1);
        r.counter_add(String::from("dyn{route=\"/x\",outcome=\"200\"}"), 2);
        r.hist_record(String::from("h dyn"), 7);
        let s = r.snapshot();
        assert_eq!(s.counters.get("static.key"), Some(&1));
        assert_eq!(
            s.counters.get("dyn{route=\"/x\",outcome=\"200\"}"),
            Some(&2)
        );
        assert_eq!(s.histograms.get("h dyn").unwrap().count(), 1);
    }

    #[test]
    fn registry_snapshot_is_deterministic() {
        let mut r = MetricsRegistry::default();
        r.counter_add("z", 1);
        r.counter_add("a", 2);
        r.gauge_set("g", 9.0);
        r.hist_record("h", 33);
        let s1 = r.snapshot();
        let s2 = r.snapshot();
        assert_eq!(s1, s2);
        let keys: Vec<&String> = s1.counters.keys().collect();
        assert_eq!(keys, vec!["a", "z"]);
    }
}
