//! Run-over-run performance ledger.
//!
//! The paper's §5 methodology is measure-then-predict: every run at
//! small scale feeds the model that defends the 62K-core claim. The
//! ledger is the persistence half of that discipline — each harness run
//! appends one schema-versioned [`LedgerRecord`] (wall time, per-phase
//! breakdown, comm fraction, byte/message totals, machine profile) to
//! `BENCH_<harness>.json`, so the perf trajectory of the repo is a
//! queryable artifact instead of folklore, and the `perf_ledger` bench
//! bin can diff the latest record against a committed baseline and fail
//! CI on a regression.
//!
//! Records are written with the hand-rolled JSON renderer every exporter
//! here uses and read back through the vendored `serde_json` stand-in.
//! Machine-independent metrics (bytes, messages, collectives, element
//! steps) are compared tightly; wall-clock metrics are only compared
//! when the two records come from a comparable machine (same OS, same
//! parallelism, same network profile), because a committed baseline
//! must not fail CI merely because the runner is slower than the
//! machine that committed it.

use crate::json_escape;
use crate::report::IpmReport;
use std::collections::BTreeMap;
use std::path::Path;

/// Version stamp written into every record; bump on breaking shape
/// changes so old ledgers are recognized instead of misparsed.
pub const LEDGER_SCHEMA_VERSION: u64 = 1;

/// One phase row in a record (from the IPM report's phase table).
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerPhase {
    /// Phase name (span name, e.g. `solver.step`).
    pub name: String,
    /// Mean seconds across ranks.
    pub mean_s: f64,
    /// Max seconds across ranks.
    pub max_s: f64,
    /// Imbalance `(max − mean) / max` (0 = balanced).
    pub imbalance: f64,
}

/// Where a record was measured — gates wall-clock comparisons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerMachine {
    /// `std::thread::available_parallelism` at record time.
    pub parallelism: usize,
    /// `std::env::consts::OS`.
    pub os: String,
    /// Modeled network profile name (or `"none"`).
    pub profile: String,
}

impl LedgerMachine {
    /// Detect the current machine.
    pub fn detect(profile: &str) -> Self {
        Self {
            parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
            os: std::env::consts::OS.to_string(),
            profile: profile.to_string(),
        }
    }

    /// Whether wall-clock numbers from `other` are comparable to ours.
    pub fn comparable(&self, other: &Self) -> bool {
        self == other
    }
}

/// One appended harness run.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRecord {
    /// Schema version ([`LEDGER_SCHEMA_VERSION`] when written by us).
    pub schema_version: u64,
    /// Harness name (`ipm_profile`, `campaign_throughput`, …).
    pub harness: String,
    /// Number of solver ranks.
    pub ranks: usize,
    /// Max wall seconds across ranks.
    pub wall_s: f64,
    /// Mean communication fraction across ranks.
    pub comm_fraction: f64,
    /// Cross-rank wall imbalance `(max − mean) / max`.
    pub imbalance: f64,
    /// Total bytes sent across ranks.
    pub bytes_sent: u64,
    /// Total bytes received across ranks.
    pub bytes_received: u64,
    /// Total point-to-point messages sent.
    pub messages: u64,
    /// Total collective operations.
    pub collectives: u64,
    /// Deterministic work metric: `nspec × nsteps` summed over ranks
    /// (0 when the harness has no natural element count).
    pub element_steps: u64,
    /// Per-phase breakdown.
    pub phases: Vec<LedgerPhase>,
    /// Machine the record was measured on.
    pub machine: LedgerMachine,
    /// Harness-specific extra scalars (kept sorted for stable output).
    pub extra: BTreeMap<String, f64>,
}

impl LedgerRecord {
    /// Build a record from an [`IpmReport`] plus harness identity.
    pub fn from_report(
        harness: &str,
        report: &IpmReport,
        element_steps: u64,
        profile: &str,
    ) -> Self {
        let imbalance = if report.wall_max_s > 0.0 {
            (report.wall_max_s - report.wall_mean_s) / report.wall_max_s
        } else {
            0.0
        };
        Self {
            schema_version: LEDGER_SCHEMA_VERSION,
            harness: harness.to_string(),
            ranks: report.ranks,
            wall_s: report.wall_max_s,
            comm_fraction: report.comm_fraction_mean,
            imbalance,
            bytes_sent: report.total_bytes_sent,
            bytes_received: report.total_bytes_received,
            messages: report.total_messages,
            collectives: report.total_collectives,
            element_steps,
            phases: report
                .phases
                .iter()
                .map(|p| LedgerPhase {
                    name: p.name.clone(),
                    mean_s: p.mean_s,
                    max_s: p.max_s,
                    imbalance: p.imbalance,
                })
                .collect(),
            machine: LedgerMachine::detect(profile),
            extra: BTreeMap::new(),
        }
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"schema_version\":{},\"harness\":\"{}\",\"ranks\":{},",
            self.schema_version,
            json_escape(&self.harness),
            self.ranks
        ));
        out.push_str(&format!(
            "\"wall_s\":{:.6},\"comm_fraction\":{:.6},\"imbalance\":{:.6},",
            self.wall_s, self.comm_fraction, self.imbalance
        ));
        out.push_str(&format!(
            "\"bytes_sent\":{},\"bytes_received\":{},\"messages\":{},\"collectives\":{},\"element_steps\":{},",
            self.bytes_sent, self.bytes_received, self.messages, self.collectives, self.element_steps
        ));
        out.push_str("\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"mean_s\":{:.6},\"max_s\":{:.6},\"imbalance\":{:.4}}}",
                json_escape(&p.name),
                p.mean_s,
                p.max_s,
                p.imbalance
            ));
        }
        out.push_str("],\"machine\":");
        out.push_str(&format!(
            "{{\"parallelism\":{},\"os\":\"{}\",\"profile\":\"{}\"}}",
            self.machine.parallelism,
            json_escape(&self.machine.os),
            json_escape(&self.machine.profile)
        ));
        out.push_str(",\"extra\":{");
        for (i, (k, v)) in self.extra.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{:.6}", json_escape(k), v));
        }
        out.push_str("}}");
        out
    }
}

fn get<'a>(v: &'a serde_json::Value, key: &str) -> Result<&'a serde_json::Value, String> {
    v.get(key).ok_or_else(|| format!("missing key: {key}"))
}

fn get_f64(v: &serde_json::Value, key: &str) -> Result<f64, String> {
    get(v, key)?
        .as_f64()
        .ok_or_else(|| format!("{key}: not a number"))
}

fn get_u64(v: &serde_json::Value, key: &str) -> Result<u64, String> {
    get(v, key)?
        .as_u64()
        .ok_or_else(|| format!("{key}: not an unsigned integer"))
}

fn get_str(v: &serde_json::Value, key: &str) -> Result<String, String> {
    Ok(get(v, key)?
        .as_str()
        .ok_or_else(|| format!("{key}: not a string"))?
        .to_string())
}

impl LedgerRecord {
    /// Decode one record from a parsed JSON value.
    pub fn from_value(v: &serde_json::Value) -> Result<Self, String> {
        let schema_version = get_u64(v, "schema_version")?;
        if schema_version != LEDGER_SCHEMA_VERSION {
            return Err(format!(
                "unsupported ledger schema version {schema_version} (this build reads {LEDGER_SCHEMA_VERSION})"
            ));
        }
        let machine_v = get(v, "machine")?;
        let mut phases = Vec::new();
        let phases_v = get(v, "phases")?.as_array().ok_or("phases: not an array")?;
        for p in phases_v {
            phases.push(LedgerPhase {
                name: get_str(p, "name")?,
                mean_s: get_f64(p, "mean_s")?,
                max_s: get_f64(p, "max_s")?,
                imbalance: get_f64(p, "imbalance")?,
            });
        }
        let mut extra = BTreeMap::new();
        if let Some(obj) = v.get("extra").and_then(|e| e.as_object()) {
            for (k, val) in obj {
                extra.insert(
                    k.clone(),
                    val.as_f64()
                        .ok_or_else(|| format!("extra.{k}: not a number"))?,
                );
            }
        }
        Ok(Self {
            schema_version,
            harness: get_str(v, "harness")?,
            ranks: get_u64(v, "ranks")? as usize,
            wall_s: get_f64(v, "wall_s")?,
            comm_fraction: get_f64(v, "comm_fraction")?,
            imbalance: get_f64(v, "imbalance")?,
            bytes_sent: get_u64(v, "bytes_sent")?,
            bytes_received: get_u64(v, "bytes_received")?,
            messages: get_u64(v, "messages")?,
            collectives: get_u64(v, "collectives")?,
            element_steps: get_u64(v, "element_steps")?,
            phases,
            machine: LedgerMachine {
                parallelism: get_u64(machine_v, "parallelism")? as usize,
                os: get_str(machine_v, "os")?,
                profile: get_str(machine_v, "profile")?,
            },
            extra,
        })
    }
}

/// Parse ledger text (a JSON array of records).
pub fn parse_ledger(text: &str) -> Result<Vec<LedgerRecord>, String> {
    let value = serde_json::from_str(text).map_err(|e| format!("ledger parse error: {e:?}"))?;
    let arr = value.as_array().ok_or("ledger file is not a JSON array")?;
    arr.iter().map(LedgerRecord::from_value).collect()
}

/// Load a ledger file; a missing file is an empty ledger.
pub fn load(path: &Path) -> Result<Vec<LedgerRecord>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse_ledger(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Render a full ledger (array of records) as JSON text.
pub fn render_ledger(records: &[LedgerRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  ");
        out.push_str(&r.to_json());
    }
    out.push_str("\n]\n");
    out
}

/// Append `record` to the ledger at `path` (created if absent). The
/// rewrite is atomic: temp file in the same directory, then rename, so
/// a crash mid-write never corrupts the history.
pub fn append(path: &Path, record: &LedgerRecord) -> Result<usize, String> {
    let mut records = load(path)?;
    records.push(record.clone());
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    }
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, render_ledger(&records)).map_err(|e| format!("{}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(records.len())
}

/// The result of diffing a current record against a baseline.
#[derive(Debug, Clone, Default)]
pub struct LedgerDiff {
    /// Human-readable comparison lines (always populated).
    pub lines: Vec<String>,
    /// Regressions past tolerance; empty means the diff passes.
    pub regressions: Vec<String>,
    /// Whether wall-clock metrics were compared (machines comparable).
    pub wall_checked: bool,
}

impl LedgerDiff {
    /// Whether the current record is within tolerance of the baseline.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn pct_change(baseline: f64, current: f64) -> f64 {
    if baseline == 0.0 {
        if current == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (current - baseline) / baseline * 100.0
    }
}

/// Diff `current` against `baseline` with a `max_regress_pct` tolerance.
///
/// Deterministic metrics (bytes, messages, collectives, element steps)
/// must match the baseline within the tolerance *in either direction* —
/// they are machine-independent, so any drift means the code changed
/// behaviour. Wall seconds are compared (one-sided: slower is a
/// regression, faster is a win) only when the machines are comparable.
pub fn diff(baseline: &LedgerRecord, current: &LedgerRecord, max_regress_pct: f64) -> LedgerDiff {
    let mut d = LedgerDiff::default();
    let counters: [(&str, u64, u64); 5] = [
        ("bytes_sent", baseline.bytes_sent, current.bytes_sent),
        (
            "bytes_received",
            baseline.bytes_received,
            current.bytes_received,
        ),
        ("messages", baseline.messages, current.messages),
        ("collectives", baseline.collectives, current.collectives),
        (
            "element_steps",
            baseline.element_steps,
            current.element_steps,
        ),
    ];
    for (name, b, c) in counters {
        let change = pct_change(b as f64, c as f64);
        d.lines
            .push(format!("{name}: baseline {b}, current {c} ({change:+.2}%)"));
        if change.abs() > max_regress_pct {
            d.regressions.push(format!(
                "{name} drifted {change:+.2}% (baseline {b} → current {c}, tolerance ±{max_regress_pct}%)"
            ));
        }
    }
    d.wall_checked = baseline.machine.comparable(&current.machine);
    let wall_change = pct_change(baseline.wall_s, current.wall_s);
    if d.wall_checked {
        d.lines.push(format!(
            "wall_s: baseline {:.4}, current {:.4} ({wall_change:+.2}%)",
            baseline.wall_s, current.wall_s
        ));
        if wall_change > max_regress_pct {
            d.regressions.push(format!(
                "wall_s regressed {wall_change:+.2}% (baseline {:.4}s → current {:.4}s, tolerance +{max_regress_pct}%)",
                baseline.wall_s, current.wall_s
            ));
        }
    } else {
        d.lines.push(format!(
            "wall_s: baseline {:.4} ({}×{} {}), current {:.4} ({}×{} {}) — machines differ, wall not compared",
            baseline.wall_s,
            baseline.machine.parallelism,
            baseline.machine.os,
            baseline.machine.profile,
            current.wall_s,
            current.machine.parallelism,
            current.machine.os,
            current.machine.profile,
        ));
    }
    d.lines.push(format!(
        "comm_fraction: baseline {:.4}, current {:.4} (informational)",
        baseline.comm_fraction, current.comm_fraction
    ));
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(harness: &str) -> LedgerRecord {
        let mut extra = BTreeMap::new();
        extra.insert("stations".to_string(), 4.0);
        LedgerRecord {
            schema_version: LEDGER_SCHEMA_VERSION,
            harness: harness.to_string(),
            ranks: 6,
            wall_s: 1.25,
            comm_fraction: 0.12,
            imbalance: 0.05,
            bytes_sent: 123_456,
            bytes_received: 123_456,
            messages: 789,
            collectives: 12,
            element_steps: 96_000,
            phases: vec![LedgerPhase {
                name: "solver.step".to_string(),
                mean_s: 1.0,
                max_s: 1.2,
                imbalance: 0.1667,
            }],
            machine: LedgerMachine {
                parallelism: 8,
                os: "linux".to_string(),
                profile: "none".to_string(),
            },
            extra,
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let r = sample("roundtrip");
        let parsed = serde_json::from_str(&r.to_json()).expect("record JSON must parse");
        let back = LedgerRecord::from_value(&parsed).unwrap();
        assert_eq!(back.harness, r.harness);
        assert_eq!(back.bytes_sent, r.bytes_sent);
        assert_eq!(back.element_steps, r.element_steps);
        assert_eq!(back.phases, r.phases);
        assert_eq!(back.machine, r.machine);
        assert_eq!(back.extra, r.extra);
        assert!((back.wall_s - r.wall_s).abs() < 1e-9);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let mut r = sample("v");
        r.schema_version = 999;
        let parsed = serde_json::from_str(&r.to_json()).unwrap();
        let err = LedgerRecord::from_value(&parsed).unwrap_err();
        assert!(err.contains("schema version 999"), "{err}");
    }

    #[test]
    fn append_accumulates_records() {
        let dir = std::env::temp_dir().join("specfem_ledger_test_append");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("BENCH_demo.json");
        assert_eq!(append(&path, &sample("demo")).unwrap(), 1);
        assert_eq!(append(&path, &sample("demo")).unwrap(), 2);
        let records = load(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].harness, "demo");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_ledger_is_empty() {
        let path = std::env::temp_dir().join("specfem_ledger_test_missing/nope.json");
        assert!(load(&path).unwrap().is_empty());
    }

    #[test]
    fn identical_records_pass_the_diff() {
        let r = sample("d");
        let d = diff(&r, &r, 10.0);
        assert!(d.ok(), "{:?}", d.regressions);
        assert!(d.wall_checked);
    }

    #[test]
    fn synthetic_2x_slowdown_is_a_regression() {
        let base = sample("d");
        let mut slow = base.clone();
        slow.wall_s *= 2.0;
        let d = diff(&base, &slow, 50.0);
        assert!(!d.ok());
        assert!(d.regressions.iter().any(|r| r.contains("wall_s")));
    }

    #[test]
    fn counter_drift_fails_in_both_directions() {
        let base = sample("d");
        let mut more = base.clone();
        more.messages *= 2;
        assert!(!diff(&base, &more, 10.0).ok());
        let mut fewer = base.clone();
        fewer.messages /= 2;
        assert!(!diff(&base, &fewer, 10.0).ok());
    }

    #[test]
    fn incomparable_machines_skip_the_wall_check() {
        let base = sample("d");
        let mut other = base.clone();
        other.machine.parallelism = 2;
        other.wall_s *= 10.0; // would regress badly if compared
        let d = diff(&base, &other, 50.0);
        assert!(d.ok(), "{:?}", d.regressions);
        assert!(!d.wall_checked);
    }
}
