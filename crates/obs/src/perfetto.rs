//! Chrome/Perfetto `trace_event` JSON export.
//!
//! Emits the legacy JSON trace format (`{"traceEvents": [...]}`) that
//! both `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load directly. Every rank becomes a timeline row (`tid` = rank,
//! `pid` = 1) named via a `thread_name` `"M"` metadata event, the shared
//! process gets one `process_name` metadata event so the UI labels the
//! group; every completed span becomes an `"X"` complete event. Timestamps and durations are in
//! microseconds per the format spec, derived from the shared trace
//! epoch, so rank rows align on a single wall-clock axis.

use crate::json_escape;
use crate::span::RankTrace;

/// Serialize rank traces as a Perfetto-loadable JSON string.
///
/// Traces are emitted in ascending rank order regardless of input order,
/// so the output is deterministic for a given set of traces.
pub fn perfetto_json(traces: &[RankTrace]) -> String {
    let mut sorted: Vec<&RankTrace> = traces.iter().collect();
    sorted.sort_by_key(|t| t.rank);

    let total_events: usize = sorted.iter().map(|t| t.events.len()).sum();
    let mut out = String::with_capacity(128 + 96 * (total_events + sorted.len()));
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, item: &str| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(item);
    };
    if !sorted.is_empty() {
        // Label the shared pid so the Perfetto UI shows a named process
        // group instead of a bare "Process 1".
        push(
            &mut out,
            "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\
             \"args\":{\"name\":\"specfem solver ranks\"}}",
        );
    }
    for t in &sorted {
        push(
            &mut out,
            &format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"rank {}\"}}}}",
                t.rank, t.rank
            ),
        );
        for e in &t.events {
            push(
                &mut out,
                &format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\
                     \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"depth\":{}}}}}",
                    t.rank,
                    json_escape(e.name),
                    e.start_ns as f64 / 1e3,
                    e.dur_ns as f64 / 1e3,
                    e.depth
                ),
            );
        }
    }
    out.push_str("]}");
    out
}

/// One event on a named [`Track`] — like [`crate::SpanEvent`] but with an
/// owned name, for timelines whose labels are built at runtime (job
/// names, event ids) rather than `'static` span literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackEvent {
    /// Event label, e.g. `"job quake_07 (run)"`.
    pub name: String,
    /// Start, in ns since the shared trace epoch ([`crate::timestamp_ns`]).
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// Nesting depth (0 = top level) — carried into `args` like rank spans.
    pub depth: u16,
}

/// A named timeline row — e.g. one campaign worker — rendered with the
/// same `pid`/`tid` scheme as rank traces so both merge on one axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Track {
    /// Row label (`"worker 0"`, `"scheduler"`, …).
    pub name: String,
    /// Thread id for the row; keep these unique across one export.
    pub tid: usize,
    /// Events on the row, any order (emitted as given).
    pub events: Vec<TrackEvent>,
}

/// Serialize named tracks as a Perfetto-loadable JSON string.
///
/// Tracks are emitted in ascending `tid` order regardless of input
/// order, so the output is deterministic for a given set of tracks.
pub fn perfetto_tracks(tracks: &[Track]) -> String {
    let mut sorted: Vec<&Track> = tracks.iter().collect();
    sorted.sort_by_key(|t| t.tid);

    let total_events: usize = sorted.iter().map(|t| t.events.len()).sum();
    let mut out = String::with_capacity(128 + 96 * (total_events + sorted.len()));
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, item: &str| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(item);
    };
    if !sorted.is_empty() {
        push(
            &mut out,
            "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\
             \"args\":{\"name\":\"specfem campaign\"}}",
        );
    }
    for t in &sorted {
        push(
            &mut out,
            &format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                t.tid,
                json_escape(&t.name)
            ),
        );
        for e in &t.events {
            push(
                &mut out,
                &format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\
                     \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"depth\":{}}}}}",
                    t.tid,
                    json_escape(&e.name),
                    e.start_ns as f64 / 1e3,
                    e.dur_ns as f64 / 1e3,
                    e.depth
                ),
            );
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanEvent;

    fn trace(rank: usize, events: Vec<SpanEvent>) -> RankTrace {
        RankTrace {
            rank,
            events,
            dropped: 0,
        }
    }

    fn ev(name: &'static str, start_ns: u64, dur_ns: u64, depth: u16) -> SpanEvent {
        SpanEvent {
            name,
            start_ns,
            dur_ns,
            depth,
        }
    }

    #[test]
    fn emits_metadata_and_complete_events() {
        let json = perfetto_json(&[trace(0, vec![ev("halo", 1500, 2500, 1)])]);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"rank 0\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"halo\""));
        // 1500 ns -> 1.5 us, 2500 ns -> 2.5 us.
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.500"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn rank_order_is_canonical() {
        let a = perfetto_json(&[trace(1, vec![]), trace(0, vec![])]);
        let b = perfetto_json(&[trace(0, vec![]), trace(1, vec![])]);
        assert_eq!(a, b);
        assert!(a.find("rank 0").unwrap() < a.find("rank 1").unwrap());
    }

    #[test]
    fn process_name_metadata_labels_the_group() {
        let json = perfetto_json(&[trace(0, vec![])]);
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"specfem solver ranks\""));
        // process_name comes first, before any thread_name row.
        assert!(json.find("process_name").unwrap() < json.find("thread_name").unwrap());
        let tracks = perfetto_tracks(&[Track {
            name: "worker 0".into(),
            tid: 0,
            events: vec![],
        }]);
        assert!(tracks.contains("\"name\":\"process_name\""));
        assert!(tracks.contains("\"name\":\"specfem campaign\""));
    }

    #[test]
    fn empty_input_yields_valid_shell() {
        assert_eq!(
            perfetto_json(&[]),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn named_tracks_emit_owned_labels_in_tid_order() {
        let tracks = vec![
            Track {
                name: "worker 1".into(),
                tid: 1,
                events: vec![],
            },
            Track {
                name: "worker 0".into(),
                tid: 0,
                events: vec![TrackEvent {
                    name: "job \"q7\"".into(),
                    start_ns: 2000,
                    dur_ns: 3000,
                    depth: 0,
                }],
            },
        ];
        let json = perfetto_tracks(&tracks);
        assert!(json.contains("\"name\":\"worker 0\""));
        assert!(json.contains("\"name\":\"worker 1\""));
        assert!(json.find("worker 0").unwrap() < json.find("worker 1").unwrap());
        assert!(json.contains("job \\\"q7\\\""));
        assert!(json.contains("\"ts\":2.000"));
        assert_eq!(
            perfetto_tracks(&[]),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}"
        );
    }
}
