//! Process-wide metrics for long-running daemons.
//!
//! The per-rank registry is thread-local by design — solver threads
//! record into it lock-free and hand their numbers back at
//! [`finish_rank`](crate::finish_rank). A daemon serving many requests
//! over many worker threads needs the opposite: one registry that every
//! thread updates and an HTTP handler can snapshot at any moment. This
//! module is that registry — a mutex around the same
//! [`MetricsRegistry`], plus a JSON renderer for `/metrics` endpoints.
//!
//! Contention is not a concern at daemon scale: the lock is held for a
//! `BTreeMap` bump, and requests touch it a handful of times each,
//! orders of magnitude below the per-message cadence the thread-local
//! path exists for.

use std::sync::{Mutex, OnceLock};

use crate::json_escape;
use crate::metrics::{MetricName, MetricsRegistry, MetricsSnapshot};

static GLOBAL: OnceLock<Mutex<MetricsRegistry>> = OnceLock::new();

fn global() -> &'static Mutex<MetricsRegistry> {
    GLOBAL.get_or_init(|| Mutex::new(MetricsRegistry::default()))
}

/// Add `delta` to the named process-global counter. Accepts `&'static
/// str` (no allocation) or an owned `String` for dynamic names such as
/// per-route request labels.
pub fn global_counter_add(name: impl Into<MetricName>, delta: u64) {
    global().lock().unwrap().counter_add(name, delta);
}

/// Set the named process-global gauge.
pub fn global_gauge_set(name: impl Into<MetricName>, value: f64) {
    global().lock().unwrap().gauge_set(name, value);
}

/// Record `value` into the named process-global log₂ histogram.
pub fn global_hist_record(name: impl Into<MetricName>, value: u64) {
    global().lock().unwrap().hist_record(name, value);
}

/// Immutable copy of the process-global registry.
pub fn global_snapshot() -> MetricsSnapshot {
    global().lock().unwrap().snapshot()
}

/// Reset the process-global registry to empty (test isolation; also
/// useful after a daemon reload).
pub fn global_reset() {
    *global().lock().unwrap() = MetricsRegistry::default();
}

/// Render a metrics snapshot as a JSON object:
///
/// ```json
/// {
///   "counters": {"serve.requests": 12},
///   "gauges": {"serve.mem_bytes": 1048576.0},
///   "histograms": {
///     "serve.latency_ms": {"count": 12, "sum": 340, "min": 3, "max": 91,
///                          "mean": 28.3, "p50": 24, "p95": 77, "p99": 90}
///   }
/// }
/// ```
///
/// Deterministic (`BTreeMap` order), allocation-light, and hand-rolled
/// like every other exporter in this crate. Metric names pass through
/// [`json_escape`], so arbitrary dynamic keys (spaces, quotes, control
/// characters) always yield valid JSON — fuzzed below.
pub fn metrics_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json_escape(k), v));
    }
    out.push_str("},\"gauges\":{");
    for (i, (k, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json_escape(k), fmt_f64(*v)));
    }
    out.push_str("},\"histograms\":{");
    for (i, (k, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
             \"p50\":{},\"p95\":{},\"p99\":{}}}",
            json_escape(k),
            h.count(),
            h.sum(),
            h.min().unwrap_or(0),
            h.max().unwrap_or(0),
            fmt_f64(h.mean()),
            h.quantile(0.50).unwrap_or(0),
            h.quantile(0.95).unwrap_or(0),
            h.quantile(0.99).unwrap_or(0),
        ));
    }
    out.push_str("}}");
    out
}

/// `f64` as JSON: finite values via `Display` (always round-trippable),
/// non-finite mapped to `null` since JSON has no NaN/Inf.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers are valid JSON numbers, but keep the float-ness
        // explicit so schema-typed readers see a consistent shape.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_accumulates_across_threads() {
        global_reset();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..100 {
                        global_counter_add("test.global_hits", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        global_gauge_set("test.global_level", 0.5);
        global_hist_record("test.global_sizes", 4096);
        let snap = global_snapshot();
        assert_eq!(snap.counters.get("test.global_hits"), Some(&400));
        assert_eq!(snap.gauges.get("test.global_level"), Some(&0.5));
        assert_eq!(snap.histograms.get("test.global_sizes").unwrap().count(), 1);
        global_reset();
        assert!(global_snapshot().counters.is_empty());
    }

    #[test]
    fn metrics_json_shape() {
        let mut r = MetricsRegistry::default();
        r.counter_add("b", 2);
        r.counter_add("a", 1);
        r.gauge_set("g", 1.5);
        r.gauge_set("whole", 3.0);
        r.hist_record("h", 10);
        r.hist_record("h", 20);
        let json = metrics_json(&r.snapshot());
        assert_eq!(
            json,
            "{\"counters\":{\"a\":1,\"b\":2},\
             \"gauges\":{\"g\":1.5,\"whole\":3.0},\
             \"histograms\":{\"h\":{\"count\":2,\"sum\":30,\"min\":10,\"max\":20,\"mean\":15.0,\
             \"p50\":15,\"p95\":20,\"p99\":20}}}"
        );
    }

    #[test]
    fn metrics_json_escapes_hostile_keys() {
        let mut r = MetricsRegistry::default();
        r.counter_add(String::from("with \"quotes\" and \\slashes\\"), 1);
        r.gauge_set(String::from("ctl\nchars\ttoo"), 2.0);
        r.hist_record(String::from("route{path=\"/x\"}"), 9);
        let json = metrics_json(&r.snapshot());
        let v = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(
            v["counters"]["with \"quotes\" and \\slashes\\"].as_u64(),
            Some(1)
        );
        assert_eq!(v["gauges"]["ctl\nchars\ttoo"].as_f64(), Some(2.0));
        assert_eq!(
            v["histograms"]["route{path=\"/x\"}"]["count"].as_u64(),
            Some(1)
        );
    }

    proptest::proptest! {
        /// Any metric name — control characters, quotes, non-ASCII —
        /// must still yield parseable JSON with the key recoverable.
        #[test]
        fn metrics_json_valid_for_arbitrary_names(
            codes in proptest::prop::collection::vec(0u32..0x2500, 0usize..48),
            value in 0u64..1_000_000,
        ) {
            let name: String = codes
                .iter()
                .map(|&c| char::from_u32(c).unwrap_or('\u{fffd}'))
                .collect();
            let mut r = MetricsRegistry::default();
            r.counter_add(name.clone(), value);
            r.hist_record(name.clone(), value);
            let json = metrics_json(&r.snapshot());
            let v = serde_json::from_str(&json).expect("valid JSON");
            proptest::prop_assert_eq!(v["counters"][name.as_str()].as_u64(), Some(value));
            proptest::prop_assert_eq!(v["histograms"][name.as_str()]["count"].as_u64(), Some(1));
        }
    }

    #[test]
    fn empty_snapshot_renders_empty_object() {
        assert_eq!(
            metrics_json(&MetricsSnapshot::default()),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }
}
