//! Batch-packer contract tests: fusion legality (only identical
//! `BatchKey`s fuse), lane→job fan-out bijection, bit-identity of
//! batched campaign results, and poisoned-lane isolation.

use std::time::Duration;

use proptest::prelude::*;
use specfem_campaign::{plan_batches, BatchKey, Campaign, CampaignConfig, Job, RetryPolicy};
use specfem_core::model::builtin_events;
use specfem_core::{Simulation, SourceSpec, SourceTimeFunction, StfKind};

fn event_sim(steps: usize, event_idx: usize) -> Simulation {
    let events = builtin_events();
    let event = events[event_idx % events.len()].clone();
    Simulation::builder()
        .resolution(4)
        .steps(steps)
        .stations(3)
        .source(SourceSpec::Cmt {
            event,
            stf: SourceTimeFunction::new(StfKind::Ricker, 200.0),
        })
        .build()
        .unwrap()
}

proptest! {
    /// Every planned batch holds jobs of exactly one key, never more
    /// than `max_lanes` of them, and unbatchable (`None`) jobs ride
    /// alone.
    #[test]
    fn plan_fuses_only_identical_keys(
        raw in prop::collection::vec((any::<bool>(), 0u64..3, 0u64..3), 0..40),
        max_lanes in 1usize..6,
    ) {
        let keys: Vec<Option<BatchKey>> = raw
            .into_iter()
            .map(|(batchable, mesh, compat)| {
                batchable.then_some(BatchKey { mesh, compat })
            })
            .collect();
        let batches = plan_batches(&keys, max_lanes);
        for b in &batches {
            prop_assert!(!b.is_empty());
            prop_assert!(b.len() <= max_lanes);
            let first = keys[b[0]];
            for &i in b {
                prop_assert_eq!(keys[i], first, "a batch mixed keys");
            }
            if first.is_none() {
                prop_assert_eq!(b.len(), 1, "unbatchable jobs must ride alone");
            }
        }
    }

    /// The plan is a partition of the input: each job lands in exactly
    /// one batch, in queue order within its batch (lane→job fan-out is
    /// a bijection).
    #[test]
    fn plan_is_a_bijection(
        raw in prop::collection::vec((any::<bool>(), 0u64..4, 0u64..2), 0..60),
        max_lanes in 1usize..8,
    ) {
        let keys: Vec<Option<BatchKey>> = raw
            .into_iter()
            .map(|(batchable, mesh, compat)| {
                batchable.then_some(BatchKey { mesh, compat })
            })
            .collect();
        let batches = plan_batches(&keys, max_lanes);
        let mut seen = vec![0usize; keys.len()];
        for b in &batches {
            prop_assert!(b.windows(2).all(|w| w[0] < w[1]), "lanes out of queue order");
            for &i in b {
                prop_assert!(i < keys.len());
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "not a bijection: {seen:?}");
    }
}

#[test]
fn batched_campaign_is_bit_identical_to_serial_runs() {
    const K: usize = 4;
    let sims: Vec<Simulation> = (0..K).map(|i| event_sim(6, i)).collect();
    let mut campaign = Campaign::new(
        CampaignConfig {
            workers: 1,
            ..CampaignConfig::default()
        }
        .batching(K, Duration::from_secs(10)),
    );
    for (i, sim) in sims.iter().enumerate() {
        campaign.submit(Job::new(format!("ev{i}"), sim.clone()));
    }
    let result = campaign.finish();
    assert!(result.all_ok(), "{}", result.report.render_text());
    assert_eq!(result.report.batched_jobs, K, "all jobs must have fused");
    assert_eq!(result.cache.misses, 1, "one mesh build for the whole batch");
    let json = result.report.to_json();
    assert!(json.contains(&format!("\"batched_jobs\": {K}")));
    assert!(json.contains("\"batch_lanes\": 4"));
    for (sim, outcome) in sims.iter().zip(&result.outcomes) {
        assert_eq!(outcome.telemetry.batch_lanes, K);
        assert_eq!(outcome.attempts, 1);
        let got = outcome.result.as_ref().unwrap();
        let expected = sim.run_serial();
        assert_eq!(got.seismograms.len(), expected.seismograms.len());
        assert_eq!(got.dt.to_bits(), expected.dt.to_bits());
        for (g, e) in got.seismograms.iter().zip(&expected.seismograms) {
            assert_eq!(g.station, e.station);
            assert_eq!(g.data, e.data, "job {} diverged from serial", outcome.name);
        }
    }
}

#[test]
fn poisoned_lane_fails_alone_while_siblings_complete() {
    // Three jobs fuse; the middle one injects a NaN through its source
    // and has the health monitor armed. Its lane must fail with a
    // health trip while both siblings finish bit-identical to their
    // serial runs. (All three share the compat key, so health_every
    // must match across the batch.)
    const STEPS: usize = 8;
    let with_health = |mut sim: Simulation| {
        sim.config.health_every = 2;
        sim
    };
    let good_a = with_health(event_sim(STEPS, 0));
    let good_b = with_health(event_sim(STEPS, 1));
    let mut poisoned = with_health(event_sim(STEPS, 2));
    poisoned.config.source = SourceSpec::PointForce {
        position: [0.0, 0.0, 6.0e6],
        force: [f64::NAN, 0.0, 1.0e18],
        stf: SourceTimeFunction::new(StfKind::Ricker, 60.0),
    };

    let mut campaign = Campaign::new(
        CampaignConfig {
            workers: 1,
            retry: RetryPolicy {
                max_retries: 0,
                backoff: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
            ..CampaignConfig::default()
        }
        .batching(3, Duration::from_secs(10)),
    );
    campaign.submit(Job::new("good_a", good_a.clone()));
    campaign.submit(Job::new("poisoned", poisoned));
    campaign.submit(Job::new("good_b", good_b.clone()));
    let result = campaign.finish();
    assert_eq!(
        result.report.batched_jobs,
        3,
        "{}",
        result.report.render_text()
    );
    assert_eq!(result.report.failed_jobs, 1);
    assert_eq!(result.report.health_trips, 1);

    let bad = result
        .outcomes
        .iter()
        .find(|o| o.name == "poisoned")
        .unwrap();
    assert!(bad.result.is_err());
    assert!(bad.telemetry.health_trip.is_some(), "trip must roll up");
    assert_eq!(bad.element_steps, 0);

    for (name, sim) in [("good_a", &good_a), ("good_b", &good_b)] {
        let outcome = result.outcomes.iter().find(|o| o.name == name).unwrap();
        let got = outcome.result.as_ref().unwrap();
        let expected = sim.run_serial();
        for (g, e) in got.seismograms.iter().zip(&expected.seismograms) {
            assert_eq!(g.station, e.station);
            assert_eq!(g.data, e.data, "sibling {name} was contaminated");
        }
    }
}

#[test]
fn incompatible_jobs_never_fuse() {
    // Same mesh, different nsteps: they must run as two single-lane
    // jobs even with batching wide open.
    let mut campaign = Campaign::new(
        CampaignConfig {
            workers: 1,
            ..CampaignConfig::default()
        }
        .batching(8, Duration::from_millis(50)),
    );
    campaign.submit(Job::new("a", event_sim(5, 0)));
    campaign.submit(Job::new("b", event_sim(6, 1)));
    let result = campaign.finish();
    assert!(result.all_ok());
    assert_eq!(result.report.batched_jobs, 0);
    for o in &result.outcomes {
        assert_eq!(o.telemetry.batch_lanes, 0, "job {} fused wrongly", o.name);
    }
}
