//! Perfetto-export validation for multi-worker campaign timelines and
//! multi-rank solver traces, checked against the vendored JSON parser
//! rather than by substring: the exporters hand-serialize, so a stray
//! comma or unescaped label would still `contains()` fine but break
//! `ui.perfetto.dev`. Asserts the track/process/thread metadata scheme
//! and that timestamps on every row are monotonic.

use serde_json::Value;
use specfem_campaign::{Campaign, CampaignConfig, Job};
use specfem_core::{NetworkProfile, RunOptions, Simulation};

fn tiny_sim(steps: usize) -> Simulation {
    Simulation::builder()
        .resolution(4)
        .steps(steps)
        .stations(2)
        .catalogue_event("argentina_deep")
        .build()
        .unwrap()
}

/// Parse an exporter's output and return `(metadata, complete)` events.
fn load_events(json: &str) -> (Vec<Value>, Vec<Value>) {
    let doc = serde_json::from_str(json).expect("Perfetto export parses as JSON");
    assert_eq!(doc["displayTimeUnit"].as_str(), Some("ns"));
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    let mut meta = Vec::new();
    let mut complete = Vec::new();
    for e in events.iter() {
        match e["ph"].as_str() {
            Some("M") => meta.push(e.clone()),
            Some("X") => complete.push(e.clone()),
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    (meta, complete)
}

/// Shared checks: one named process, one named thread row per expected
/// tid, and per-row monotonic (exit-ordered) timestamps.
fn assert_track_scheme(json: &str, thread_names: &[(u64, String)]) {
    let (meta, complete) = load_events(json);

    let process: Vec<&Value> = meta
        .iter()
        .filter(|e| e["name"].as_str() == Some("process_name"))
        .collect();
    assert_eq!(process.len(), 1, "exactly one process_name metadata event");
    assert_eq!(process[0]["pid"].as_u64(), Some(1));
    assert!(process[0]["args"]["name"].as_str().is_some());

    let threads: Vec<&Value> = meta
        .iter()
        .filter(|e| e["name"].as_str() == Some("thread_name"))
        .collect();
    assert_eq!(threads.len(), thread_names.len(), "one row per track");
    for (i, (tid, name)) in thread_names.iter().enumerate() {
        assert_eq!(threads[i]["tid"].as_u64(), Some(*tid), "tid order");
        assert_eq!(threads[i]["args"]["name"].as_str(), Some(name.as_str()));
    }

    assert!(!complete.is_empty(), "timeline has complete events");
    for (tid, _) in thread_names {
        // Spans are recorded at exit, so each row's end times ascend;
        // 0.01 us of slack absorbs the exporter's 3-decimal rounding.
        let mut last_end = f64::NEG_INFINITY;
        for e in complete.iter().filter(|e| e["tid"].as_u64() == Some(*tid)) {
            assert_eq!(e["pid"].as_u64(), Some(1));
            let ts = e["ts"].as_f64().expect("numeric ts");
            let dur = e["dur"].as_f64().expect("numeric dur");
            assert!(ts >= 0.0 && dur >= 0.0, "non-negative times: {e:?}");
            assert!(e["name"].as_str().is_some(), "named event");
            let end = ts + dur;
            assert!(
                end >= last_end - 0.01,
                "tid {tid}: end times must ascend ({end} after {last_end})"
            );
            last_end = end;
        }
        assert!(last_end > f64::NEG_INFINITY, "tid {tid} has events");
    }
}

/// A two-worker campaign exports one named track per worker, with every
/// finished job as a complete event on its worker's row.
#[test]
fn campaign_timeline_validates_against_the_json_parser() {
    let mut campaign = Campaign::new(CampaignConfig {
        workers: 2,
        ..CampaignConfig::default()
    });
    for steps in [4, 5, 6, 7] {
        campaign.submit(Job::new(format!("job_{steps}"), tiny_sim(steps)));
    }
    let result = campaign.finish();
    assert!(result.all_ok());

    let json = result.perfetto_json();
    assert_track_scheme(&json, &[(0, "worker 0".into()), (1, "worker 1".into())]);
    let (_, complete) = load_events(&json);
    assert_eq!(complete.len(), 4, "one complete event per finished job");
    for steps in [4, 5, 6, 7] {
        assert!(
            complete.iter().any(|e| e["name"]
                .as_str()
                .unwrap()
                .starts_with(&format!("job_{steps} "))),
            "job_{steps} appears on the timeline"
        );
    }
}

/// A traced four-rank solve exports one named `rank N` row per rank; the
/// solver's own spans (time loop, halo exchange) land on those rows.
#[test]
fn multi_rank_solver_timeline_validates_against_the_json_parser() {
    let mut sim = tiny_sim(6);
    sim.config.trace = true;
    let (mesh, _) = sim.build_mesh();
    let result = sim
        .try_run_with_mesh(
            &mesh,
            RunOptions {
                profile: Some(NetworkProfile::loopback()),
                checkpoint_dir: None,
                resume: false,
                world: Some(4),
                dossier_dir: None,
            },
        )
        .unwrap();

    let json = result
        .perfetto_json()
        .expect("traced run exports a timeline");
    let rows: Vec<(u64, String)> = (0..4).map(|r| (r, format!("rank {r}"))).collect();
    assert_track_scheme(&json, &rows);
    let (_, complete) = load_events(&json);
    assert!(
        complete
            .iter()
            .any(|e| e["name"].as_str().unwrap().contains("step")),
        "time-loop spans appear on rank rows"
    );
}
