//! The content-addressed mesh cache.
//!
//! Meshing is the campaign's amortizable fixed cost: a catalogue sweep
//! runs many events against one Earth discretization, and §4.1 of the
//! paper exists precisely because rebuilding (or re-reading) the mesh
//! per run dominated everything else. The cache keys built
//! [`GlobalMesh`]es by their [`MeshKey`] fingerprint so concurrent jobs
//! that share a mesh build it once and share it through an `Arc`.
//!
//! Three kinds of hit:
//!
//! * **exact** — same full key, the `Arc` is handed out as-is;
//! * **derived** — same *geometry* fingerprint, different decomposition
//!   knobs (`NPROC_XI`, cube assignment, element order). The mesher
//!   provably never reads those during geometry/numbering/materials, so
//!   the cached mesh is cloned and re-stamped with the requester's
//!   parameters instead of rebuilt — this is what lets the Figure 6
//!   harness build one mesh per resolution and sweep rank counts;
//! * **disk** — a CRC-validated artifact from a previous process via
//!   [`MeshArtifactStore`].
//!
//! Admission control enforces a byte budget: a build waits until evicting
//! idle (`Arc` refcount 1) entries frees room, with a progress guarantee —
//! when the cache is empty, an oversized mesh is admitted anyway rather
//! than deadlocking the campaign.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use specfem_io::MeshArtifactStore;
use specfem_mesh::{GlobalMesh, MeshKey, MeshParams};

/// How a job's mesh request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Same full key already resident.
    Hit,
    /// Same geometry resident under different decomposition knobs;
    /// cloned and re-stamped instead of rebuilt.
    DerivedHit,
    /// Loaded from the on-disk artifact tier.
    DiskHit,
    /// Built from scratch.
    Miss,
}

impl CacheOutcome {
    /// Stable lowercase label for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::DerivedHit => "derived_hit",
            CacheOutcome::DiskHit => "disk_hit",
            CacheOutcome::Miss => "miss",
        }
    }
}

/// Counters accumulated over a campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact-key hits.
    pub hits: u64,
    /// Geometry hits served by clone + re-stamp.
    pub derived_hits: u64,
    /// Hits served from the disk artifact tier.
    pub disk_hits: u64,
    /// Full builds.
    pub misses: u64,
    /// Entries evicted to satisfy the byte budget.
    pub evictions: u64,
}

impl CacheStats {
    /// Every request that avoided a full mesh build.
    pub fn total_hits(&self) -> u64 {
        self.hits + self.derived_hits + self.disk_hits
    }
}

struct Entry {
    mesh: Arc<GlobalMesh>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<MeshKey, Entry>,
    /// Keys with an in-flight build; later requesters wait instead of
    /// building the same mesh twice.
    building: Vec<MeshKey>,
    resident_bytes: usize,
    tick: u64,
    stats: CacheStats,
}

impl Inner {
    /// Evict idle LRU entries until `need` more bytes fit in `budget`.
    /// Returns whether they do. Entries still referenced by a running job
    /// (`Arc` refcount > 1) are never evicted.
    fn evict_idle_until(&mut self, need: usize, budget: usize) -> bool {
        if budget == 0 {
            return true; // unbounded
        }
        while self.resident_bytes + need > budget {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| Arc::strong_count(&e.mesh) == 1)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    let e = self.entries.remove(&k).unwrap();
                    self.resident_bytes -= e.bytes;
                    self.stats.evictions += 1;
                }
                None => return false,
            }
        }
        true
    }

    fn insert(&mut self, key: MeshKey, mesh: Arc<GlobalMesh>, bytes: usize) {
        self.tick += 1;
        self.resident_bytes += bytes;
        self.entries.insert(
            key,
            Entry {
                mesh,
                bytes,
                last_used: self.tick,
            },
        );
    }
}

/// A concurrent, byte-budgeted, content-addressed cache of built meshes.
pub struct MeshCache {
    inner: Mutex<Inner>,
    cond: Condvar,
    /// Resident-byte ceiling; 0 = unbounded.
    budget: usize,
    disk: Option<MeshArtifactStore>,
}

impl MeshCache {
    /// An in-memory cache with the given byte budget (0 = unbounded) and
    /// an optional on-disk artifact tier.
    pub fn new(budget_bytes: usize, disk: Option<MeshArtifactStore>) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            cond: Condvar::new(),
            budget: budget_bytes,
            disk,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap().stats.clone()
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().unwrap().resident_bytes
    }

    /// Whether a mesh with this geometry fingerprint is resident or being
    /// built — the mesh-affinity scheduling signal.
    pub fn contains_geometry(&self, geometry_fingerprint: u64) -> bool {
        let inner = self.inner.lock().unwrap();
        inner
            .entries
            .keys()
            .chain(inner.building.iter())
            .any(|k| k.geometry_fingerprint() == geometry_fingerprint)
    }

    /// Wake admission-control waiters; the campaign calls this whenever a
    /// job finishes and drops its mesh `Arc` (the cache cannot observe
    /// refcount changes itself).
    pub fn notify_released(&self) {
        self.cond.notify_all();
    }

    /// Get the mesh for `key`, building it with `build` on a miss.
    /// `params` are the requester's mesh parameters (used to re-stamp a
    /// derived hit); `estimated_bytes` is the admission-control size
    /// estimate for a build.
    ///
    /// Blocks while another worker builds the same key, and while the
    /// byte budget requires a running job to release a mesh.
    pub fn get_or_build(
        &self,
        key: &MeshKey,
        params: &MeshParams,
        estimated_bytes: usize,
        build: impl FnOnce() -> GlobalMesh,
    ) -> (Arc<GlobalMesh>, CacheOutcome) {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.entries.contains_key(key) {
                inner.tick += 1;
                let tick = inner.tick;
                let e = inner.entries.get_mut(key).unwrap();
                e.last_used = tick;
                let mesh = e.mesh.clone();
                inner.stats.hits += 1;
                return (mesh, CacheOutcome::Hit);
            }
            // Derived hit: same geometry under different decomposition
            // knobs — clone and re-stamp instead of rebuilding.
            let geo = key.geometry_fingerprint();
            let donor = inner
                .entries
                .iter()
                .filter(|(k, _)| k.geometry_fingerprint() == geo)
                .max_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            if let Some(donor_key) = donor {
                let src = inner.entries[&donor_key].mesh.clone();
                let mut derived = (*src).clone();
                derived.params = params.clone();
                let bytes = derived.approx_bytes();
                // Best effort: the clone is far cheaper than a rebuild, so
                // admit it even when only idle eviction can make room.
                inner.evict_idle_until(bytes, self.budget);
                let mesh = Arc::new(derived);
                inner.insert(key.clone(), mesh.clone(), bytes);
                inner.stats.derived_hits += 1;
                self.cond.notify_all();
                return (mesh, CacheOutcome::DerivedHit);
            }
            if inner.building.contains(key) {
                inner = self.cond.wait(inner).unwrap();
                continue;
            }
            // Miss: claim the build slot, then enforce admission control.
            inner.building.push(key.clone());
            while !inner.evict_idle_until(estimated_bytes, self.budget) {
                if inner.entries.is_empty() {
                    break; // progress guarantee: oversized mesh, admit it
                }
                inner = self.cond.wait(inner).unwrap();
            }
            drop(inner);

            let (mesh, outcome) = self.load_or_build(key, build);
            let bytes = mesh.approx_bytes();
            let mesh = Arc::new(mesh);
            let mut inner = self.inner.lock().unwrap();
            inner.building.retain(|k| k != key);
            inner.insert(key.clone(), mesh.clone(), bytes);
            match outcome {
                CacheOutcome::DiskHit => inner.stats.disk_hits += 1,
                _ => inner.stats.misses += 1,
            }
            self.cond.notify_all();
            return (mesh, outcome);
        }
    }

    /// The slow path, run without the lock: disk tier first, else build
    /// (persisting the result back to disk, best-effort).
    fn load_or_build(
        &self,
        key: &MeshKey,
        build: impl FnOnce() -> GlobalMesh,
    ) -> (GlobalMesh, CacheOutcome) {
        if let Some(store) = &self.disk {
            // Corrupt artifacts are evicted and counted by the shared
            // fallback walk inside `load_or_evict`; a miss means rebuild.
            if let Some(mesh) = store.load_or_evict(key) {
                return (mesh, CacheOutcome::DiskHit);
            }
        }
        let mesh = build();
        if let Some(store) = &self.disk {
            let _ = store.save(key, &mesh);
        }
        (mesh, CacheOutcome::Miss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_core::model::Prem;

    fn build_params(nex: usize, nproc: usize) -> (MeshKey, MeshParams) {
        let params = MeshParams::new(nex, nproc);
        let key = MeshKey::new(&params, "prem_iso");
        (key, params)
    }

    fn build_mesh(params: &MeshParams) -> GlobalMesh {
        GlobalMesh::build(params, &Prem::isotropic_no_ocean())
    }

    #[test]
    fn exact_hit_shares_one_arc() {
        let cache = MeshCache::new(0, None);
        let (key, params) = build_params(4, 1);
        let (m1, o1) = cache.get_or_build(&key, &params, 0, || build_mesh(&params));
        let (m2, o2) = cache.get_or_build(&key, &params, 0, || panic!("must not rebuild"));
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&m1, &m2));
        let s = cache.stats();
        assert_eq!((s.misses, s.hits), (1, 1));
    }

    #[test]
    fn different_nproc_is_a_derived_hit_with_restamped_params() {
        let cache = MeshCache::new(0, None);
        let (k1, p1) = build_params(4, 1);
        let (k2, p2) = build_params(4, 2);
        assert_ne!(k1.fingerprint(), k2.fingerprint());
        assert_eq!(k1.geometry_fingerprint(), k2.geometry_fingerprint());
        let (m1, _) = cache.get_or_build(&k1, &p1, 0, || build_mesh(&p1));
        let (m2, o2) = cache.get_or_build(&k2, &p2, 0, || panic!("must not rebuild"));
        assert_eq!(o2, CacheOutcome::DerivedHit);
        assert_eq!(m2.params.nproc_xi, 2);
        assert_eq!(
            specfem_mesh::content_hash(&m1).ibool,
            specfem_mesh::content_hash(&m2).ibool
        );
    }

    #[test]
    fn budget_evicts_idle_lru() {
        let (k1, p1) = build_params(4, 1);
        let (k2, p2) = build_params(6, 1);
        let m1 = build_mesh(&p1);
        let m2 = build_mesh(&p2);
        // Room for the bigger of the two, never both.
        let budget = m1.approx_bytes().max(m2.approx_bytes()) + 1024;
        let cache = MeshCache::new(budget, None);
        let (a1, _) = cache.get_or_build(&k1, &p1, m1.approx_bytes(), || build_mesh(&p1));
        drop(a1); // idle → evictable
        cache.notify_released();
        let (_a2, o2) = cache.get_or_build(&k2, &p2, m2.approx_bytes(), || build_mesh(&p2));
        assert_eq!(o2, CacheOutcome::Miss);
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        // First key is gone: requesting it again is a fresh miss.
        assert!(!cache.contains_geometry(k1.geometry_fingerprint()));
        assert!(cache.contains_geometry(k2.geometry_fingerprint()));
    }

    #[test]
    fn disk_tier_round_trips_across_cache_instances() {
        let dir = std::env::temp_dir().join("specfem_campaign_disk_tier");
        let _ = std::fs::remove_dir_all(&dir);
        let (key, params) = build_params(4, 1);
        {
            let store = MeshArtifactStore::new(&dir).unwrap();
            let cache = MeshCache::new(0, Some(store));
            let (_, o) = cache.get_or_build(&key, &params, 0, || build_mesh(&params));
            assert_eq!(o, CacheOutcome::Miss);
        }
        // A new process (fresh cache) finds the artifact on disk.
        let store = MeshArtifactStore::new(&dir).unwrap();
        let cache = MeshCache::new(0, Some(store));
        let (mesh, o) = cache.get_or_build(&key, &params, 0, || panic!("must hit disk"));
        assert_eq!(o, CacheOutcome::DiskHit);
        assert_eq!(
            specfem_mesh::content_hash(&mesh),
            specfem_mesh::content_hash(&build_mesh(&params))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
