//! The campaign's cross-job report — per-job wall time, queue wait,
//! cache outcome, retries, and an aggregate element·steps/s throughput
//! number, in the same text + hand-rolled-JSON style as
//! `specfem_obs::IpmReport`. A merged Perfetto timeline with one track
//! per worker comes from [`crate::CampaignResult::perfetto_json`].

use specfem_obs::{json_escape, LogHistogram, TagTraffic};

use crate::cache::CacheStats;
use crate::JobOutcome;

/// Per-job communication and in-flight health telemetry, rolled up
/// across the job's ranks (and across retry attempts for the failure
/// fields). Comm counters are zero for jobs that never produced a
/// result.
#[derive(Debug, Clone, Default)]
pub struct JobTelemetry {
    /// Σ bytes sent over the job's ranks.
    pub bytes_sent: u64,
    /// Σ bytes received.
    pub bytes_received: u64,
    /// Σ point-to-point messages sent.
    pub messages_sent: u64,
    /// Σ collective operations entered.
    pub collectives: u64,
    /// Sent traffic per message tag, merged across ranks.
    pub per_tag: Vec<TagTraffic>,
    /// Distribution of blocking-receive wait times (ns) merged across
    /// ranks — recorded only on traced runs.
    pub recv_wait_ns: Option<LogHistogram>,
    /// Display of the numerical-health trip that aborted an attempt
    /// (`None` = no trip on any attempt; a retried job can succeed and
    /// still carry the trip that killed its first attempt).
    pub health_trip: Option<String>,
    /// Watchdog cross-rank step skew from the run's final report.
    pub watchdog_max_skew_steps: Option<u64>,
    /// Ranks the watchdog flagged as stalled across all attempts.
    pub watchdog_stalled_ranks: Vec<usize>,
    /// The job's native world size (1 for serial jobs).
    pub native_world: usize,
    /// World sizes adopted by shrink-to-survive retries, in order; empty
    /// when the job never shrank.
    pub shrink_path: Vec<usize>,
    /// World size of the final attempt when elastic retry shrank it below
    /// the native decomposition (`None` = ran at native size).
    pub final_world: Option<usize>,
    /// Lanes of the batched solve this job rode in (0 or 1 = ran
    /// unbatched on the single-lane path).
    pub batch_lanes: usize,
    /// Clustered-LTS rate cap in effect on the job's run (`None` = LTS
    /// off, every element at the global minimum dt).
    pub lts_max_rate: Option<u32>,
    /// Σ element·steps the coarse LTS clusters skipped across the job's
    /// ranks (0 when LTS is off or the mesh has no dt spread).
    pub lts_element_steps_saved: u64,
    /// End-to-end correlation id (16 hex digits) the job ran under —
    /// minted at submit or adopted from the caller's request.
    pub trace_id: Option<String>,
    /// Path of the newest crash dossier a failed attempt left behind
    /// (`None` = no attempt failed with the flight recorder armed).
    pub dossier: Option<String>,
}

impl JobTelemetry {
    /// Merge one rank's sent-traffic tags into the rollup.
    pub fn merge_tags(&mut self, tags: &[TagTraffic]) {
        for t in tags {
            match self.per_tag.iter_mut().find(|p| p.tag == t.tag) {
                Some(p) => {
                    p.messages += t.messages;
                    p.bytes += t.bytes;
                }
                None => self.per_tag.push(*t),
            }
        }
        self.per_tag.sort_by_key(|t| t.tag);
    }
}

/// One job's row in the report.
#[derive(Debug, Clone)]
pub struct JobRow {
    /// Job name (as submitted).
    pub name: String,
    /// Submission index.
    pub index: usize,
    /// Worker that ran it.
    pub worker: usize,
    /// Total attempts (1 = no retry).
    pub attempts: usize,
    /// Seconds between submit and dispatch.
    pub queue_wait_s: f64,
    /// Seconds in the worker (mesh acquisition + all attempts).
    pub run_s: f64,
    /// How the mesh was obtained ([`crate::CacheOutcome::as_str`]).
    pub cache: &'static str,
    /// Global elements × time steps advanced.
    pub element_steps: u64,
    /// Whether the job ultimately succeeded.
    pub ok: bool,
    /// Error message of a failed job.
    pub error: Option<String>,
    /// Comm/health/watchdog rollup for this job.
    pub telemetry: JobTelemetry,
}

/// Aggregated campaign statistics.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Worker-pool size used.
    pub workers: usize,
    /// Campaign wall time, submit of the first job to completion of the
    /// last (s).
    pub total_wall_s: f64,
    /// Per-job rows, submission order.
    pub jobs: Vec<JobRow>,
    /// Mesh-cache counters.
    pub cache: CacheStats,
    /// Σ element·steps over successful jobs.
    pub total_element_steps: u64,
    /// `total_element_steps / total_wall_s` — the campaign throughput
    /// number the `campaign_throughput` harness compares against a
    /// serial loop.
    pub element_steps_per_s: f64,
    /// Σ (attempts − 1).
    pub total_retries: u64,
    /// Jobs that exhausted their retries.
    pub failed_jobs: usize,
    /// Jobs whose numerical-health monitor tripped on any attempt.
    pub health_trips: usize,
    /// Jobs on which the straggler watchdog flagged a stall.
    pub stalled_jobs: usize,
    /// Jobs that finished on a shrunken world (elastic recovery engaged).
    pub shrunk_jobs: usize,
    /// Jobs that ran fused in a multi-lane batched solve.
    pub batched_jobs: usize,
    /// Jobs that ran with clustered local time stepping engaged.
    pub lts_jobs: usize,
}

impl CampaignReport {
    /// Build the report from finished job outcomes.
    pub fn build(
        outcomes: &[JobOutcome],
        workers: usize,
        total_wall_s: f64,
        cache: CacheStats,
    ) -> Self {
        let jobs: Vec<JobRow> = outcomes
            .iter()
            .map(|o| JobRow {
                name: o.name.clone(),
                index: o.index,
                worker: o.worker,
                attempts: o.attempts,
                queue_wait_s: o.queue_wait_s,
                run_s: o.run_s,
                cache: o.cache.as_str(),
                element_steps: o.element_steps,
                ok: o.result.is_ok(),
                error: o.result.as_ref().err().cloned(),
                telemetry: o.telemetry.clone(),
            })
            .collect();
        let total_element_steps = outcomes
            .iter()
            .filter(|o| o.result.is_ok())
            .map(|o| o.element_steps)
            .sum();
        let total_retries = outcomes.iter().map(|o| (o.attempts - 1) as u64).sum();
        let failed_jobs = outcomes.iter().filter(|o| o.result.is_err()).count();
        let health_trips = outcomes
            .iter()
            .filter(|o| o.telemetry.health_trip.is_some())
            .count();
        let stalled_jobs = outcomes
            .iter()
            .filter(|o| !o.telemetry.watchdog_stalled_ranks.is_empty())
            .count();
        let shrunk_jobs = outcomes
            .iter()
            .filter(|o| o.telemetry.final_world.is_some())
            .count();
        let batched_jobs = outcomes
            .iter()
            .filter(|o| o.telemetry.batch_lanes > 1)
            .count();
        let lts_jobs = outcomes
            .iter()
            .filter(|o| o.telemetry.lts_max_rate.is_some())
            .count();
        CampaignReport {
            workers,
            total_wall_s,
            jobs,
            cache,
            total_element_steps,
            element_steps_per_s: total_element_steps as f64 / total_wall_s.max(1e-12),
            total_retries,
            failed_jobs,
            health_trips,
            stalled_jobs,
            shrunk_jobs,
            batched_jobs,
            lts_jobs,
        }
    }

    /// Human-readable table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "campaign report: {} jobs on {} workers, {:.3} s wall\n",
            self.jobs.len(),
            self.workers,
            self.total_wall_s
        ));
        out.push_str(&format!(
            "  throughput      : {:.3e} element*steps/s ({} element*steps)\n",
            self.element_steps_per_s, self.total_element_steps
        ));
        out.push_str(&format!(
            "  mesh cache      : {} hit / {} derived / {} disk / {} miss / {} evicted\n",
            self.cache.hits,
            self.cache.derived_hits,
            self.cache.disk_hits,
            self.cache.misses,
            self.cache.evictions
        ));
        out.push_str(&format!(
            "  retries, failed : {}, {}\n",
            self.total_retries, self.failed_jobs
        ));
        if self.health_trips > 0 || self.stalled_jobs > 0 {
            out.push_str(&format!(
                "  health, stalls  : {} health trip(s), {} stalled job(s)\n",
                self.health_trips, self.stalled_jobs
            ));
        }
        if self.shrunk_jobs > 0 {
            out.push_str(&format!(
                "  elastic         : {} job(s) finished on a shrunken world\n",
                self.shrunk_jobs
            ));
        }
        if self.batched_jobs > 0 {
            out.push_str(&format!(
                "  batching        : {} job(s) ran fused in multi-event solves\n",
                self.batched_jobs
            ));
        }
        if self.lts_jobs > 0 {
            out.push_str(&format!(
                "  lts             : {} job(s) ran with clustered local time stepping\n",
                self.lts_jobs
            ));
        }
        out.push_str(
            "  job                        wkr  att  cache         queue_s    run_s  status\n",
        );
        for j in &self.jobs {
            out.push_str(&format!(
                "  {:<26} {:>3} {:>4}  {:<12} {:>8.3} {:>8.3}  {}\n",
                j.name,
                j.worker,
                j.attempts,
                j.cache,
                j.queue_wait_s,
                j.run_s,
                if j.ok { "ok" } else { "FAILED" }
            ));
            if let Some(trip) = &j.telemetry.health_trip {
                out.push_str(&format!("    health: {trip}\n"));
            }
            if !j.telemetry.watchdog_stalled_ranks.is_empty() {
                out.push_str(&format!(
                    "    watchdog: stalled ranks {:?}\n",
                    j.telemetry.watchdog_stalled_ranks
                ));
            }
            if let Some(final_world) = j.telemetry.final_world {
                out.push_str(&format!(
                    "    elastic: shrank {} -> {} ranks (path {:?})\n",
                    j.telemetry.native_world, final_world, j.telemetry.shrink_path
                ));
            }
        }
        out
    }

    /// Machine-readable JSON (hand-rolled, like `IpmReport::to_json` —
    /// no serde in the offline workspace).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 160 * self.jobs.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"total_wall_s\": {:.6},\n", self.total_wall_s));
        out.push_str(&format!(
            "  \"total_element_steps\": {},\n",
            self.total_element_steps
        ));
        out.push_str(&format!(
            "  \"element_steps_per_s\": {:.3},\n",
            self.element_steps_per_s
        ));
        out.push_str(&format!("  \"total_retries\": {},\n", self.total_retries));
        out.push_str(&format!("  \"failed_jobs\": {},\n", self.failed_jobs));
        out.push_str(&format!("  \"health_trips\": {},\n", self.health_trips));
        out.push_str(&format!("  \"stalled_jobs\": {},\n", self.stalled_jobs));
        out.push_str(&format!("  \"shrunk_jobs\": {},\n", self.shrunk_jobs));
        out.push_str(&format!("  \"batched_jobs\": {},\n", self.batched_jobs));
        out.push_str(&format!("  \"lts_jobs\": {},\n", self.lts_jobs));
        out.push_str(&format!(
            "  \"cache\": {{\"hits\": {}, \"derived_hits\": {}, \"disk_hits\": {}, \
             \"misses\": {}, \"evictions\": {}}},\n",
            self.cache.hits,
            self.cache.derived_hits,
            self.cache.disk_hits,
            self.cache.misses,
            self.cache.evictions
        ));
        out.push_str("  \"jobs\": [\n");
        for (i, j) in self.jobs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"index\": {}, \"worker\": {}, \"attempts\": {}, \
                 \"queue_wait_s\": {:.6}, \"run_s\": {:.6}, \"cache\": \"{}\", \
                 \"element_steps\": {}, \"ok\": {}{}{}}}{}\n",
                json_escape(&j.name),
                j.index,
                j.worker,
                j.attempts,
                j.queue_wait_s,
                j.run_s,
                j.cache,
                j.element_steps,
                j.ok,
                match &j.error {
                    Some(e) => format!(", \"error\": \"{}\"", json_escape(e)),
                    None => String::new(),
                },
                telemetry_json(&j.telemetry),
                if i + 1 < self.jobs.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Render a job's telemetry rollup as `, "comm": {...}` (plus optional
/// `"health_trip"` / `"watchdog"` members) for embedding in the job row.
fn telemetry_json(t: &JobTelemetry) -> String {
    let tags: Vec<String> = t
        .per_tag
        .iter()
        .map(|tag| {
            format!(
                "{{\"tag\": {}, \"messages\": {}, \"bytes\": {}}}",
                tag.tag, tag.messages, tag.bytes
            )
        })
        .collect();
    let recv_wait = match &t.recv_wait_ns {
        Some(h) => format!(
            ", \"recv_wait_ns\": {{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.1}}}",
            h.count(),
            h.min().unwrap_or(0),
            h.max().unwrap_or(0),
            h.mean()
        ),
        None => String::new(),
    };
    let mut out = format!(
        ", \"comm\": {{\"bytes_sent\": {}, \"bytes_received\": {}, \"messages_sent\": {}, \
         \"collectives\": {}, \"per_tag\": [{}]{}}}",
        t.bytes_sent,
        t.bytes_received,
        t.messages_sent,
        t.collectives,
        tags.join(", "),
        recv_wait
    );
    if let Some(trip) = &t.health_trip {
        out.push_str(&format!(", \"health_trip\": \"{}\"", json_escape(trip)));
    }
    if t.watchdog_max_skew_steps.is_some() || !t.watchdog_stalled_ranks.is_empty() {
        let ranks: Vec<String> = t
            .watchdog_stalled_ranks
            .iter()
            .map(|r| r.to_string())
            .collect();
        out.push_str(&format!(
            ", \"watchdog\": {{\"max_skew_steps\": {}, \"stalled_ranks\": [{}]}}",
            t.watchdog_max_skew_steps.unwrap_or(0),
            ranks.join(", ")
        ));
    }
    if t.batch_lanes > 1 {
        out.push_str(&format!(", \"batch_lanes\": {}", t.batch_lanes));
    }
    if let Some(cap) = t.lts_max_rate {
        out.push_str(&format!(
            ", \"lts\": {{\"max_rate\": {cap}, \"element_steps_saved\": {}}}",
            t.lts_element_steps_saved
        ));
    }
    if let Some(id) = &t.trace_id {
        out.push_str(&format!(", \"trace_id\": \"{}\"", json_escape(id)));
    }
    if let Some(dossier) = &t.dossier {
        out.push_str(&format!(", \"dossier\": \"{}\"", json_escape(dossier)));
    }
    if t.final_world.is_some() || !t.shrink_path.is_empty() {
        let path: Vec<String> = t.shrink_path.iter().map(|w| w.to_string()).collect();
        out.push_str(&format!(
            ", \"elastic\": {{\"native_world\": {}, \"final_world\": {}, \"shrink_path\": [{}]}}",
            t.native_world,
            t.final_world.unwrap_or(t.native_world),
            path.join(", ")
        ));
    }
    out
}
