//! `specfem-campaign` — the multi-event campaign runtime.
//!
//! The paper's production context is never one earthquake: §6 describes
//! catalogue sweeps where the same Earth discretization is run against
//! many CMT solutions. This crate is the job-queue runtime for that
//! workload: submit many [`Simulation`]-shaped [`Job`]s, execute them
//! concurrently over a bounded worker pool (each worker owning its own
//! in-process rank world), and share mesh builds through a
//! content-addressed [`MeshCache`] keyed by
//! [`Simulation::mesh_key`].
//!
//! * **Scheduling** — FIFO or mesh-affinity ordering (group jobs whose
//!   mesh is already resident), integer priorities, and submit-side
//!   backpressure via a bounded queue.
//! * **Robustness** — per-job retry with linear backoff on solver/comm
//!   failure; retries strip the job's fault plan and, when a checkpoint
//!   root is configured, resume from the newest complete checkpoint, so
//!   a fault-injected job finishes bit-identical to a clean run.
//! * **Observability** — a [`CampaignReport`] (per-job wall time, queue
//!   wait, cache outcome, retries, aggregate element·steps/s) in text
//!   and JSON, plus a merged Perfetto timeline with one track per
//!   worker.
//!
//! ```no_run
//! use specfem_campaign::{Campaign, CampaignConfig, Job};
//! use specfem_core::Simulation;
//!
//! let sim = Simulation::builder().resolution(8).steps(50).build().unwrap();
//! let mut campaign = Campaign::new(CampaignConfig::default());
//! for i in 0..4 {
//!     campaign.submit(Job::new(format!("event_{i}"), sim.clone()));
//! }
//! let result = campaign.finish();
//! assert!(result.all_ok());
//! println!("{}", result.report.render_text());
//! ```

pub mod cache;
pub mod packer;
pub mod report;

pub use cache::{CacheOutcome, CacheStats, MeshCache};
pub use packer::{batch_key, plan_batches, BatchKey};
pub use report::{CampaignReport, JobRow, JobTelemetry};

use std::cmp::Reverse;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use specfem_core::{NetworkProfile, RunOptions, Simulation, SimulationResult};
use specfem_io::MeshArtifactStore;
use specfem_obs::{Track, TrackEvent};

/// In what order queued jobs are dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Strict submission order (within a priority class).
    #[default]
    Fifo,
    /// Prefer jobs whose mesh is already resident (or being built), so
    /// jobs sharing a mesh run back-to-back and eviction churn under a
    /// tight byte budget is minimized.
    MeshAffinity,
}

/// Retry behaviour for failed jobs.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure (0 = fail fast).
    pub max_retries: usize,
    /// Sleep before attempt `n + 1` is `backoff × n` (linear).
    pub backoff: Duration,
    /// Elastic recovery for distributed jobs: when an attempt dies of a
    /// dead or stalled rank, re-admit the next attempt on a world one
    /// rank smaller (floor 1) instead of replaying the same doomed
    /// decomposition. Checkpoints are rank-count independent, so the
    /// shrunken world resumes from the last good generation; the
    /// degradation is recorded in [`JobTelemetry`] and the
    /// [`CampaignReport`]. On by default; serial jobs are unaffected.
    pub shrink_to_survive: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 1,
            backoff: Duration::from_millis(10),
            shrink_to_survive: true,
        }
    }
}

/// Whether a failed attempt is the kind elastic recovery can route
/// around by shrinking the world: a rank that died or wedged. A dead
/// peer presents to survivors as `RankDead`, `Stalled`, `Disconnected`,
/// or — when the receive deadline fires before the dead rank's channel
/// drops — a plain `Timeout`; from the receiver's seat those are the
/// same event, so all four shrink. Health trips, protocol corruption,
/// and checkpoint-store failures would fail on any world size.
fn shrinkable(e: &specfem_core::solver::SolverError) -> bool {
    use specfem_core::comm::CommError;
    use specfem_core::solver::SolverError;
    matches!(
        e,
        SolverError::Comm(
            CommError::RankDead { .. }
                | CommError::Stalled { .. }
                | CommError::Disconnected { .. }
                | CommError::Timeout { .. }
        ) | SolverError::RankPanicked { .. }
    )
}

/// How a job's solver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobMode {
    /// The whole domain on one in-process rank (the merged serial path).
    /// Best campaign throughput: the worker pool, not the rank world,
    /// provides the parallelism.
    #[default]
    Serial,
    /// The full `6 × NPROC_XI²`-rank thread world per job, charged
    /// against [`CampaignConfig::profile`].
    Distributed,
}

/// One unit of campaign work.
#[derive(Debug, Clone)]
pub struct Job {
    /// Display / checkpoint-directory name; keep it unique per campaign.
    pub name: String,
    /// The simulation to run.
    pub sim: Simulation,
    /// Higher runs earlier within the scheduling policy.
    pub priority: i32,
    /// Serial or distributed execution.
    pub mode: JobMode,
    /// End-to-end correlation id. `None` at submit time gets one minted —
    /// callers that already own a request-scoped id (the serve daemon)
    /// pass it through [`Job::trace`] so the job, its solver ranks, and
    /// any crash dossier all share the caller's id.
    pub trace: Option<specfem_obs::TraceId>,
}

impl Job {
    /// A default-priority serial job.
    pub fn new(name: impl Into<String>, sim: Simulation) -> Self {
        Self {
            name: name.into(),
            sim,
            priority: 0,
            mode: JobMode::Serial,
            trace: None,
        }
    }

    /// Set the priority (higher = earlier).
    pub fn priority(mut self, p: i32) -> Self {
        self.priority = p;
        self
    }

    /// Adopt an existing end-to-end correlation id instead of minting
    /// one at submit.
    pub fn trace(mut self, id: specfem_obs::TraceId) -> Self {
        self.trace = Some(id);
        self
    }

    /// Run on the full rank world instead of the merged serial path.
    pub fn distributed(mut self) -> Self {
        self.mode = JobMode::Distributed;
        self
    }

    /// OS threads one in-flight instance of this job occupies.
    fn thread_footprint(&self) -> usize {
        match self.mode {
            JobMode::Serial => 1,
            JobMode::Distributed => self.sim.params.num_ranks(),
        }
    }
}

/// Campaign-wide configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Worker-pool size; 0 = auto via
    /// [`specfem_comm::recommended_workers`] (physical parallelism over
    /// the widest job's thread footprint, capped at the job count).
    pub workers: usize,
    /// Mesh-cache resident-byte ceiling; 0 = unbounded.
    pub mesh_cache_bytes: usize,
    /// Dispatch order.
    pub policy: SchedulePolicy,
    /// Retry behaviour.
    pub retry: RetryPolicy,
    /// Network model charged to distributed jobs.
    pub profile: NetworkProfile,
    /// On-disk mesh artifact tier (shared across processes); `None`
    /// keeps the cache memory-only.
    pub disk_cache_dir: Option<PathBuf>,
    /// Root for per-job checkpoint directories
    /// (`<root>/<job name>/`). Enables checkpoint-aware retry/resume;
    /// set `config.checkpoint_every` on the jobs for it to matter.
    pub checkpoint_root: Option<PathBuf>,
    /// Bound on queued (not yet dispatched) jobs; `submit` blocks at the
    /// bound. 0 = unbounded.
    pub queue_capacity: usize,
    /// Maximum event lanes fused into one batched solve (`Par_file` key
    /// `BATCH_MAX_LANES`). 1 (the default) disables batching — every
    /// job takes the single-lane path, untouched. With more lanes, a
    /// worker that dequeues a batchable serial job also claims every
    /// queued job sharing its [`BatchKey`] (same mesh, same fused-loop
    /// shape) and runs them as one solve; each job still gets its own
    /// [`JobOutcome`], bit-identical to an unbatched run.
    pub batch_max_lanes: usize,
    /// How long a worker holding a non-full batch waits for more
    /// batch-mates to be submitted before solving (`Par_file` key
    /// `BATCH_WINDOW_MS`). 0 (the default) = fuse only what is already
    /// queued, never wait.
    pub batch_window_ms: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            mesh_cache_bytes: 0,
            policy: SchedulePolicy::default(),
            retry: RetryPolicy::default(),
            profile: NetworkProfile::loopback(),
            disk_cache_dir: None,
            checkpoint_root: None,
            queue_capacity: 0,
            batch_max_lanes: 1,
            batch_window_ms: 0,
        }
    }
}

impl CampaignConfig {
    /// Adopt the `Par_file` campaign knobs (`CAMPAIGN_WORKERS`,
    /// `MESH_CACHE_BYTES`, `BATCH_MAX_LANES`, `BATCH_WINDOW_MS`) —
    /// builder-style, leaving every other field as configured.
    pub fn with_knobs(mut self, knobs: &specfem_core::parfile::CampaignKnobs) -> Self {
        self.workers = knobs.workers;
        self.mesh_cache_bytes = knobs.mesh_cache_bytes;
        self.batch_max_lanes = knobs.batch_max_lanes;
        self.batch_window_ms = knobs.batch_window_ms;
        self
    }

    /// Builder-style batching control: fuse up to `lanes` compatible
    /// jobs per solve, waiting up to `window` for batch-mates.
    pub fn batching(mut self, lanes: usize, window: Duration) -> Self {
        self.batch_max_lanes = lanes.max(1);
        self.batch_window_ms = window.as_millis() as u64;
        self
    }
}

/// What happened to one job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Job name.
    pub name: String,
    /// Submission index.
    pub index: usize,
    /// Worker that ran it.
    pub worker: usize,
    /// Attempts made (1 = first try succeeded).
    pub attempts: usize,
    /// Seconds between submit and dispatch.
    pub queue_wait_s: f64,
    /// Seconds in the worker (mesh acquisition + all attempts).
    pub run_s: f64,
    /// How the mesh was obtained.
    pub cache: CacheOutcome,
    /// Global elements × time steps advanced (0 on failure).
    pub element_steps: u64,
    /// Worker-track start, ns since the shared trace epoch.
    pub start_ns: u64,
    /// Worker-track end, ns.
    pub end_ns: u64,
    /// The run's merged result, or the final error.
    pub result: Result<SimulationResult, String>,
    /// Comm/health/watchdog rollup across the job's ranks and attempts.
    pub telemetry: JobTelemetry,
}

struct QueuedJob {
    job: Job,
    index: usize,
    submitted: Instant,
}

struct QueueState {
    queue: Vec<QueuedJob>,
    done: bool,
    outcomes: Vec<JobOutcome>,
}

/// Job-completion hook: runs on the worker thread, with no campaign lock
/// held, right before the outcome lands in the drainable backlog.
type CompletionCallback = Arc<dyn Fn(&JobOutcome) + Send + Sync>;

struct Shared {
    cfg: CampaignConfig,
    cache: MeshCache,
    state: Mutex<QueueState>,
    cond: Condvar,
    on_complete: Mutex<Option<CompletionCallback>>,
}

/// The campaign runtime: submit jobs, then [`Campaign::finish`].
pub struct Campaign {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    submitted: usize,
    drained: usize,
    widest_job_threads: usize,
    started: Instant,
}

impl Campaign {
    /// Create an idle campaign; workers spawn lazily as jobs arrive.
    pub fn new(cfg: CampaignConfig) -> Self {
        let disk = cfg.disk_cache_dir.as_ref().map(|dir| {
            MeshArtifactStore::new(dir).expect("campaign: cannot create mesh artifact dir")
        });
        let cache = MeshCache::new(cfg.mesh_cache_bytes, disk);
        Self {
            shared: Arc::new(Shared {
                cfg,
                cache,
                state: Mutex::new(QueueState {
                    queue: Vec::new(),
                    done: false,
                    outcomes: Vec::new(),
                }),
                cond: Condvar::new(),
                on_complete: Mutex::new(None),
            }),
            handles: Vec::new(),
            submitted: 0,
            drained: 0,
            widest_job_threads: 1,
            started: Instant::now(),
        }
    }

    /// The worker-pool size the campaign has scaled to so far.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Install (or replace) a job-completion callback. It runs on the
    /// worker thread that finished the job, with no campaign lock held,
    /// *before* the outcome joins the drainable backlog — a long-running
    /// caller (the serve daemon) uses it to answer a waiting connection
    /// the instant its job completes, instead of polling
    /// [`Campaign::drain`].
    pub fn on_completion(&self, f: impl Fn(&JobOutcome) + Send + Sync + 'static) {
        *self.shared.on_complete.lock().unwrap() = Some(Arc::new(f));
    }

    /// Collect finished outcomes **without** ending the campaign: the
    /// worker pool stays up and more jobs may be submitted afterwards.
    /// Returns everything completed since the previous drain, in
    /// submission order. Outcomes taken here no longer appear in the
    /// [`CampaignResult`] that [`Campaign::finish`] eventually builds —
    /// a daemon drains continuously and builds its own rollups.
    pub fn drain(&mut self) -> Vec<JobOutcome> {
        let mut out = std::mem::take(&mut self.shared.state.lock().unwrap().outcomes);
        out.sort_by_key(|o| o.index);
        self.drained += out.len();
        out
    }

    /// Jobs submitted but not yet finished (queued or running).
    pub fn in_flight(&self) -> usize {
        let st = self.shared.state.lock().unwrap();
        self.submitted - self.drained - st.outcomes.len()
    }

    /// Enqueue a job. Blocks while the queue is at
    /// [`CampaignConfig::queue_capacity`].
    pub fn submit(&mut self, mut job: Job) {
        if self.submitted == 0 {
            self.started = Instant::now();
        }
        // The campaign is an outermost entry point: a job arriving
        // without a correlation id gets one minted here, so everything
        // downstream (solver ranks, dossiers, timelines) can be stitched
        // back to this submission.
        if job.trace.is_none() {
            job.trace = Some(specfem_obs::TraceId::mint());
        }
        self.widest_job_threads = self.widest_job_threads.max(job.thread_footprint());
        {
            let mut st = self.shared.state.lock().unwrap();
            while self.shared.cfg.queue_capacity > 0
                && st.queue.len() >= self.shared.cfg.queue_capacity
            {
                st = self.shared.cond.wait(st).unwrap();
            }
            st.queue.push(QueuedJob {
                job,
                index: self.submitted,
                submitted: Instant::now(),
            });
        }
        self.shared.cond.notify_all();
        self.submitted += 1;
        let desired = if self.shared.cfg.workers > 0 {
            self.shared.cfg.workers
        } else {
            specfem_comm::recommended_workers(self.widest_job_threads, self.submitted)
        };
        while self.handles.len() < desired {
            let shared = self.shared.clone();
            let id = self.handles.len();
            let handle = std::thread::Builder::new()
                .name(format!("campaign-worker-{id}"))
                .spawn(move || worker_loop(shared, id))
                .expect("campaign: cannot spawn worker thread");
            self.handles.push(handle);
        }
    }

    /// Declare the job stream closed, wait for every job to finish, and
    /// return outcomes (submission order) plus the campaign report. Only
    /// outcomes not already taken by [`Campaign::drain`] appear here.
    pub fn finish(self) -> CampaignResult {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.done = true;
        }
        self.shared.cond.notify_all();
        for h in self.handles {
            let _ = h.join();
        }
        let mut outcomes = {
            let mut st = self.shared.state.lock().unwrap();
            std::mem::take(&mut st.outcomes)
        };
        outcomes.sort_by_key(|o| o.index);
        let total_wall_s = self.started.elapsed().as_secs_f64();
        let cache = self.shared.cache.stats();
        let workers = outcomes
            .iter()
            .map(|o| o.worker + 1)
            .max()
            .unwrap_or_default();
        let report = CampaignReport::build(&outcomes, workers, total_wall_s, cache.clone());
        CampaignResult {
            outcomes,
            cache,
            report,
        }
    }
}

/// Everything [`Campaign::finish`] returns.
#[derive(Debug)]
pub struct CampaignResult {
    /// Per-job outcomes, submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Mesh-cache counters.
    pub cache: CacheStats,
    /// The aggregate report (text / JSON rendering).
    pub report: CampaignReport,
}

impl CampaignResult {
    /// Whether every job succeeded.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.result.is_ok())
    }

    /// Merged Perfetto timeline: one track per worker, one event per job
    /// (timestamps share the process trace epoch, so rank-level traces
    /// recorded in the same process line up with these).
    pub fn perfetto_json(&self) -> String {
        let nworkers = self
            .outcomes
            .iter()
            .map(|o| o.worker + 1)
            .max()
            .unwrap_or_default();
        let mut tracks: Vec<Track> = (0..nworkers)
            .map(|w| Track {
                name: format!("worker {w}"),
                tid: w,
                events: Vec::new(),
            })
            .collect();
        for o in &self.outcomes {
            tracks[o.worker].events.push(TrackEvent {
                name: format!(
                    "{} [{}{}]",
                    o.name,
                    o.cache.as_str(),
                    if o.attempts > 1 {
                        format!(", {} attempts", o.attempts)
                    } else {
                        String::new()
                    }
                ),
                start_ns: o.start_ns,
                dur_ns: o.end_ns.saturating_sub(o.start_ns),
                depth: 0,
            });
        }
        specfem_obs::perfetto_tracks(&tracks)
    }
}

/// Pick the index of the next job to dispatch under the policy, or
/// `None` when the queue is empty.
fn pick_index(shared: &Shared, queue: &[QueuedJob]) -> Option<usize> {
    if queue.is_empty() {
        return None;
    }
    match shared.cfg.policy {
        SchedulePolicy::Fifo => queue
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| (Reverse(q.job.priority), q.index))
            .map(|(i, _)| i),
        SchedulePolicy::MeshAffinity => queue
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| {
                let resident = shared
                    .cache
                    .contains_geometry(q.job.sim.mesh_key().geometry_fingerprint());
                (!resident, Reverse(q.job.priority), q.index)
            })
            .map(|(i, _)| i),
    }
}

/// Claim every queued job fusable with `key`, up to `room` of them, in
/// queue order. Caller holds the state lock.
fn claim_batch_mates(queue: &mut Vec<QueuedJob>, key: BatchKey, room: usize) -> Vec<QueuedJob> {
    let mut mates = Vec::new();
    let mut j = 0;
    while j < queue.len() && mates.len() < room {
        if packer::batch_key(&queue[j].job) == Some(key) {
            mates.push(queue.remove(j));
        } else {
            j += 1;
        }
    }
    mates
}

fn worker_loop(shared: Arc<Shared>, worker_id: usize) {
    loop {
        let batch: Vec<QueuedJob> = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(i) = pick_index(&shared, &st.queue) {
                    let primary = st.queue.remove(i);
                    let mut group = vec![primary];
                    let max_lanes = shared.cfg.batch_max_lanes.min(packer::max_lanes());
                    if max_lanes > 1 {
                        if let Some(key) = packer::batch_key(&group[0].job) {
                            // Greedy pack from the live queue; with a
                            // window configured, keep the claim open for
                            // late-arriving batch-mates.
                            let deadline =
                                Instant::now() + Duration::from_millis(shared.cfg.batch_window_ms);
                            loop {
                                let room = max_lanes - group.len();
                                group.extend(claim_batch_mates(&mut st.queue, key, room));
                                if group.len() >= max_lanes || st.done {
                                    break;
                                }
                                let now = Instant::now();
                                if now >= deadline {
                                    break;
                                }
                                let (guard, _timeout) =
                                    shared.cond.wait_timeout(st, deadline - now).unwrap();
                                st = guard;
                            }
                        }
                    }
                    // Queue slots freed: wake blocked submitters.
                    shared.cond.notify_all();
                    break group;
                }
                if st.done {
                    return;
                }
                st = shared.cond.wait(st).unwrap();
            }
        };
        let outcomes = if batch.len() == 1 {
            let queued = batch.into_iter().next().unwrap();
            vec![run_job(&shared, worker_id, queued)]
        } else {
            run_batch(&shared, worker_id, batch)
        };
        // Completion hook first (lock dropped before the call), so a
        // waiting daemon connection is answered before the outcome even
        // reaches the drainable backlog.
        let cb = shared.on_complete.lock().unwrap().clone();
        for outcome in outcomes {
            if let Some(cb) = &cb {
                cb(&outcome);
            }
            shared.state.lock().unwrap().outcomes.push(outcome);
        }
        // The batch's mesh Arc is dropped: admission-control waiters may
        // now be able to evict it.
        shared.cache.notify_released();
        shared.cond.notify_all();
    }
}

/// Run K fused jobs as one batched solve and fan the per-lane results
/// out to one [`JobOutcome`] each. The fused loop's shared accounting
/// follows `specfem_core::batch::try_run_batch_with_mesh`: comm/flops
/// on lane 0, the real mesh-cache outcome on lane 0 (siblings are
/// `Hit` — they shared lane 0's acquisition). A lane poisoned by a
/// health trip fails only its own job. A whole-batch setup failure or
/// panic falls back to running every job on the single-lane path.
fn run_batch(shared: &Shared, worker: usize, batch: Vec<QueuedJob>) -> Vec<JobOutcome> {
    let start_ns = specfem_obs::timestamp_ns();
    let t0 = Instant::now();
    let _span = specfem_obs::span("campaign.batch");
    let k = batch.len();
    let queue_waits: Vec<f64> = batch
        .iter()
        .map(|q| q.submitted.elapsed().as_secs_f64())
        .collect();

    let attempted = catch_unwind(AssertUnwindSafe(|| {
        let lead = &batch[0].job.sim;
        let key = lead.mesh_key();
        let (mesh, cache_outcome) =
            shared
                .cache
                .get_or_build(&key, &lead.params, lead.estimated_mesh_bytes(), || {
                    lead.build_mesh().0
                });
        let sims: Vec<&Simulation> = batch.iter().map(|q| &q.job.sim).collect();
        specfem_core::batch::try_run_batch_with_mesh(&sims, &mesh, None)
            .map(|results| (mesh.nspec, cache_outcome, results))
    }));
    let (nspec, cache_outcome, results) = match attempted {
        Ok(Ok(parts)) => parts,
        Ok(Err(setup_err)) => {
            // The packer should have screened this; recover by running
            // the jobs unfused rather than failing them.
            specfem_obs::counter_add("campaign.batch_fallbacks", 1);
            eprintln!("warning: batch of {k} fell back to single-lane runs: {setup_err}");
            return batch
                .into_iter()
                .map(|q| run_job(shared, worker, q))
                .collect();
        }
        Err(_panic) => {
            specfem_obs::counter_add("campaign.batch_fallbacks", 1);
            eprintln!("warning: batched solve panicked; rerunning {k} job(s) single-lane");
            return batch
                .into_iter()
                .map(|q| run_job(shared, worker, q))
                .collect();
        }
    };
    specfem_obs::counter_add("campaign.batched_jobs", k as u64);
    let end_ns = specfem_obs::timestamp_ns();
    let run_s = t0.elapsed().as_secs_f64();
    batch
        .into_iter()
        .zip(results)
        .zip(queue_waits)
        .enumerate()
        .map(|(lane, ((q, res), queue_wait_s))| {
            let mut telemetry = JobTelemetry {
                batch_lanes: k,
                native_world: 1,
                ..JobTelemetry::default()
            };
            let result = match res {
                Ok(r) => {
                    roll_up_result(&mut telemetry, &r);
                    Ok(r)
                }
                Err(e) => {
                    roll_up_error(&mut telemetry, &e);
                    Err(e.to_string())
                }
            };
            let element_steps = if result.is_ok() {
                nspec as u64 * q.job.sim.config.nsteps as u64
            } else {
                0
            };
            specfem_obs::counter_add("campaign.jobs_finished", 1);
            JobOutcome {
                name: q.job.name,
                index: q.index,
                worker,
                attempts: 1,
                queue_wait_s,
                run_s,
                cache: if lane == 0 {
                    cache_outcome
                } else {
                    CacheOutcome::Hit
                },
                element_steps,
                start_ns,
                end_ns,
                result,
                telemetry,
            }
        })
        .collect()
}

/// Newest crash-dossier path inside a job's checkpoint directory
/// (`dossier_<class>_<seq>.sfcn` — the sequence number is monotonic, so
/// lexicographically-last is newest).
fn newest_dossier(dir: &std::path::Path) -> Option<String> {
    let mut best: Option<String> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("dossier_") && name.ends_with(".sfcn") {
            let path = entry.path().display().to_string();
            if best.as_deref().is_none_or(|b| path.as_str() > b) {
                best = Some(path);
            }
        }
    }
    best
}

fn run_job(shared: &Shared, worker: usize, queued: QueuedJob) -> JobOutcome {
    let queue_wait_s = queued.submitted.elapsed().as_secs_f64();
    let start_ns = specfem_obs::timestamp_ns();
    let t0 = Instant::now();
    let job = &queued.job;
    let _span = specfem_obs::span("campaign.job");

    let attempted = catch_unwind(AssertUnwindSafe(|| {
        let key = job.sim.mesh_key();
        let estimated = job.sim.estimated_mesh_bytes();
        let (mesh, cache_outcome) =
            shared
                .cache
                .get_or_build(&key, &job.sim.params, estimated, || job.sim.build_mesh().0);
        let checkpoint_dir = shared
            .cfg
            .checkpoint_root
            .as_ref()
            .map(|root| root.join(sanitize(&job.name)));
        let mut attempts = 0;
        let mut telemetry = JobTelemetry {
            trace_id: job.trace.map(|t| t.hex()),
            ..JobTelemetry::default()
        };
        let native_world = match job.mode {
            JobMode::Serial => 1,
            JobMode::Distributed => job.sim.params.num_ranks(),
        };
        let mut world_override: Option<usize> = None;
        let result = loop {
            attempts += 1;
            let mut sim = job.sim.clone();
            sim.config.trace_id = job.trace;
            if attempts > 1 {
                // The fault plan had its chance; retries run clean and,
                // when checkpointing, resume where the fault struck.
                sim.config.fault_plan = None;
            }
            let opts = RunOptions {
                profile: match job.mode {
                    JobMode::Serial => None,
                    JobMode::Distributed => Some(shared.cfg.profile),
                },
                checkpoint_dir: checkpoint_dir.as_deref(),
                resume: checkpoint_dir.is_some(),
                world: world_override,
                dossier_dir: None,
            };
            match sim.try_run_with_mesh(&mesh, opts) {
                Ok(res) => {
                    roll_up_result(&mut telemetry, &res);
                    break Ok(res);
                }
                Err(e) => {
                    roll_up_error(&mut telemetry, &e);
                    // A failed attempt with the flight recorder armed left
                    // a crash dossier next to the checkpoints — record the
                    // newest so the report/serve layers can point at it.
                    if let Some(dir) = checkpoint_dir.as_deref() {
                        if let Some(d) = newest_dossier(dir) {
                            telemetry.dossier = Some(d);
                        }
                    }
                    if attempts <= shared.cfg.retry.max_retries {
                        if shared.cfg.retry.shrink_to_survive
                            && job.mode == JobMode::Distributed
                            && shrinkable(&e)
                        {
                            // Shrink-to-survive: one rank is gone, so
                            // re-admit the survivors on a world one rank
                            // smaller. The merged checkpoint container is
                            // rank-count independent — the shrunken world
                            // resumes from the last good generation.
                            let cur = world_override.unwrap_or(native_world);
                            let next = cur.saturating_sub(1).max(1);
                            if next < cur {
                                world_override = Some(next);
                                telemetry.shrink_path.push(next);
                                specfem_obs::counter_add("campaign.world_shrinks", 1);
                            }
                        }
                        std::thread::sleep(shared.cfg.retry.backoff * attempts as u32);
                        continue;
                    }
                    break Err(e.to_string());
                }
            }
        };
        telemetry.native_world = native_world;
        telemetry.final_world = world_override;
        let element_steps = if result.is_ok() {
            mesh.nspec as u64 * job.sim.config.nsteps as u64
        } else {
            0
        };
        (cache_outcome, attempts, element_steps, result, telemetry)
    }));

    let (cache_outcome, attempts, element_steps, result, telemetry) = match attempted {
        Ok(parts) => parts,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".into());
            (
                CacheOutcome::Miss,
                1,
                0,
                Err(format!("job panicked: {msg}")),
                JobTelemetry {
                    trace_id: job.trace.map(|t| t.hex()),
                    ..JobTelemetry::default()
                },
            )
        }
    };
    specfem_obs::counter_add("campaign.jobs_finished", 1);
    JobOutcome {
        name: job.name.clone(),
        index: queued.index,
        worker,
        attempts,
        queue_wait_s,
        run_s: t0.elapsed().as_secs_f64(),
        cache: cache_outcome,
        element_steps,
        start_ns,
        end_ns: specfem_obs::timestamp_ns(),
        result,
        telemetry,
    }
}

/// Fold a finished run's comm counters, per-tag traffic, recv-wait
/// histogram, and watchdog report into the job's telemetry rollup.
fn roll_up_result(t: &mut JobTelemetry, res: &SimulationResult) {
    for r in &res.ranks {
        t.bytes_sent += r.comm.bytes_sent;
        t.bytes_received += r.comm.bytes_received;
        t.messages_sent += r.comm.messages_sent;
        t.collectives += r.comm.collectives;
        t.merge_tags(&r.comm.per_tag);
        if let Some(lts) = &r.lts {
            t.lts_max_rate = Some(lts.max_rate);
            t.lts_element_steps_saved += lts.element_steps_saved;
        }
        if let Some(profile) = &r.profile {
            if let Some(h) = profile.metrics.histograms.get("comm.recv_wait_ns") {
                t.recv_wait_ns.get_or_insert_with(Default::default).merge(h);
            }
        }
    }
    if let Some(wd) = &res.watchdog {
        t.watchdog_max_skew_steps = Some(wd.max_skew_steps);
        for s in &wd.stalls {
            if !t.watchdog_stalled_ranks.contains(&s.rank) {
                t.watchdog_stalled_ranks.push(s.rank);
            }
        }
    }
}

/// Record the structured cause of a failed attempt (health trip, watchdog
/// stall) before it is flattened to the outcome's error string.
fn roll_up_error(t: &mut JobTelemetry, e: &specfem_core::solver::SolverError) {
    use specfem_core::comm::CommError;
    use specfem_core::solver::SolverError;
    match e {
        SolverError::Health(report) if t.health_trip.is_none() => {
            t.health_trip = Some(report.to_string());
        }
        SolverError::Comm(CommError::Stalled { rank, .. })
            if !t.watchdog_stalled_ranks.contains(rank) =>
        {
            t.watchdog_stalled_ranks.push(*rank);
        }
        _ => {}
    }
}

/// Make a job name safe as a checkpoint directory component.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_core::comm::FaultPlan;
    use specfem_core::model::builtin_events;
    use specfem_core::{SourceSpec, SourceTimeFunction, StfKind};

    fn tiny_sim(nex: usize, steps: usize, event_idx: usize) -> Simulation {
        let events = builtin_events();
        let event = events[event_idx % events.len()].clone();
        Simulation::builder()
            .resolution(nex)
            .steps(steps)
            .stations(3)
            .source(SourceSpec::Cmt {
                event,
                stf: SourceTimeFunction::new(StfKind::Ricker, 200.0),
            })
            .build()
            .unwrap()
    }

    #[test]
    fn shared_mesh_catalogue_builds_once() {
        let mut campaign = Campaign::new(CampaignConfig {
            workers: 2,
            ..CampaignConfig::default()
        });
        for i in 0..5 {
            campaign.submit(Job::new(format!("event_{i}"), tiny_sim(4, 5, i)));
        }
        // A distributed job exercises the telemetry rollup with real
        // inter-rank traffic (serial jobs legitimately report 0 bytes).
        campaign.submit(Job::new("event_dist", tiny_sim(4, 5, 5)).distributed());
        let result = campaign.finish();
        assert!(result.all_ok(), "{:#?}", result.report.render_text());
        assert_eq!(result.outcomes.len(), 6);
        assert_eq!(result.cache.misses, 1);
        assert_eq!(result.cache.hits, 5);
        assert!(result.report.total_element_steps > 0);
        let json = result.report.to_json();
        assert!(json.contains("\"element_steps_per_s\""));
        assert!(json.contains("\"cache\""));
        // Per-job comm telemetry rides along in the campaign JSON.
        assert!(json.contains("\"comm\""));
        assert!(json.contains("\"per_tag\""));
        let first = result.outcomes[0].result.as_ref().unwrap();
        let expect_bytes: u64 = first.ranks.iter().map(|r| r.comm.bytes_sent).sum();
        assert_eq!(result.outcomes[0].telemetry.bytes_sent, expect_bytes);
        let dist = &result.outcomes[5];
        let dist_res = dist.result.as_ref().unwrap();
        let dist_bytes: u64 = dist_res.ranks.iter().map(|r| r.comm.bytes_sent).sum();
        assert!(dist_bytes > 0, "distributed job must move halo bytes");
        assert_eq!(dist.telemetry.bytes_sent, dist_bytes);
        assert!(
            !dist.telemetry.per_tag.is_empty(),
            "per-tag traffic must roll up for distributed jobs"
        );
        let perfetto = result.perfetto_json();
        assert!(perfetto.contains("worker 0"));
        assert!(perfetto.contains("event_0"));
    }

    #[test]
    fn affinity_beats_fifo_under_tight_budget() {
        // Two geometries, interleaved A B A B, budget fits one mesh:
        // FIFO thrashes, affinity groups A A B B.
        let run = |policy: SchedulePolicy| {
            let probe = tiny_sim(4, 2, 0);
            let (mesh_a, _) = probe.build_mesh();
            let probe_b = tiny_sim(6, 2, 0);
            let (mesh_b, _) = probe_b.build_mesh();
            let budget = mesh_a.approx_bytes().max(mesh_b.approx_bytes()) + 4096;
            let mut campaign = Campaign::new(CampaignConfig {
                workers: 1,
                mesh_cache_bytes: budget,
                policy,
                ..CampaignConfig::default()
            });
            for i in 0..4 {
                let nex = if i % 2 == 0 { 4 } else { 6 };
                campaign.submit(Job::new(format!("j{i}"), tiny_sim(nex, 2, i)));
            }
            let result = campaign.finish();
            assert!(result.all_ok());
            result.cache
        };
        let fifo = run(SchedulePolicy::Fifo);
        let affine = run(SchedulePolicy::MeshAffinity);
        assert!(
            affine.evictions < fifo.evictions,
            "affinity {affine:?} vs fifo {fifo:?}"
        );
        assert_eq!(affine.hits, 2);
        assert_eq!(affine.misses, 2);
    }

    #[test]
    fn injected_kill_retries_to_bit_identical_seismograms() {
        let ckpt = std::env::temp_dir().join("specfem_campaign_retry_ckpt");
        let _ = std::fs::remove_dir_all(&ckpt);
        let clean = tiny_sim(4, 20, 0);
        let expected = clean.run_serial();

        let mut faulty = clean.clone();
        faulty.config.checkpoint_every = 5;
        faulty.config.fault_plan = Some(FaultPlan::new(7).kill(0, 12));
        let mut campaign = Campaign::new(CampaignConfig {
            workers: 1,
            checkpoint_root: Some(ckpt.clone()),
            ..CampaignConfig::default()
        });
        campaign.submit(Job::new("faulty", faulty));
        let result = campaign.finish();
        assert!(result.all_ok(), "{}", result.report.render_text());
        let outcome = &result.outcomes[0];
        assert_eq!(outcome.attempts, 2, "the kill must actually fire");
        let got = outcome.result.as_ref().unwrap();
        assert_eq!(got.seismograms.len(), expected.seismograms.len());
        for (g, e) in got.seismograms.iter().zip(&expected.seismograms) {
            assert_eq!(g.station, e.station);
            assert_eq!(g.data, e.data, "station {} diverged", g.station);
        }
        let _ = std::fs::remove_dir_all(&ckpt);
    }

    #[test]
    fn dead_rank_shrinks_the_world_and_finishes() {
        // A distributed job loses a rank mid-run; shrink-to-survive must
        // re-admit the retry on a world one rank smaller, resume it from
        // the merged (rank-count-independent) checkpoint, and record the
        // degradation in the telemetry and report.
        let ckpt = std::env::temp_dir().join("specfem_campaign_shrink_ckpt");
        let _ = std::fs::remove_dir_all(&ckpt);
        let clean = tiny_sim(4, 20, 0);
        let expected = clean.run_serial();

        let mut faulty = clean.clone();
        faulty.config.checkpoint_every = 5;
        faulty.config.fault_plan = Some(FaultPlan::new(11).kill(2, 12));
        let mut campaign = Campaign::new(CampaignConfig {
            workers: 1,
            checkpoint_root: Some(ckpt.clone()),
            ..CampaignConfig::default()
        });
        campaign.submit(Job::new("elastic", faulty).distributed());
        let result = campaign.finish();
        assert!(result.all_ok(), "{}", result.report.render_text());
        let outcome = &result.outcomes[0];
        assert_eq!(outcome.attempts, 2, "the kill must actually fire");
        let t = &outcome.telemetry;
        assert_eq!(t.native_world, 6);
        assert_eq!(t.final_world, Some(5), "retry must re-admit on 5 ranks");
        assert_eq!(t.shrink_path, vec![5]);
        assert_eq!(result.report.shrunk_jobs, 1);
        let got = outcome.result.as_ref().unwrap();
        assert_eq!(got.ranks.len(), 5, "final attempt ran the shrunken world");
        assert_eq!(got.seismograms.len(), expected.seismograms.len());
        for (e, g) in expected.seismograms.iter().zip(&got.seismograms) {
            assert_eq!(e.station, g.station);
            let scale = e
                .data
                .iter()
                .flat_map(|v| v.iter())
                .fold(0.0f32, |m, &x| m.max(x.abs()))
                .max(1e-20);
            for (ve, vg) in e.data.iter().zip(&g.data) {
                for c in 0..3 {
                    assert!(
                        (ve[c] - vg[c]).abs() <= 2e-3 * scale,
                        "station {}: serial {} vs shrunken {} (scale {scale})",
                        e.station,
                        ve[c],
                        vg[c]
                    );
                }
            }
        }
        let json = result.report.to_json();
        assert!(json.contains("\"shrunk_jobs\": 1"));
        assert!(json.contains("\"elastic\""));
        assert!(json.contains("\"final_world\": 5"));
        assert!(result.report.render_text().contains("shrunken world"));
        let _ = std::fs::remove_dir_all(&ckpt);
    }

    #[test]
    fn unstable_dt_trips_the_health_monitor_and_rolls_up() {
        // A dt far past the Courant bound makes the explicit scheme blow
        // up; the health monitor must abort the job and the campaign
        // report must carry the structured trip.
        let mut sim = tiny_sim(4, 500, 0);
        sim.config.dt = Some(1000.0);
        sim.config.health_every = 5;
        let mut campaign = Campaign::new(CampaignConfig {
            workers: 1,
            retry: RetryPolicy {
                max_retries: 0,
                backoff: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
            ..CampaignConfig::default()
        });
        campaign.submit(Job::new("unstable", sim));
        let result = campaign.finish();
        assert!(!result.all_ok());
        assert_eq!(result.report.health_trips, 1);
        let trip = result.outcomes[0]
            .telemetry
            .health_trip
            .as_ref()
            .expect("the health monitor must have tripped");
        assert!(trip.contains("rank 0"), "{trip}");
        assert!(trip.contains("step"), "{trip}");
        let json = result.report.to_json();
        assert!(json.contains("\"health_trips\": 1"));
        assert!(json.contains("\"health_trip\""));
    }

    #[test]
    fn failed_jobs_surface_without_sinking_the_campaign() {
        // A fault-injected job with retries disabled and no checkpoints
        // must fail; its neighbours must still succeed.
        let mut bad = tiny_sim(4, 20, 0);
        bad.config.fault_plan = Some(FaultPlan::new(3).kill(0, 5));
        let mut campaign = Campaign::new(CampaignConfig {
            workers: 2,
            retry: RetryPolicy {
                max_retries: 0,
                backoff: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
            ..CampaignConfig::default()
        });
        campaign.submit(Job::new("bad", bad));
        campaign.submit(Job::new("good", tiny_sim(4, 5, 1)));
        let result = campaign.finish();
        assert!(!result.all_ok());
        assert_eq!(result.report.failed_jobs, 1);
        let bad = result.outcomes.iter().find(|o| o.name == "bad").unwrap();
        assert!(bad.result.is_err());
        let good = result.outcomes.iter().find(|o| o.name == "good").unwrap();
        assert!(good.result.is_ok());
        let json = result.report.to_json();
        assert!(json.contains("\"error\""));
    }

    #[test]
    fn backpressure_bounds_the_queue_and_everything_completes() {
        let mut campaign = Campaign::new(CampaignConfig {
            workers: 1,
            queue_capacity: 1,
            ..CampaignConfig::default()
        });
        for i in 0..3 {
            campaign.submit(Job::new(format!("bp{i}"), tiny_sim(4, 3, i)));
        }
        let result = campaign.finish();
        assert!(result.all_ok());
        assert_eq!(result.outcomes.len(), 3);
        // Outcomes come back in submission order regardless of execution.
        let idx: Vec<usize> = result.outcomes.iter().map(|o| o.index).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn drain_and_callback_keep_the_pool_alive() {
        // The daemon's usage pattern: collect outcomes while the worker
        // pool stays up, submit more afterwards, never call finish()
        // until shutdown.
        let completed: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let mut campaign = Campaign::new(CampaignConfig {
            workers: 1,
            ..CampaignConfig::default()
        });
        let sink = completed.clone();
        campaign.on_completion(move |o| sink.lock().unwrap().push(o.name.clone()));
        campaign.submit(Job::new("d0", tiny_sim(4, 3, 0)));
        campaign.submit(Job::new("d1", tiny_sim(4, 3, 1)));
        let wait_for = |campaign: &Campaign, n: usize| {
            let t0 = Instant::now();
            while campaign.in_flight() > 0 {
                assert!(t0.elapsed() < Duration::from_secs(120), "jobs wedged");
                std::thread::sleep(Duration::from_millis(20));
            }
            let _ = n;
        };
        wait_for(&campaign, 2);
        assert_eq!(completed.lock().unwrap().len(), 2);
        let first = campaign.drain();
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].name, "d0");
        assert_eq!(first[1].name, "d1");
        assert!(first.iter().all(|o| o.result.is_ok()));
        assert!(campaign.drain().is_empty(), "drain must not re-deliver");
        // The pool is still alive: a third job runs on the same workers.
        campaign.submit(Job::new("d2", tiny_sim(4, 3, 2)));
        wait_for(&campaign, 3);
        let second = campaign.drain();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].name, "d2");
        assert_eq!(completed.lock().unwrap().len(), 3);
        // finish() still works and reports only undrained outcomes.
        let result = campaign.finish();
        assert!(result.outcomes.is_empty());
        assert!(result.all_ok());
    }

    #[test]
    fn priorities_order_the_backlog() {
        // With a saturated single worker, the high-priority job leaves
        // the queue before the earlier-submitted low-priority one.
        let mut campaign = Campaign::new(CampaignConfig {
            workers: 1,
            ..CampaignConfig::default()
        });
        campaign.submit(Job::new("first", tiny_sim(4, 10, 0)));
        campaign.submit(Job::new("low", tiny_sim(4, 3, 1)).priority(-1));
        campaign.submit(Job::new("high", tiny_sim(4, 3, 2)).priority(1));
        let result = campaign.finish();
        assert!(result.all_ok());
        let pos = |name: &str| result.outcomes.iter().position(|o| o.name == name).unwrap();
        // Outcomes are submission-ordered; compare dispatch times instead.
        let high_wait = result.outcomes[pos("high")].queue_wait_s;
        let low_wait = result.outcomes[pos("low")].queue_wait_s;
        // "high" was submitted after "low" yet dispatched no later.
        assert!(high_wait <= low_wait + 1e-3);
    }
}
