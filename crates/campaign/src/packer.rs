//! The batch packer: decide which queued jobs may fuse into one
//! K-lane solve.
//!
//! Fusion is legal only between jobs that would run the *same* fused
//! time loop — identical mesh (full [`specfem_core::Simulation::mesh_key`]
//! geometry) and identical batch-compat key
//! ([`specfem_core::batch::batch_compat_key`]: kernel variant, physics
//! toggles, `nsteps`, `dt`, recording cadence…). The per-lane degrees
//! of freedom — the earthquake and the station set — are exactly what
//! the lanes vary, so they do not appear in the key.
//!
//! The worker loop packs greedily from the live queue (see
//! `worker_loop` in the crate root); [`plan_batches`] is the same
//! grouping as a pure function over a snapshot, which is what the
//! property tests drive.

use specfem_core::Simulation;

use crate::{Job, JobMode};

/// Hard ceiling on lanes per solve (the kernel tier's
/// `MAX_BATCH_LANES`); `CampaignConfig::batch_max_lanes` is clamped to
/// it at dispatch.
pub fn max_lanes() -> usize {
    specfem_core::kernels::MAX_BATCH_LANES
}

/// The fusion identity of a batchable job: jobs fuse iff their keys are
/// equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchKey {
    /// Full mesh fingerprint (geometry + decomposition + model id).
    pub mesh: u64,
    /// [`specfem_core::batch::batch_compat_key`] over the shared-loop knobs.
    pub compat: u64,
}

/// The fusion identity of a job, or `None` when the job must take the
/// single-lane path: distributed mode, unbatchable physics/ops config,
/// or a fault plan (fault injection is a per-run supervision concern
/// the fused loop does not thread through).
pub fn batch_key(job: &Job) -> Option<BatchKey> {
    if job.mode != JobMode::Serial {
        return None;
    }
    batch_key_sim(&job.sim)
}

/// [`batch_key`] on a bare simulation (the serve daemon keys requests
/// before wrapping them in jobs).
pub fn batch_key_sim(sim: &Simulation) -> Option<BatchKey> {
    let compat = specfem_core::batch::batch_compat_key(sim)?;
    Some(BatchKey {
        mesh: sim.mesh_key().fingerprint(),
        compat,
    })
}

/// Group a queue snapshot into dispatch batches: each inner `Vec` holds
/// positions (into `keys`) of jobs that fuse into one solve, in input
/// order, capped at `max_lanes` per batch; a `None` key is a batch of
/// one. The output is a partition of `0..keys.len()` — every input
/// position appears in exactly one batch (the lane→job fan-out the
/// property tests check is a bijection).
pub fn plan_batches(keys: &[Option<BatchKey>], max_lanes: usize) -> Vec<Vec<usize>> {
    let max_lanes = max_lanes.max(1);
    let mut batches: Vec<Vec<usize>> = Vec::new();
    let mut open: Vec<(BatchKey, usize)> = Vec::new(); // key → position in `batches`
    for (i, key) in keys.iter().enumerate() {
        match key {
            None => batches.push(vec![i]),
            Some(k) => match open.iter().find(|(ok, _)| ok == k) {
                Some(&(_, b)) if batches[b].len() < max_lanes => batches[b].push(i),
                _ => {
                    // No open batch with room: start a new one and make
                    // it the key's open batch.
                    open.retain(|(ok, _)| ok != k);
                    open.push((*k, batches.len()));
                    batches.push(vec![i]);
                }
            },
        }
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(mesh: u64, compat: u64) -> Option<BatchKey> {
        Some(BatchKey { mesh, compat })
    }

    #[test]
    fn plan_groups_equal_keys_and_respects_the_cap() {
        let keys = vec![
            key(1, 1),
            key(1, 1),
            None,
            key(1, 2),
            key(1, 1),
            key(1, 1),
            key(1, 2),
        ];
        let batches = plan_batches(&keys, 3);
        assert_eq!(batches, vec![vec![0, 1, 4], vec![2], vec![3, 6], vec![5]]);
        // Cap 1 degenerates to singletons in input order.
        let singles = plan_batches(&keys, 1);
        assert_eq!(singles.len(), keys.len());
        for (i, b) in singles.iter().enumerate() {
            assert_eq!(b, &vec![i]);
        }
    }
}
