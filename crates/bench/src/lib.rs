//! Shared helpers for the figure/table harness binaries
//! (`src/bin/fig*.rs`, `src/bin/ablation_*.rs`) and the Criterion benches.
//!
//! Every binary regenerates one artifact of the paper's evaluation; the
//! mapping is in DESIGN.md §3 and the measured-vs-paper record in
//! EXPERIMENTS.md.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use specfem_campaign::MeshCache;
use specfem_core::obs::ledger::{self, LedgerRecord};
use specfem_core::SimulationResult;
use specfem_mesh::{GlobalMesh, MeshKey, MeshParams};
use specfem_model::Prem;

/// Build an isotropic-PREM mesh with standard options.
pub fn prem_mesh(nex: usize, nproc: usize) -> GlobalMesh {
    let params = MeshParams::new(nex, nproc);
    GlobalMesh::build(&params, &Prem::isotropic_no_ocean())
}

/// Build a mesh with custom parameter tweaks.
pub fn prem_mesh_with(nex: usize, nproc: usize, tweak: impl FnOnce(&mut MeshParams)) -> GlobalMesh {
    let mut params = MeshParams::new(nex, nproc);
    tweak(&mut params);
    GlobalMesh::build(&params, &Prem::isotropic_no_ocean())
}

/// Fetch an isotropic-PREM mesh through a campaign [`MeshCache`]: each
/// geometry is built once per cache, and decomposition variants (same
/// `nex`, different `nproc`) are served as derived hits instead of
/// rebuilt — so a rank-count sweep at one resolution meshes exactly once.
pub fn prem_mesh_cached(
    cache: &MeshCache,
    nex: usize,
    nproc: usize,
    tweak: impl FnOnce(&mut MeshParams),
) -> Arc<GlobalMesh> {
    let mut params = MeshParams::new(nex, nproc);
    tweak(&mut params);
    let key = MeshKey::new(&params, "prem_iso");
    let model = Prem::isotropic_no_ocean();
    let estimated = specfem_mesh::estimated_mesh_bytes(&params, &model);
    let build_params = params.clone();
    let (mesh, _) = cache.get_or_build(&key, &params, estimated, move || {
        GlobalMesh::build(&build_params, &model)
    });
    mesh
}

/// Time a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Render a markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    cells.join("  |  ")
}

/// Where harness ledgers (`BENCH_<harness>.json`) are appended:
/// `$SPECFEM_LEDGER_DIR` when set, else `OUTPUT_FILES/ledger`.
pub fn ledger_dir() -> PathBuf {
    std::env::var_os("SPECFEM_LEDGER_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("OUTPUT_FILES/ledger"))
}

/// Build the schema-versioned run-ledger record for one harness run:
/// wall/comm/imbalance and per-phase timings from the run's IPM report,
/// deterministic traffic counters, Σ element·steps, and the machine
/// profile wall-clock comparability is gated on.
pub fn ledger_record(harness: &str, result: &SimulationResult, profile: &str) -> LedgerRecord {
    let element_steps = result
        .ranks
        .iter()
        .map(|r| r.nspec as u64 * r.nsteps as u64)
        .sum();
    LedgerRecord::from_report(harness, &result.ipm_report(), element_steps, profile)
}

/// Append `record` to `<dir>/BENCH_<stem>.json` (atomic rewrite), returning
/// the file path.
pub fn append_ledger(dir: &Path, stem: &str, record: &LedgerRecord) -> Result<PathBuf, String> {
    let path = dir.join(format!("BENCH_{stem}.json"));
    ledger::append(&path, record)?;
    Ok(path)
}

/// Pretty bytes.
pub fn human_bytes(b: f64) -> String {
    const UNITS: &[&str] = &["B", "KB", "MB", "GB", "TB", "PB"];
    let mut v = b;
    let mut u = 0;
    while v >= 1000.0 && u + 1 < UNITS.len() {
        v /= 1000.0;
        u += 1;
    }
    format!("{v:.2} {}", UNITS[u])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(512.0), "512.00 B");
        assert_eq!(human_bytes(14.0e12), "14.00 TB");
    }

    #[test]
    fn timed_measures() {
        let (v, s) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }
}
