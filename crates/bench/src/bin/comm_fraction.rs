//! §5 reproduction: the communication share of the solver main loop
//! (paper, measured with IPM on Franklin: 1.9 %–4.2 %, average 3.2 %),
//! and the per-core communication trend with rank count.

use specfem_bench::prem_mesh;
use specfem_comm::NetworkProfile;
use specfem_solver::{run_distributed, SolverConfig};

fn main() {
    println!("== Communication share of the main loop (IPM analog, §5) ==");
    let nsteps = 50;
    for nproc in [1usize, 2] {
        let mesh = prem_mesh(8, nproc);
        let config = SolverConfig {
            nsteps,
            ..SolverConfig::default()
        };
        let results = run_distributed(&mesh, &config, &[], NetworkProfile::xt4_seastar2());
        let ranks = results.len();
        // Two views of the comm share:
        //  * wall — what IPM would see *on this oversubscribed laptop*:
        //    rank threads parked in recv() count as communication, so the
        //    number is dominated by oversubscription waits, not the network;
        //  * modeled — the dedicated-machine estimate: the XT4 network model
        //    time in place of the measured waits (the paper's regime).
        let mut wall_fracs = Vec::new();
        let mut modeled_fracs = Vec::new();
        for r in &results {
            wall_fracs.push(r.comm_fraction());
            let compute = (r.elapsed_s - r.comm.wall_time_s).max(1e-9);
            modeled_fracs.push(r.comm.modeled_time_s / (compute + r.comm.modeled_time_s));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let per_core_comm: f64 =
            results.iter().map(|r| r.comm.wall_time_s).sum::<f64>() / ranks as f64;
        println!(
            "{ranks:>4} ranks: modeled (dedicated-machine) share {:.2} %; wall share {:.1} % (oversubscribed threads); per-core comm wall {:.3} s",
            100.0 * mean(&modeled_fracs),
            100.0 * mean(&wall_fracs),
            per_core_comm
        );
        let bytes: u64 = results.iter().map(|r| r.comm.bytes_sent).sum();
        let msgs: u64 = results.iter().map(|r| r.comm.messages_sent).sum();
        println!(
            "          traffic: {:.2} MB in {} messages ({:.1} KB/msg)",
            bytes as f64 / 1e6,
            msgs,
            bytes as f64 / msgs.max(1) as f64 / 1e3
        );
    }
    println!();
    println!("paper: 1.9–4.2 % of main-loop time (avg 3.2 %) — computation-dominated,");
    println!("'a good candidate to scale up to tens of thousands of processors'.");
}
