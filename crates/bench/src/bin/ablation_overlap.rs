//! Overlap ablation: the non-blocking halo exchange (outer elements →
//! post → inner elements → wait) against the blocking oracle, on the same
//! mesh and source. Verifies the two paths are bit-identical, measures
//! the wall-clock difference at 24 ranks, and regenerates the §5 62K-core
//! extrapolation with and without overlap. Writes a JSON artifact
//! (default `OUTPUT_FILES/ablation_overlap.json`, override with `--out`).

use specfem_bench::{prem_mesh, timed};
use specfem_comm::NetworkProfile;
use specfem_perf::predict_overlap;
use specfem_solver::{merge_seismograms, run_distributed, RankResult, Seismogram, SolverConfig};

fn run_once(
    mesh: &specfem_mesh::GlobalMesh,
    overlap: bool,
    nsteps: usize,
) -> (Vec<Seismogram>, Vec<RankResult>, f64) {
    let config = SolverConfig {
        nsteps,
        overlap,
        ..SolverConfig::default()
    };
    let stations = specfem_mesh::stations::global_network(4);
    let (results, t) =
        timed(|| run_distributed(mesh, &config, &stations, NetworkProfile::xt4_seastar2()));
    (merge_seismograms(&results), results, t)
}

/// Largest ULP distance over all paired samples (0 = bit-identical).
fn max_ulp_diff(a: &[Seismogram], b: &[Seismogram]) -> u32 {
    let mut worst = 0u32;
    for (sa, sb) in a.iter().zip(b) {
        assert_eq!(sa.station, sb.station);
        assert_eq!(sa.data.len(), sb.data.len());
        for (va, vb) in sa.data.iter().zip(&sb.data) {
            for c in 0..3 {
                let d = (va[c].to_bits() as i64 - vb[c].to_bits() as i64).unsigned_abs() as u32;
                worst = worst.max(d);
            }
        }
    }
    worst
}

fn main() {
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "OUTPUT_FILES/ablation_overlap.json".into())
    };

    println!("== Communication/computation overlap ablation ==");
    let nsteps = 50;
    let mesh = prem_mesh(8, 2); // 24 ranks
                                // Two timed runs per mode, keep the faster to damp scheduler noise.
    let (seis_block, ranks_block, tb1) = run_once(&mesh, false, nsteps);
    let (_, _, tb2) = run_once(&mesh, false, nsteps);
    let (seis_over, ranks_over, to1) = run_once(&mesh, true, nsteps);
    let (_, _, to2) = run_once(&mesh, true, nsteps);
    let t_blocking = tb1.min(tb2);
    let t_overlap = to1.min(to2);

    let ulp = max_ulp_diff(&seis_block, &seis_over);
    assert_eq!(
        ulp, 0,
        "overlapped seismograms must be bit-identical to the blocking oracle"
    );

    let win_pct = 100.0 * (t_blocking - t_overlap) / t_blocking;
    let mean = |f: &dyn Fn(&RankResult) -> f64, rs: &[RankResult]| -> f64 {
        rs.iter().map(f).sum::<f64>() / rs.len() as f64
    };
    let blocked_over = mean(&|r| r.comm.wait_time_s, &ranks_over);
    let window_over = mean(&|r| r.comm.overlap_time_s, &ranks_over);
    println!(
        "{:>12} {:>12} {:>12} {:>10}",
        "path", "time (s)", "ulp diff", "ranks"
    );
    println!(
        "{:>12} {t_blocking:>12.3} {:>12} {:>10}",
        "blocking", "—", 24
    );
    println!(
        "{:>12} {t_overlap:>12.3} {ulp:>12} {:>10}",
        "overlapped", 24
    );
    println!(
        "measured wall-clock change: {win_pct:+.1} % (oversubscribed thread world; \
         mean in-flight window {window_over:.3} s, mean blocked wait {blocked_over:.3} s)"
    );

    // §5 extrapolation: NEX 4848 on 6·101² = 61206 cores. Per-rank compute
    // per step from the paper's flop accounting at 0.9 Gflop/s sustained.
    let profile = NetworkProfile::ranger_infiniband();
    let compute_step_s = (6.0 * 4848.0f64.powi(2) * 100.0 / 61206.0) * 37_250.0 / 0.9e9;
    let p62k = predict_overlap(4848, 101, 100, &profile, compute_step_s);
    println!();
    println!("62K-core extrapolation (NEX 4848, 61206 ranks):");
    println!(
        "  blocking:   step {:.3} s, comm fraction {:.3} %",
        p62k.blocking_step_s,
        100.0 * p62k.comm_fraction_blocking
    );
    println!(
        "  overlapped: step {:.3} s, exposed comm fraction {:.3} % (outer fraction {:.1} %)",
        p62k.overlapped_step_s,
        100.0 * p62k.comm_fraction_overlapped,
        100.0 * p62k.outer_fraction
    );
    println!("  predicted overlap speedup: {:.4}×", p62k.speedup());

    // The vendored serde_json is parse-only, so the artifact is rendered
    // by hand (same approach as the obs reports); the round-trip test in
    // CI parses it back.
    let artifact = format!(
        r#"{{
  "bench": "ablation_overlap",
  "config": {{ "nex": 8, "nproc_xi": 2, "ranks": 24, "nsteps": {nsteps} }},
  "measured": {{
    "blocking_s": {t_blocking},
    "overlapped_s": {t_overlap},
    "improvement_pct": {win_pct},
    "max_ulp_diff": {ulp},
    "mean_overlap_window_s": {window_over},
    "mean_blocked_wait_s": {blocked_over},
    "mean_comm_fraction_blocking": {cfb},
    "mean_comm_fraction_overlapped": {cfo}
  }},
  "extrapolation_62k": {{
    "nex": 4848,
    "ranks": 61206,
    "blocking_step_s": {bstep},
    "overlapped_step_s": {ostep},
    "comm_fraction_blocking": {p62b},
    "comm_fraction_overlapped": {p62o},
    "outer_fraction": {outer},
    "speedup": {speedup}
  }}
}}
"#,
        cfb = mean(&|r| r.comm_fraction(), &ranks_block),
        cfo = mean(&|r| r.comm_fraction(), &ranks_over),
        bstep = p62k.blocking_step_s,
        ostep = p62k.overlapped_step_s,
        p62b = p62k.comm_fraction_blocking,
        p62o = p62k.comm_fraction_overlapped,
        outer = p62k.outer_fraction,
        speedup = p62k.speedup(),
    );
    serde_json::from_str(&artifact).expect("artifact JSON must parse");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create artifact directory");
    }
    std::fs::write(&out_path, artifact).expect("write JSON artifact");
    println!();
    println!("artifact: {out_path}");
    println!("paper §5: comm is 1.9–4.2 % of the main loop; overlapping hides most of");
    println!("it behind the inner-element stiffness loop, and at 62K cores the model");
    println!("predicts the exchange disappears entirely into the compute window.");
}
