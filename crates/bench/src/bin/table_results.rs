//! The §6 results table: sustained Tflops and shortest period for every
//! reported production run, from the machine model — plus the planned
//! 48K/62K-core Ranger runs of §7.

use specfem_perf::{paper_runs_table, runs_to_json};

fn main() {
    println!("== Paper §6 results table: model vs reported ==");
    println!(
        "{:<42} {:>7} {:>6} {:>8} {:>9} {:>9} {:>7} {:>7}",
        "machine", "cores", "NEX", "T_min(s)", "model TF", "paper TF", "err %", "mem ok"
    );
    for run in paper_runs_table() {
        let (paper, err) = match run.paper_tflops {
            Some(p) => (
                format!("{p:.1}"),
                format!("{:+.1}", 100.0 * (run.sustained_tflops - p) / p),
            ),
            None => ("—".into(), "—".into()),
        };
        println!(
            "{:<42} {:>7} {:>6} {:>8.2} {:>9.1} {:>9} {:>7} {:>7}",
            run.machine,
            run.cores,
            run.nex,
            run.period_s,
            run.sustained_tflops,
            paper,
            err,
            if run.memory_feasible { "yes" } else { "NO" }
        );
    }

    println!();
    println!("shape checks:");
    let runs = paper_runs_table();
    let reported: Vec<_> = runs.iter().filter(|r| r.paper_tflops.is_some()).collect();
    let flops_best = reported
        .iter()
        .max_by(|a, b| a.sustained_tflops.partial_cmp(&b.sustained_tflops).unwrap())
        .unwrap();
    let res_best = reported
        .iter()
        .min_by(|a, b| a.period_s.partial_cmp(&b.period_s).unwrap())
        .unwrap();
    println!(
        "  flops record:      {} ({:.1} TF) — paper: Jaguar, 35.7 TF",
        flops_best.machine, flops_best.sustained_tflops
    );
    println!(
        "  resolution record: {} ({:.2} s) — paper: Ranger, 1.84 s",
        res_best.machine, res_best.period_s
    );
    if let Some(pct) = runs[0].pct_rmax {
        println!(
            "  Franklin fraction of (scaled) Rmax: {:.0} % — paper: 44 %",
            pct * 100.0
        );
    }

    println!();
    println!("machine-readable: {}", runs_to_json(&runs));
}
