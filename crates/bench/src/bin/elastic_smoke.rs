//! Elastic-recovery smoke harness (CI job `elastic`): kill a rank of a
//! distributed campaign job mid-run, let shrink-to-survive re-admit the
//! survivors on a smaller world from the merged (rank-count-independent)
//! checkpoint container, and gate on:
//!
//! * the job completes on the shrunken world (report records the shrink),
//! * its seismograms match a clean oracle inside the cross-decomposition
//!   roundoff envelope (DESIGN.md §3h),
//! * the on-disk container parses and matches the published schema
//!   (magic, schema version, kind, payload version, chunk inventory).
//!
//! ```text
//! elastic_smoke [--nex N] [--steps S] [--out-dir DIR]
//! ```
//!
//! Writes `campaign_report.json`, `container_schema.json`, and
//! `seismogram_diff.json` into `--out-dir` (default
//! `OUTPUT_FILES/elastic/`); exits nonzero when any acceptance check
//! fails.

use specfem_bench::{append_ledger, ledger_dir, ledger_record};
use specfem_campaign::{Campaign, CampaignConfig, Job};
use specfem_core::comm::FaultPlan;
use specfem_core::model::builtin_events;
use specfem_core::{Simulation, SourceSpec, SourceTimeFunction, StfKind};
use specfem_io::ContainerReader;

struct Args {
    nex: usize,
    steps: usize,
    out_dir: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        nex: 4,
        steps: 20,
        out_dir: "OUTPUT_FILES/elastic".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--nex" => args.nex = val().parse().expect("--nex"),
            "--steps" => args.steps = val().parse().expect("--steps"),
            "--out-dir" => args.out_dir = val(),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn smoke_sim(nex: usize, steps: usize) -> Simulation {
    let event = builtin_events()[0].clone();
    Simulation::builder()
        .resolution(nex)
        .steps(steps)
        .stations(4)
        .source(SourceSpec::Cmt {
            event,
            stf: SourceTimeFunction::new(StfKind::Ricker, 250.0),
        })
        .configure(|c| c.checkpoint_every = 5)
        .build()
        .expect("valid smoke simulation")
}

fn main() {
    let args = parse_args();
    let out = std::path::Path::new(&args.out_dir);
    std::fs::create_dir_all(out).expect("create out dir");
    let mut failures = Vec::new();

    println!(
        "== elastic-resume smoke: NEX {}, {} steps ==",
        args.nex, args.steps
    );

    // --- clean oracle: the same physics, uninterrupted, serial path.
    let clean = smoke_sim(args.nex, args.steps).run_serial();

    // --- fault-injected distributed job: one rank dies mid-run; the
    // retry must shrink the world and resume from the merged container.
    let ckpt = std::env::temp_dir().join("specfem_elastic_smoke_ckpt");
    let _ = std::fs::remove_dir_all(&ckpt);
    let mut faulty = smoke_sim(args.nex, args.steps);
    let native_world = faulty.params.num_ranks();
    faulty.config.fault_plan = Some(FaultPlan::new(62_000).kill(1, args.steps * 3 / 5));
    let mut campaign = Campaign::new(CampaignConfig {
        workers: 1,
        checkpoint_root: Some(ckpt.clone()),
        ..CampaignConfig::default()
    });
    campaign.submit(Job::new("elastic_smoke", faulty).distributed());
    let result = campaign.finish();
    let report = &result.report;
    println!("{}", report.render_text());

    let outcome = &result.outcomes[0];
    if !result.all_ok() {
        failures.push(format!(
            "job failed: {}",
            outcome.result.as_ref().err().cloned().unwrap_or_default()
        ));
    }
    if outcome.attempts < 2 {
        failures.push("injected kill never fired (no retry recorded)".into());
    }
    if report.shrunk_jobs != 1 {
        failures.push(format!(
            "expected 1 shrunken job, report says {}",
            report.shrunk_jobs
        ));
    }
    match outcome.telemetry.final_world {
        Some(w) if w < native_world => {
            println!("elastic: world shrank {native_world} -> {w} and completed");
        }
        other => failures.push(format!(
            "expected a shrunken final world below {native_world}, got {other:?}"
        )),
    }

    // --- perf ledger: the degradation is a first-class run-over-run
    // metric, not just a line in the report.
    if let Ok(got) = outcome.result.as_ref() {
        let mut record = ledger_record("elastic_smoke", got, "loopback");
        record
            .extra
            .insert("native_world".into(), outcome.telemetry.native_world as f64);
        record.extra.insert(
            "final_world".into(),
            outcome
                .telemetry
                .final_world
                .unwrap_or(outcome.telemetry.native_world) as f64,
        );
        record.extra.insert(
            "world_shrinks".into(),
            outcome.telemetry.shrink_path.len() as f64,
        );
        match append_ledger(&ledger_dir(), "elastic_smoke", &record) {
            Ok(path) => println!("ledger   : {}", path.display()),
            Err(e) => failures.push(format!("ledger append failed: {e}")),
        }
    }

    // --- seismogram differential vs the clean oracle.
    let mut diff_rows = Vec::new();
    let mut max_rel = 0.0f64;
    if let Ok(got) = outcome.result.as_ref() {
        if got.seismograms.len() != clean.seismograms.len() {
            failures.push("station count diverged from the oracle".into());
        }
        for (e, g) in clean.seismograms.iter().zip(&got.seismograms) {
            let scale = e
                .data
                .iter()
                .flat_map(|v| v.iter())
                .fold(0.0f32, |m, &x| m.max(x.abs()))
                .max(1e-20);
            let mut max_abs = 0.0f32;
            for (ve, vg) in e.data.iter().zip(&g.data) {
                for c in 0..3 {
                    max_abs = max_abs.max((ve[c] - vg[c]).abs());
                }
            }
            let rel = f64::from(max_abs) / f64::from(scale);
            max_rel = max_rel.max(rel);
            diff_rows.push(format!(
                "    {{\"station\": \"{}\", \"max_abs_diff\": {:e}, \"scale\": {:e}, \
                 \"max_rel_diff\": {rel:e}}}",
                e.station, max_abs, scale
            ));
            if rel > 2e-3 {
                failures.push(format!(
                    "station {}: relative diff {rel:.2e} above the 2e-3 envelope",
                    e.station
                ));
            }
        }
        println!("seismogram diff vs oracle: max relative {max_rel:.2e} (gate 2e-3)");
    }
    let diff_json = format!(
        "{{\n  \"tolerance_rel\": 2e-3,\n  \"max_rel_diff\": {max_rel:e},\n  \
         \"stations\": [\n{}\n  ]\n}}\n",
        diff_rows.join(",\n")
    );

    // --- container schema: open the newest merged checkpoint container
    // actually written by the run and publish its layout.
    let job_dir = ckpt.join("elastic_smoke");
    let mut containers: Vec<_> = std::fs::read_dir(&job_dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "sfcc"))
                .collect()
        })
        .unwrap_or_default();
    containers.sort();
    let schema_json = match containers.last() {
        None => {
            failures.push("no merged checkpoint container on disk".into());
            String::new()
        }
        Some(path) => match ContainerReader::open(path) {
            Err(e) => {
                failures.push(format!("container does not parse: {e}"));
                String::new()
            }
            Ok(r) => {
                if r.kind() != specfem_io::checkpoint::CHECKPOINT_KIND {
                    failures.push(format!("unexpected container kind {:?}", r.kind()));
                }
                if r.payload_version() != specfem_io::checkpoint::CHECKPOINT_PAYLOAD_VERSION {
                    failures.push(format!(
                        "unexpected payload version {}",
                        r.payload_version()
                    ));
                }
                let chunks: Vec<String> = r
                    .chunk_names()
                    .iter()
                    .map(|n| {
                        format!(
                            "    {{\"name\": \"{n}\", \"bytes\": {}}}",
                            r.chunk_len(n).unwrap_or(0)
                        )
                    })
                    .collect();
                for required in ["meta", "displ", "veloc", "accel", "records"] {
                    if r.chunk_len(required).is_none() {
                        failures.push(format!("container misses required chunk '{required}'"));
                    }
                }
                println!(
                    "container: {} ({} chunks, per-chunk CRC-32)",
                    path.file_name().unwrap().to_string_lossy(),
                    chunks.len()
                );
                format!(
                    "{{\n  \"magic\": \"SFCN\",\n  \"schema_version\": {},\n  \
                     \"kind\": \"CKPT\",\n  \"payload_version\": {},\n  \
                     \"file\": \"{}\",\n  \"chunks\": [\n{}\n  ]\n}}\n",
                    specfem_io::container::CONTAINER_SCHEMA_VERSION,
                    specfem_io::checkpoint::CHECKPOINT_PAYLOAD_VERSION,
                    path.file_name().unwrap().to_string_lossy(),
                    chunks.join(",\n")
                )
            }
        },
    };

    // --- artifacts; every JSON must parse (vendored serde_json check).
    let writes = [
        ("campaign_report.json", report.to_json()),
        ("seismogram_diff.json", diff_json),
        ("container_schema.json", schema_json),
    ];
    for (name, body) in &writes {
        if body.is_empty() {
            continue;
        }
        if let Err(e) = serde_json::from_str(body) {
            failures.push(format!("{name} is not valid JSON: {e}"));
        }
        std::fs::write(out.join(name), body).expect("write artifact");
        println!("artifact : {}", out.join(name).display());
    }
    let _ = std::fs::remove_dir_all(&ckpt);

    if failures.is_empty() {
        println!("PASS: elastic recovery smoke checks hold");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
