//! Run-over-run performance gate: diff the newest records in a harness
//! ledger (`BENCH_<harness>.json`, appended by `ipm_profile` and
//! friends) against a committed baseline ledger and exit non-zero on
//! regression.
//!
//! Deterministic counters (bytes, messages, collectives, element·steps)
//! are compared two-sided on every machine — they must not drift at all
//! beyond the tolerance. Wall seconds are compared one-sided (slower =
//! regression) only when the baseline was measured on a comparable
//! machine, so a committed baseline never fails CI just because the
//! runner is slower hardware.
//!
//! ```text
//! perf_ledger [--ledger PATH] [--baseline PATH] [--max-regress-pct P]
//!             [--inflate FACTOR]
//! ```
//!
//! `--inflate` multiplies the current records' wall seconds and forces
//! machine comparability before diffing — the self-test hook CI uses to
//! assert that a synthetic 2× slowdown actually trips the gate.

use specfem_core::obs::ledger::{self, LedgerRecord};

fn latest_per_harness(records: &[LedgerRecord]) -> Vec<&LedgerRecord> {
    let mut latest: Vec<&LedgerRecord> = Vec::new();
    for r in records {
        match latest.iter_mut().find(|l| l.harness == r.harness) {
            Some(slot) => *slot = r, // file order = append order; last wins
            None => latest.push(r),
        }
    }
    latest
}

fn main() {
    let mut ledger_path = specfem_bench::ledger_dir().join("BENCH_ipm_profile.json");
    let mut baseline_path =
        std::path::PathBuf::from("crates/bench/baselines/BENCH_ipm_profile.json");
    let mut max_regress_pct = 10.0f64;
    let mut inflate = 1.0f64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--ledger" => ledger_path = value("--ledger").into(),
            "--baseline" => baseline_path = value("--baseline").into(),
            "--max-regress-pct" => {
                max_regress_pct = value("--max-regress-pct")
                    .parse()
                    .expect("--max-regress-pct must be a number")
            }
            "--inflate" => {
                inflate = value("--inflate")
                    .parse()
                    .expect("--inflate must be a number")
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let baseline = ledger::load(&baseline_path).unwrap_or_else(|e| {
        eprintln!("cannot load baseline {}: {e}", baseline_path.display());
        std::process::exit(2);
    });
    let current = ledger::load(&ledger_path).unwrap_or_else(|e| {
        eprintln!("cannot load ledger {}: {e}", ledger_path.display());
        std::process::exit(2);
    });
    if baseline.is_empty() {
        eprintln!("baseline {} has no records", baseline_path.display());
        std::process::exit(2);
    }
    if current.is_empty() {
        eprintln!(
            "ledger {} has no records — run the harness first (e.g. `cargo run --release --bin ipm_profile`)",
            ledger_path.display()
        );
        std::process::exit(2);
    }

    println!(
        "== perf ledger gate: {} vs baseline {} (tolerance ±{max_regress_pct}%{}) ==",
        ledger_path.display(),
        baseline_path.display(),
        if inflate != 1.0 {
            format!(", synthetic wall ×{inflate}")
        } else {
            String::new()
        }
    );

    let mut failed = false;
    for base in latest_per_harness(&baseline) {
        let Some(cur) = latest_per_harness(&current)
            .into_iter()
            .find(|c| c.harness == base.harness)
        else {
            eprintln!("harness {}: no current record", base.harness);
            failed = true;
            continue;
        };
        let mut cur = cur.clone();
        if inflate != 1.0 {
            // Self-test mode: force the wall comparison on and slow the
            // current record down synthetically.
            cur.wall_s *= inflate;
            cur.machine = base.machine.clone();
        }
        let d = ledger::diff(base, &cur, max_regress_pct);
        println!("-- {} --", base.harness);
        for line in &d.lines {
            println!("   {line}");
        }
        if !d.ok() {
            failed = true;
            for r in &d.regressions {
                eprintln!("   REGRESSION: {r}");
            }
        }
    }

    if failed {
        eprintln!("perf ledger gate FAILED");
        std::process::exit(1);
    }
    println!("perf ledger gate passed");
}
