//! §4.2 ablation: multilevel Cuthill-McKee element sorting gains at most
//! ~5 % over the already point-renumbered mesh — and a cache-hostile
//! random order shows what the renumbering work protects against.

use specfem_bench::{prem_mesh_with, timed};
use specfem_mesh::ElementOrder;
use specfem_solver::{run_serial, SolverConfig};

fn main() {
    println!("== Element ordering ablation (paper §4.2: ≤5 % from sorting) ==");
    let nsteps = 50;
    let orders = [
        ("random (hostile)", ElementOrder::Random(7)),
        ("natural", ElementOrder::Natural),
        ("cuthill-mckee", ElementOrder::CuthillMcKee),
        (
            "multilevel CM",
            ElementOrder::MultilevelCuthillMcKee { block: 64 },
        ),
    ];
    let mut baseline = None;
    println!("{:>18} {:>12} {:>12}", "order", "time (s)", "vs natural");
    // Build+run twice per order; report the faster run to damp noise.
    for (name, order) in orders {
        let mesh = prem_mesh_with(8, 1, |p| p.element_order = order);
        let config = SolverConfig {
            nsteps,
            ..SolverConfig::default()
        };
        let (_, t1) = timed(|| run_serial(&mesh, &config, &[]));
        let (_, t2) = timed(|| run_serial(&mesh, &config, &[]));
        let t = t1.min(t2);
        if name == "natural" {
            baseline = Some(t);
        }
        let rel = baseline
            .map(|b| format!("{:+.1} %", 100.0 * (t - b) / b))
            .unwrap_or_else(|| "—".into());
        println!("{name:>18} {t:>12.3} {rel:>12}");
    }
    println!();
    println!("paper's finding: sorting gains ≤5 % because point renumbering already");
    println!("left very few L2 misses; the SEM's heavy per-element arithmetic hides");
    println!("the remaining traffic. Expect natural ≈ CM ≈ multilevel here too.");
}
