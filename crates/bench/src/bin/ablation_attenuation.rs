//! §6 ablation: "attenuation … resulted in a 1.8× increase in execution
//! time but only an almost imperceptible drop in Tflops".

use specfem_bench::{prem_mesh, timed};
use specfem_solver::{run_serial, SolverConfig};

fn main() {
    println!("== Attenuation on/off ablation (paper §6: 1.8× time, ≈same Tflops) ==");
    let mesh = prem_mesh(8, 1);
    let nsteps = 60;
    let run = |attenuation: bool| {
        let config = SolverConfig {
            nsteps,
            attenuation,
            ..SolverConfig::default()
        };
        timed(|| run_serial(&mesh, &config, &[]))
    };

    // Warm up caches/allocator once.
    let _ = run(false);
    let (elastic, t_off) = run(false);
    let (anelastic, t_on) = run(true);

    let rate_off = elastic.flops as f64 / t_off / 1e9;
    let rate_on = anelastic.flops as f64 / t_on / 1e9;
    println!(
        "{:>14} {:>12} {:>14} {:>12}",
        "mode", "time (s)", "Gflop", "Gflop/s"
    );
    println!(
        "{:>14} {:>12.3} {:>14.2} {:>12.2}",
        "elastic",
        t_off,
        elastic.flops as f64 / 1e9,
        rate_off
    );
    println!(
        "{:>14} {:>12.3} {:>14.2} {:>12.2}",
        "attenuation",
        t_on,
        anelastic.flops as f64 / 1e9,
        rate_on
    );
    println!();
    println!("runtime ratio: {:.2}× (paper: 1.8×)", t_on / t_off);
    println!(
        "flop-rate change: {:+.1} % (paper: 'almost imperceptible drop')",
        100.0 * (rate_on - rate_off) / rate_off
    );
}
