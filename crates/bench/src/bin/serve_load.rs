//! E-SERVE: load-test the `specfem-serve` daemon (EXPERIMENTS.md).
//!
//! Starts an in-process daemon on a loopback port, then drives it over
//! real TCP: first a cold pass that solves each distinct request once,
//! then a concurrent mixed pass with a configurable warm/cold ratio.
//! Reports p50/p99 latency per temperature, throughput, and the cache
//! hit rate, and appends the run to `BENCH_serve.json` — the counters
//! (`element_steps`, `collectives` = solves) are deterministic for
//! fixed flags, so the `perf_ledger` gate catches a broken cache (every
//! repeat re-solving inflates both).
//!
//! ```text
//! serve_load [--requests N] [--concurrency C] [--warm-pct P]
//!            [--keys K] [--resolution NEX] [--steps S] [--relax]
//!            [--event-mix] [--batch-lanes K] [--batch-window-ms MS]
//! ```
//!
//! Without `--relax`, the run asserts the tentpole latency claim: warm
//! p50 at least 10× below cold p50.
//!
//! `--event-mix` cycles the catalogue event across requests while
//! keeping the mesh and timeloop shape fixed — the duplicate-mesh /
//! different-source mix that `--batch-lanes K` (with a fuse window) can
//! coalesce into multi-event solves, so E-BATCH can measure batched
//! serving against the single-lane baseline. Batched runs drop the
//! request deadline: a deadline becomes the solver watchdog, which
//! forces the single-lane path.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde_json::Value;
use specfem_bench::{append_ledger, ledger_dir, row};
use specfem_core::obs::ledger::{LedgerMachine, LedgerRecord, LEDGER_SCHEMA_VERSION};
use specfem_serve::{client, serve, ServeConfig};

struct Flags {
    requests: usize,
    concurrency: usize,
    warm_pct: usize,
    keys: usize,
    resolution: usize,
    steps: usize,
    relax: bool,
    event_mix: bool,
    batch_lanes: usize,
    batch_window_ms: u64,
}

impl Flags {
    fn parse() -> Self {
        let mut f = Flags {
            requests: 240,
            concurrency: 16,
            warm_pct: 75,
            keys: 4,
            resolution: 4,
            steps: 10,
            relax: false,
            event_mix: false,
            batch_lanes: 1,
            batch_window_ms: 0,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut num = |name: &str| -> usize {
                args.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("{name} requires a number"))
            };
            match arg.as_str() {
                "--requests" => f.requests = num("--requests"),
                "--concurrency" => f.concurrency = num("--concurrency").max(1),
                "--warm-pct" => f.warm_pct = num("--warm-pct").min(100),
                "--keys" => f.keys = num("--keys").max(1),
                "--resolution" => f.resolution = num("--resolution"),
                "--steps" => f.steps = num("--steps"),
                "--relax" => f.relax = true,
                "--event-mix" => f.event_mix = true,
                "--batch-lanes" => f.batch_lanes = num("--batch-lanes").max(1),
                "--batch-window-ms" => f.batch_window_ms = num("--batch-window-ms") as u64,
                other => panic!("unknown flag: {other}"),
            }
        }
        f
    }
}

/// The duplicate-mesh / different-source rotation for `--event-mix`.
const MIX_EVENTS: [&str; 3] = ["argentina_deep", "sumatra_thrust", "denali_strike_slip"];

/// Request body for key index `k`: same mesh and timeloop everywhere
/// (so `element_steps` per solve is constant), distinct station sets to
/// make distinct result keys. With `event_mix`, the catalogue event also
/// rotates — distinct sources on one mesh, the mix a batched daemon can
/// fuse.
fn body(resolution: usize, steps: usize, k: usize, event_mix: bool) -> String {
    if event_mix {
        format!(
            "{{\"resolution\":{resolution},\"steps\":{steps},\"stations\":{},\"event\":\"{}\"}}",
            2 + k,
            MIX_EVENTS[k % MIX_EVENTS.len()]
        )
    } else {
        format!(
            "{{\"resolution\":{resolution},\"steps\":{steps},\"stations\":{}}}",
            2 + k
        )
    }
}

struct Sample {
    wall_us: u64,
    warm: bool,
    element_steps: u64,
}

fn fire(addr: SocketAddr, body: &str) -> Sample {
    let t0 = Instant::now();
    let (status, reply) = client::post(addr, "/simulate", body).expect("request failed");
    let wall_us = t0.elapsed().as_micros() as u64;
    assert_eq!(status, 200, "unexpected status {status}: {reply}");
    let v: Value = serde_json::from_str(&reply).expect("response is JSON");
    let cache = v.get("cache").unwrap().as_str().unwrap();
    Sample {
        wall_us,
        warm: cache != "miss",
        element_steps: v.get("element_steps").unwrap().as_u64().unwrap(),
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn main() {
    let flags = Flags::parse();
    let data_dir = std::env::temp_dir().join("specfem_serve_load");
    let _ = std::fs::remove_dir_all(&data_dir);

    let daemon = serve(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        result_cache_bytes: 64 << 20,
        // A request deadline becomes the solver watchdog, which keeps a
        // job on the single-lane path — batched runs must not set one.
        request_deadline: if flags.batch_lanes > 1 {
            None
        } else {
            Some(Duration::from_secs(600))
        },
        workers: 2,
        data_dir: data_dir.clone(),
        ledger_dir: None,
        ledger_batch: 32,
        batch_max_lanes: flags.batch_lanes,
        batch_window_ms: flags.batch_window_ms,
    })
    .expect("daemon starts");
    let addr = daemon.addr();
    println!("daemon on {addr}");

    // Cold pass: each key solved exactly once, sequentially, so the
    // cold latencies are uncontended.
    let mut samples: Vec<Sample> = Vec::with_capacity(flags.keys + flags.requests);
    for k in 0..flags.keys {
        let s = fire(
            addr,
            &body(flags.resolution, flags.steps, k, flags.event_mix),
        );
        assert!(!s.warm, "first request for key {k} must be a miss");
        samples.push(s);
    }

    // Mixed pass: `concurrency` threads race through `requests`
    // requests; index i is warm (one of the pre-solved keys) when
    // `i % 100 < warm_pct`, else a brand-new key — deterministic, so
    // the solve count is too.
    let next = Arc::new(AtomicUsize::new(0));
    let collected: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
    let t_mixed = Instant::now();
    let threads: Vec<_> = (0..flags.concurrency)
        .map(|_| {
            let next = Arc::clone(&next);
            let collected = Arc::clone(&collected);
            let (keys, warm_pct, requests) = (flags.keys, flags.warm_pct, flags.requests);
            let (resolution, steps) = (flags.resolution, flags.steps);
            let event_mix = flags.event_mix;
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= requests {
                    break;
                }
                let key = if i % 100 < warm_pct {
                    i % keys
                } else {
                    keys + i
                };
                let s = fire(addr, &body(resolution, steps, key, event_mix));
                collected.lock().unwrap().push(s);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let mixed_s = t_mixed.elapsed().as_secs_f64();
    samples.extend(collected.lock().unwrap().drain(..));

    let mut cold_us: Vec<u64> = samples
        .iter()
        .filter(|s| !s.warm)
        .map(|s| s.wall_us)
        .collect();
    let mut warm_us: Vec<u64> = samples
        .iter()
        .filter(|s| s.warm)
        .map(|s| s.wall_us)
        .collect();
    cold_us.sort_unstable();
    warm_us.sort_unstable();
    let element_steps: u64 = samples
        .iter()
        .filter(|s| !s.warm)
        .map(|s| s.element_steps)
        .sum();
    let total = samples.len();
    let hit_rate = warm_us.len() as f64 / total as f64;
    let p50_cold = percentile(&cold_us, 0.50);
    let p99_cold = percentile(&cold_us, 0.99);
    let p50_warm = percentile(&warm_us, 0.50);
    let p99_warm = percentile(&warm_us, 0.99);
    let throughput = flags.requests as f64 / mixed_s.max(1e-9);

    println!(
        "{}",
        row(&["".into(), "p50".into(), "p99".into(), "n".into()])
    );
    println!(
        "{}",
        row(&[
            "cold".into(),
            format!("{:.3} ms", p50_cold as f64 / 1e3),
            format!("{:.3} ms", p99_cold as f64 / 1e3),
            cold_us.len().to_string(),
        ])
    );
    println!(
        "{}",
        row(&[
            "warm".into(),
            format!("{:.3} ms", p50_warm as f64 / 1e3),
            format!("{:.3} ms", p99_warm as f64 / 1e3),
            warm_us.len().to_string(),
        ])
    );
    println!(
        "hit rate {:.1}%  throughput {throughput:.1} req/s  solves {}",
        hit_rate * 100.0,
        cold_us.len()
    );

    daemon.shutdown();

    let mut extra = std::collections::BTreeMap::new();
    extra.insert("p50_cold_us".to_string(), p50_cold as f64);
    extra.insert("p99_cold_us".to_string(), p99_cold as f64);
    extra.insert("p50_warm_us".to_string(), p50_warm as f64);
    extra.insert("p99_warm_us".to_string(), p99_warm as f64);
    extra.insert("hit_rate".to_string(), hit_rate);
    extra.insert("throughput_rps".to_string(), throughput);
    extra.insert("requests".to_string(), total as f64);
    extra.insert("cold_solves".to_string(), cold_us.len() as f64);
    extra.insert("batch_lanes".to_string(), flags.batch_lanes as f64);
    extra.insert(
        "event_mix".to_string(),
        if flags.event_mix { 1.0 } else { 0.0 },
    );
    let record = LedgerRecord {
        schema_version: LEDGER_SCHEMA_VERSION,
        harness: "serve".to_string(),
        ranks: 2,
        wall_s: mixed_s,
        comm_fraction: 0.0,
        imbalance: 0.0,
        bytes_sent: 0,
        bytes_received: 0,
        messages: 0,
        collectives: cold_us.len() as u64,
        element_steps,
        phases: Vec::new(),
        machine: LedgerMachine::detect("none"),
        extra,
    };
    let dir: PathBuf = ledger_dir();
    let path = append_ledger(&dir, "serve", &record).expect("ledger append");
    println!("ledger {} appended", path.display());

    if !flags.relax {
        assert!(
            p50_warm.saturating_mul(10) <= p50_cold,
            "warm p50 ({p50_warm} us) is not 10x below cold p50 ({p50_cold} us)"
        );
        println!(
            "warm p50 is {:.0}x below cold p50",
            p50_cold as f64 / p50_warm.max(1) as f64
        );
    }
}
