//! E-LTS ablation: clustered local time stepping against the
//! global-min-dt reference on the layered NEX-10 PREM mesh.
//!
//! Three claims are checked in one pass (EXPERIMENTS.md E-LTS):
//! 1. the rate-1 clustered path is **bit-identical** (0 ULP) to the plain
//!    timeloop — the differential oracle the whole scheme rests on;
//! 2. the multi-rate path stays within the stated tolerance (5 % of each
//!    station's peak amplitude) of the global-min-dt reference;
//! 3. the measured multi-rate speedup clears the `--min-speedup` floor,
//!    and the theoretical-vs-achieved gap is explained by the
//!    `specfem_perf::LtsSpeedupModel` fixed-cost calibration.
//!
//! Writes a JSON artifact (default `OUTPUT_FILES/ablation_lts.json`,
//! override with `--out`) and appends a `BENCH_lts.json` ledger record
//! with the deterministic cluster census for the `perf_ledger` gate.

use specfem_bench::{append_ledger, ledger_dir, prem_mesh, timed};
use specfem_core::obs::ledger::{LedgerMachine, LedgerRecord, LEDGER_SCHEMA_VERSION};
use specfem_perf::LtsSpeedupModel;
use specfem_solver::{run_serial, RankResult, SolverConfig};

/// Largest ULP distance over all paired seismogram samples.
fn max_ulp_diff(a: &RankResult, b: &RankResult) -> u32 {
    let mut worst = 0u32;
    for (sa, sb) in a.seismograms.iter().zip(&b.seismograms) {
        assert_eq!(sa.station, sb.station);
        assert_eq!(sa.data.len(), sb.data.len());
        for (va, vb) in sa.data.iter().zip(&sb.data) {
            for c in 0..3 {
                let d = (va[c].to_bits() as i64 - vb[c].to_bits() as i64).unsigned_abs() as u32;
                worst = worst.max(d);
            }
        }
    }
    worst
}

/// Worst deviation across stations, relative to each station's peak.
fn worst_relative_deviation(reference: &RankResult, lts: &RankResult) -> f64 {
    let mut worst = 0.0f64;
    for (sa, sb) in reference.seismograms.iter().zip(&lts.seismograms) {
        let scale = sa
            .data
            .iter()
            .flat_map(|v| v.iter())
            .fold(0.0f32, |m, &x| m.max(x.abs()))
            .max(1e-20) as f64;
        for (va, vb) in sa.data.iter().zip(&sb.data) {
            for c in 0..3 {
                worst = worst.max((va[c] as f64 - vb[c] as f64).abs() / scale);
            }
        }
    }
    worst
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "OUTPUT_FILES/ablation_lts.json".into());
    let cap: usize = flag("--cap").map_or(8, |v| v.parse().expect("--cap"));
    let nsteps: usize = flag("--steps").map_or(40, |v| v.parse().expect("--steps"));
    let min_speedup: f64 = flag("--min-speedup").map_or(1.2, |v| v.parse().expect("--min-speedup"));

    println!("== E-LTS: clustered local time stepping ablation ==");
    let mesh = prem_mesh(10, 1);
    let stations = specfem_mesh::stations::global_network(4);
    let config = SolverConfig {
        nsteps,
        ..SolverConfig::default()
    };

    // 1. Rate-1 differential oracle: the clustered machinery with every
    // element at rate 1 must reproduce the plain timeloop bit for bit.
    let oracle_cfg = SolverConfig {
        nsteps: 10,
        ..config.clone()
    };
    let plain10 = run_serial(&mesh, &oracle_cfg, &stations);
    let rate1 = run_serial(
        &mesh,
        &SolverConfig {
            lts_all_rate_one: true,
            ..oracle_cfg
        },
        &stations,
    );
    let ulp_rate1 = max_ulp_diff(&plain10, &rate1);
    assert_eq!(
        ulp_rate1, 0,
        "rate-1 LTS must be bit-identical to the plain timeloop"
    );
    println!("rate-1 oracle: 0 ULP over {} steps", 10);

    // 2 & 3. Timed multi-rate vs global-min-dt reference. Two runs per
    // mode, keep the faster, to damp scheduler noise.
    let (reference, tp1) = timed(|| run_serial(&mesh, &config, &stations));
    let (_, tp2) = timed(|| run_serial(&mesh, &config, &stations));
    let lts_cfg = SolverConfig {
        lts_max_rate: cap,
        ..config.clone()
    };
    let (lts, tl1) = timed(|| run_serial(&mesh, &lts_cfg, &stations));
    let (_, tl2) = timed(|| run_serial(&mesh, &lts_cfg, &stations));
    let t_plain = tp1.min(tp2);
    let t_lts = tl1.min(tl2);
    let measured = t_plain / t_lts;

    let worst_rel = worst_relative_deviation(&reference, &lts);
    assert!(
        worst_rel <= 0.05,
        "multi-rate deviation {worst_rel:.4} exceeds the stated 5%-of-peak tolerance"
    );

    let summary = lts.lts.as_ref().expect("multi-rate run reports LTS");
    let model = LtsSpeedupModel::new(summary.levels.clone());
    let theoretical = model.theoretical_speedup();
    let efficiency = model.efficiency(measured);
    let fixed_fraction = model.calibrate_fixed_fraction(measured);

    println!(
        "{:>16} {:>10} {:>12} {:>12}",
        "path", "time (s)", "speedup", "worst dev"
    );
    println!(
        "{:>16} {t_plain:>10.3} {:>12} {:>12}",
        "global-min-dt", "—", "—"
    );
    println!(
        "{:>16} {t_lts:>10.3} {measured:>11.3}x {worst_rel:>11.2e}",
        format!("lts cap {cap}")
    );
    println!(
        "cluster census: {:?} (max rate {}, {} of {} element·steps saved)",
        summary.levels, summary.max_rate, summary.element_steps_saved, summary.element_steps_total
    );
    println!(
        "theoretical {theoretical:.3}x, achieved {measured:.3}x (efficiency {:.1} %){}",
        100.0 * efficiency,
        match fixed_fraction {
            Some(f) => format!(
                " — gap explained by a fixed per-step cost {:.0} % of kernel",
                100.0 * f
            ),
            None => String::new(),
        }
    );
    assert!(
        measured >= min_speedup,
        "measured LTS speedup {measured:.3}x below the {min_speedup:.2}x floor"
    );

    // JSON artifact, hand-rendered (vendored serde_json is parse-only)
    // and parse-validated before writing.
    let census_json: Vec<String> = summary
        .levels
        .iter()
        .map(|&(rate, n)| format!(r#"{{ "rate": {rate}, "elements": {n} }}"#))
        .collect();
    let artifact = format!(
        r#"{{
  "bench": "ablation_lts",
  "config": {{ "nex": 10, "ranks": 1, "nsteps": {nsteps}, "lts_max_rate": {cap} }},
  "oracle": {{ "rate1_max_ulp": {ulp_rate1}, "tolerance_rel_peak": 0.05 }},
  "measured": {{
    "plain_s": {t_plain},
    "lts_s": {t_lts},
    "speedup": {measured},
    "worst_relative_deviation": {worst_rel},
    "min_speedup_floor": {min_speedup}
  }},
  "model": {{
    "theoretical_speedup": {theoretical},
    "efficiency": {efficiency},
    "fixed_cost_fraction": {fixed},
    "element_steps_saved": {saved},
    "element_steps_total": {total},
    "census": [{census}]
  }}
}}
"#,
        fixed = fixed_fraction.map_or("null".to_string(), |f| format!("{f}")),
        saved = summary.element_steps_saved,
        total = summary.element_steps_total,
        census = census_json.join(", "),
    );
    serde_json::from_str(&artifact).expect("artifact JSON must parse");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create artifact directory");
    }
    std::fs::write(&out_path, artifact).expect("write JSON artifact");
    println!("artifact: {out_path}");

    // Ledger record for the perf_ledger gate. `element_steps` is the
    // LTS-effective count (total − saved): deterministic for a fixed mesh
    // and cap, so any accidental change to the cluster assignment trips
    // the two-sided counter gate.
    let mut extra = std::collections::BTreeMap::new();
    extra.insert("lts_max_rate".to_string(), cap as f64);
    extra.insert("theoretical_speedup".to_string(), theoretical);
    extra.insert("measured_speedup".to_string(), measured);
    extra.insert("efficiency".to_string(), efficiency);
    extra.insert("worst_relative_deviation".to_string(), worst_rel);
    extra.insert("rate1_max_ulp".to_string(), ulp_rate1 as f64);
    let record = LedgerRecord {
        schema_version: LEDGER_SCHEMA_VERSION,
        harness: "lts".to_string(),
        ranks: 1,
        wall_s: t_lts,
        comm_fraction: 0.0,
        imbalance: 0.0,
        bytes_sent: 0,
        bytes_received: 0,
        messages: 0,
        collectives: 0,
        element_steps: summary.element_steps_total - summary.element_steps_saved,
        phases: Vec::new(),
        machine: LedgerMachine::detect("none"),
        extra,
    };
    let dir = ledger_dir();
    match append_ledger(&dir, "lts", &record) {
        Ok(path) => println!("ledger {} appended", path.display()),
        Err(e) => {
            eprintln!("FAIL: ledger append failed: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "PASS: rate-1 bit-identical, multi-rate within tolerance, {measured:.2}x >= {min_speedup:.2}x"
    );
}
