//! Figure 6: total MPI time for all cores vs processor count, for two
//! resolutions — measured on the simulated-MPI substrate (deterministic
//! modeled network time, charged against the XT4 profile like the paper's
//! Franklin runs), then fitted.

use specfem_bench::prem_mesh_cached;
use specfem_campaign::MeshCache;
use specfem_comm::NetworkProfile;
use specfem_perf::{CommTimeModel, Sample};
use specfem_solver::{run_distributed, SolverConfig};

fn measure(cache: &MeshCache, nex: usize, nproc: usize, nsteps: usize) -> (usize, f64, f64) {
    // One geometry build per resolution: the rank-count sweep reuses it
    // through the campaign cache (derived hits re-stamp the
    // decomposition knobs instead of re-meshing).
    let mesh = prem_mesh_cached(cache, nex, nproc, |_| {});
    let config = SolverConfig {
        nsteps,
        ..SolverConfig::default()
    };
    let results = run_distributed(&mesh, &config, &[], NetworkProfile::xt4_seastar2());
    let ranks = results.len();
    let total_modeled: f64 = results.iter().map(|r| r.comm.modeled_time_s).sum();
    let total_wall: f64 = results.iter().map(|r| r.comm.wall_time_s).sum();
    (ranks, total_modeled, total_wall)
}

fn main() {
    println!("== Figure 6: total communication time (all cores) vs processor count ==");
    let nsteps = 40;
    let cache = MeshCache::new(0, None);
    for (label, nex, procs) in [
        ("low res (NEX 8)", 8usize, vec![1usize, 2, 4]),
        ("high res (NEX 12)", 12, vec![1, 2, 3]),
    ] {
        println!();
        println!("--- {label} ---");
        println!(
            "{:>6} {:>18} {:>16}",
            "ranks", "modeled total (s)", "wall total (s)"
        );
        let mut samples = Vec::new();
        for nproc in procs {
            let (ranks, modeled, wall) = measure(&cache, nex, nproc, nsteps);
            println!("{ranks:>6} {modeled:>18.4} {wall:>16.4}");
            if ranks > 1 {
                samples.push(Sample {
                    x: ranks as f64,
                    y: modeled,
                });
            }
        }
        let model = CommTimeModel::fit(nex, &samples);
        println!(
            "fit: t_total(P) = c·P^{:.2}  →  per-core time ∝ P^{:.2}",
            model.exponent(),
            model.exponent() - 1.0
        );
        println!(
            "paper's observations: total grows with P{}; per-core time falls with P{}",
            if model.exponent() > 0.0 {
                " ✓"
            } else {
                " ✗"
            },
            if model.exponent() < 1.0 {
                " ✓"
            } else {
                " ✗"
            }
        );
        for p in [12_000usize, 62_000] {
            println!(
                "  extrapolated to {p} cores: total {:.3e} s, per core {:.1} s",
                model.predict_total(p),
                model.predict_per_core(p)
            );
        }
    }
    let stats = cache.stats();
    println!();
    println!(
        "mesh cache: {} builds, {} derived hits (one geometry per resolution)",
        stats.misses, stats.derived_hits
    );
}
