//! Campaign throughput harness (experiment E-CAMP): run a multi-event
//! catalogue sweep through the campaign runtime and prove that
//! (a) the concurrent, mesh-cached campaign beats a naive serial loop
//! that re-meshes per event by ≥ 2× aggregate throughput,
//! (b) the mesh is built once and shared (cache hits = jobs − 1), and
//! (c) a fault-injected campaign (a seeded `FaultPlan` killing one job
//! mid-run) completes via retry/resume with seismograms bit-identical
//! to an uninjected run.
//!
//! ```text
//! campaign_throughput [--jobs N] [--workers W] [--nex NEX] [--steps S]
//!                     [--out report.json] [--min-speedup X]
//!                     [--batch] [--batch-lanes K] [--batch-window-ms MS]
//!                     [--min-batch-speedup X]
//! ```
//!
//! Exits nonzero when any acceptance check fails, so CI can run it as a
//! smoke test. `--min-speedup 0` disables the speedup gate (loaded CI
//! machines); the cache and fault-tolerance checks always run.
//!
//! The default sweep (NEX 10, few steps) sits in the mesh-dominated
//! regime — one mesh build costs more than one event's solve — so the
//! ≥ 2× gate holds from cache amortization alone even on a single-core
//! machine; extra workers stack concurrency speedup on top.
//!
//! `--batch` switches to the E-BATCH experiment: the same single-mesh
//! event sweep runs once on the single-lane path and once with
//! `--batch-lanes` events fused per solve, demands the fused results
//! stay bit-identical per event, gates the fused/unfused throughput
//! ratio, and appends the run to `BENCH_batch.json` for the
//! `perf_ledger` gate.

use std::time::Duration;

use specfem_bench::{append_ledger, ledger_dir, timed};
use specfem_campaign::{Campaign, CampaignConfig, CampaignResult, Job};
use specfem_core::comm::FaultPlan;
use specfem_core::model::builtin_events;
use specfem_core::obs::ledger::{LedgerMachine, LedgerRecord, LEDGER_SCHEMA_VERSION};
use specfem_core::{Simulation, SourceSpec, SourceTimeFunction, StfKind};

struct Args {
    jobs: usize,
    workers: usize,
    nex: usize,
    steps: usize,
    out: String,
    min_speedup: f64,
    batch: bool,
    batch_lanes: usize,
    batch_window_ms: u64,
    min_batch_speedup: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        jobs: 16,
        workers: 0,
        nex: 10,
        steps: 4,
        out: "OUTPUT_FILES/campaign_report.json".into(),
        min_speedup: 2.0,
        batch: false,
        batch_lanes: 16,
        batch_window_ms: 1_000,
        min_batch_speedup: 1.5,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--jobs" => args.jobs = val().parse().expect("--jobs"),
            "--workers" => args.workers = val().parse().expect("--workers"),
            "--nex" => args.nex = val().parse().expect("--nex"),
            "--steps" => args.steps = val().parse().expect("--steps"),
            "--out" => args.out = val(),
            "--min-speedup" => args.min_speedup = val().parse().expect("--min-speedup"),
            "--batch" => args.batch = true,
            "--batch-lanes" => args.batch_lanes = val().parse().expect("--batch-lanes"),
            "--batch-window-ms" => args.batch_window_ms = val().parse().expect("--batch-window-ms"),
            "--min-batch-speedup" => {
                args.min_batch_speedup = val().parse().expect("--min-batch-speedup")
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// The `i`-th catalogue event as a simulation sharing one global mesh.
fn event_sim(nex: usize, steps: usize, i: usize) -> Simulation {
    let events = builtin_events();
    let event = events[i % events.len()].clone();
    Simulation::builder()
        .resolution(nex)
        .steps(steps)
        .stations(4)
        .source(SourceSpec::Cmt {
            event,
            stf: SourceTimeFunction::new(StfKind::Ricker, 250.0),
        })
        .build()
        .expect("valid catalogue simulation")
}

/// Run the single-mesh event sweep through one campaign configuration
/// and return the result with its wall time.
fn run_sweep(args: &Args, cfg: CampaignConfig) -> (CampaignResult, f64) {
    timed(|| {
        let mut campaign = Campaign::new(cfg);
        for i in 0..args.jobs {
            campaign.submit(Job::new(
                format!("event_{i:02}"),
                event_sim(args.nex, args.steps, i),
            ));
        }
        campaign.finish()
    })
}

/// E-BATCH: fused multi-event solves vs the single-lane path on the
/// same sweep — bit-identical per event, faster in aggregate.
fn run_batch_mode(args: &Args) {
    let lanes = args.batch_lanes.max(2);
    println!(
        "== E-BATCH: {} events, NEX {}, {} lanes, {} worker(s) ==",
        args.jobs,
        args.nex,
        lanes,
        args.workers.max(1)
    );
    let mut failures = Vec::new();

    let base_cfg = || CampaignConfig {
        workers: args.workers,
        ..CampaignConfig::default()
    };
    let (unbatched, unbatched_s) = run_sweep(args, base_cfg());
    println!(
        "single-lane   : {unbatched_s:>8.3} s  ({:.3e} element*steps/s)",
        unbatched.report.element_steps_per_s
    );
    let (batched, batched_s) = run_sweep(
        args,
        base_cfg().batching(lanes, Duration::from_millis(args.batch_window_ms)),
    );
    println!(
        "batched       : {batched_s:>8.3} s  ({:.3e} element*steps/s), {} jobs fused",
        batched.report.element_steps_per_s, batched.report.batched_jobs
    );
    let speedup = unbatched_s / batched_s;
    println!("batch speedup : {speedup:>8.2}x");

    if !unbatched.all_ok() || !batched.all_ok() {
        failures.push(format!(
            "job failures: {} unbatched, {} batched",
            unbatched.report.failed_jobs, batched.report.failed_jobs
        ));
    }
    // Every job must actually have taken the fused path (trailing
    // batches smaller than the lane cap still count — only a batch of
    // one falls back to the single-lane path).
    let fusable = if args.jobs % lanes.min(args.jobs) == 1 {
        args.jobs - 1
    } else {
        args.jobs
    };
    if batched.report.batched_jobs < fusable {
        failures.push(format!(
            "only {} of {} jobs ran fused",
            batched.report.batched_jobs, fusable
        ));
    }
    if batched.cache.misses != 1 {
        failures.push(format!(
            "batched sweep built the mesh {} times",
            batched.cache.misses
        ));
    }
    // Differential oracle: lane fan-out must reproduce the single-lane
    // seismograms bit for bit, event by event.
    for u in &unbatched.outcomes {
        let Some(b) = batched.outcomes.iter().find(|b| b.name == u.name) else {
            failures.push(format!("batched sweep lost job {}", u.name));
            continue;
        };
        let (ru, rb) = (u.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        if ru.dt.to_bits() != rb.dt.to_bits() {
            failures.push(format!("{}: dt diverged", u.name));
        }
        for (su, sb) in ru.seismograms.iter().zip(&rb.seismograms) {
            if su.station != sb.station || su.data != sb.data {
                failures.push(format!(
                    "{}: fused seismogram at {} differs from single-lane",
                    u.name, su.station
                ));
                break;
            }
        }
    }
    if args.min_batch_speedup > 0.0 && speedup < args.min_batch_speedup {
        failures.push(format!(
            "batch speedup {speedup:.2}x below the {:.1}x gate",
            args.min_batch_speedup
        ));
    }

    // Ledger record: deterministic counters (element·steps, solves) plus
    // the measured ratio, appended for the perf_ledger gate.
    let element_steps: u64 = batched.outcomes.iter().map(|o| o.element_steps).sum();
    let mut extra = std::collections::BTreeMap::new();
    extra.insert("batch_lanes".to_string(), lanes as f64);
    extra.insert(
        "batched_jobs".to_string(),
        batched.report.batched_jobs as f64,
    );
    extra.insert("speedup_vs_unbatched".to_string(), speedup);
    extra.insert("unbatched_wall_s".to_string(), unbatched_s);
    let record = LedgerRecord {
        schema_version: LEDGER_SCHEMA_VERSION,
        harness: "batch".to_string(),
        ranks: args.workers.max(1),
        wall_s: batched_s,
        comm_fraction: 0.0,
        imbalance: 0.0,
        bytes_sent: 0,
        bytes_received: 0,
        messages: 0,
        collectives: args.jobs as u64,
        element_steps,
        phases: Vec::new(),
        machine: LedgerMachine::detect("none"),
        extra,
    };
    let dir = ledger_dir();
    match append_ledger(&dir, "batch", &record) {
        Ok(path) => println!("ledger {} appended", path.display()),
        Err(e) => failures.push(format!("ledger append failed: {e}")),
    }

    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&args.out, batched.report.to_json()).expect("write JSON report");
    println!("report        : {}", args.out);

    if failures.is_empty() {
        println!("PASS: fused sweep bit-identical and {speedup:.2}x over single-lane");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();
    if args.batch {
        run_batch_mode(&args);
        return;
    }
    println!(
        "== campaign throughput: {} events, NEX {} ==",
        args.jobs, args.nex
    );
    let mut failures = Vec::new();

    // --- serial baseline: the naive per-event loop, re-meshing each time.
    let (baseline_steps, baseline_s) = timed(|| {
        let mut element_steps = 0u64;
        for i in 0..args.jobs {
            let sim = event_sim(args.nex, args.steps, i);
            let result = sim.run_serial();
            element_steps +=
                result.ranks.iter().map(|r| r.nspec as u64).sum::<u64>() * sim.config.nsteps as u64;
        }
        element_steps
    });
    println!(
        "serial loop   : {baseline_s:>8.3} s  ({:.3e} element*steps/s)",
        baseline_steps as f64 / baseline_s
    );

    // --- the campaign: same jobs, bounded worker pool, shared mesh.
    let mut campaign = Campaign::new(CampaignConfig {
        workers: args.workers,
        ..CampaignConfig::default()
    });
    let (result, campaign_s) = timed(|| {
        for i in 0..args.jobs {
            campaign.submit(Job::new(
                format!("event_{i:02}"),
                event_sim(args.nex, args.steps, i),
            ));
        }
        campaign.finish()
    });
    let report = &result.report;
    println!(
        "campaign      : {campaign_s:>8.3} s  ({:.3e} element*steps/s) on {} workers",
        report.element_steps_per_s, report.workers
    );
    let speedup = baseline_s / campaign_s;
    println!("speedup       : {speedup:>8.2}x");
    println!(
        "mesh cache    : {} miss, {} hit, {} derived, {} disk",
        result.cache.misses, result.cache.hits, result.cache.derived_hits, result.cache.disk_hits
    );

    if !result.all_ok() {
        failures.push(format!(
            "{} of {} jobs failed",
            report.failed_jobs, args.jobs
        ));
    }
    if result.cache.total_hits() < (args.jobs as u64).saturating_sub(1) {
        failures.push(format!(
            "expected the shared mesh to be built once ({} hits for {} jobs)",
            result.cache.total_hits(),
            args.jobs
        ));
    }
    if args.min_speedup > 0.0 && speedup < args.min_speedup {
        failures.push(format!(
            "speedup {speedup:.2}x below the {:.1}x gate",
            args.min_speedup
        ));
    }

    // --- fault-injected campaign: kill one job mid-run, demand retry +
    // checkpoint resume reproduce the clean seismograms bit-for-bit.
    println!();
    println!("-- fault-injection determinism --");
    let fault_steps = args.steps.max(16);
    let clean = {
        let mut c = Campaign::new(CampaignConfig::default());
        for i in 0..3 {
            c.submit(Job::new(format!("clean_{i}"), event_sim(4, fault_steps, i)));
        }
        c.finish()
    };
    let ckpt = std::env::temp_dir().join("specfem_campaign_throughput_ckpt");
    let _ = std::fs::remove_dir_all(&ckpt);
    let injected = {
        let mut c = Campaign::new(CampaignConfig {
            checkpoint_root: Some(ckpt.clone()),
            ..CampaignConfig::default()
        });
        for i in 0..3 {
            let mut sim = event_sim(4, fault_steps, i);
            if i == 1 {
                sim.config.checkpoint_every = 4;
                sim.config.fault_plan = Some(FaultPlan::new(62_000).kill(0, fault_steps / 2));
            }
            c.submit(Job::new(format!("clean_{i}"), sim));
        }
        c.finish()
    };
    let _ = std::fs::remove_dir_all(&ckpt);
    if !injected.all_ok() {
        failures.push("fault-injected campaign did not complete".into());
    }
    let retried = injected
        .outcomes
        .iter()
        .map(|o| o.attempts)
        .max()
        .unwrap_or(1);
    if retried < 2 {
        failures.push("injected kill never fired (no retry recorded)".into());
    }
    let mut identical = true;
    for (a, b) in clean.outcomes.iter().zip(&injected.outcomes) {
        let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        for (sa, sb) in ra.seismograms.iter().zip(&rb.seismograms) {
            if sa.data != sb.data {
                identical = false;
            }
        }
    }
    if identical {
        println!("killed job resumed; all seismograms bit-identical to clean run");
    } else {
        failures.push("fault-injected seismograms diverge from the clean run".into());
    }

    // --- JSON report artifact.
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&args.out, report.to_json()).expect("write JSON report");
    let perfetto_out = format!("{}.perfetto.json", args.out.trim_end_matches(".json"));
    std::fs::write(&perfetto_out, result.perfetto_json()).expect("write Perfetto timeline");
    println!();
    println!("report        : {}", args.out);
    println!("timeline      : {perfetto_out}");
    println!();
    println!("{}", report.render_text());

    if failures.is_empty() {
        println!("PASS: all campaign acceptance checks hold");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
