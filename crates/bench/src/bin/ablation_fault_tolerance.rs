//! Fault-tolerance ablation: what checkpoint/restart costs and buys.
//!
//! Three measurements on a small thread-world run, plus the modeled answer
//! at the paper's 62K-core scale:
//!
//!  1. checkpoint overhead — the same run with and without periodic
//!     checkpointing, reported as a % of wall time;
//!  2. kill-a-rank recovery — a deterministic `FaultPlan` kills one rank
//!     mid-run, the survivors surface typed errors (no hang, thanks to the
//!     recv deadline), and a resumed run finishes from the last complete
//!     checkpoint producing *bit-identical* seismograms;
//!  3. the Young/Daly optimal checkpoint interval for the four §5 machines
//!     at 62K cores.

use std::time::Instant;

use specfem_core::{NetworkProfile, Simulation};
use specfem_solver::merge_seismograms;

fn build_sim(configure: impl FnOnce(&mut specfem_core::SolverConfig)) -> Simulation {
    Simulation::builder()
        .resolution(4)
        .processors(1)
        .steps(40)
        .stations(4)
        .catalogue_event("argentina_deep")
        .configure(configure)
        .build()
        .expect("simulation config")
}

fn max_abs_diff_ulps(a: &[specfem_core::Seismogram], b: &[specfem_core::Seismogram]) -> u32 {
    let mut worst = 0u32;
    for (sa, sb) in a.iter().zip(b) {
        assert_eq!(sa.station, sb.station, "station order mismatch");
        for (va, vb) in sa.data.iter().zip(&sb.data) {
            for c in 0..3 {
                let ulps = (va[c].to_bits() as i64 - vb[c].to_bits() as i64).unsigned_abs() as u32;
                worst = worst.max(ulps);
            }
        }
    }
    worst
}

fn main() {
    let profile = NetworkProfile::loopback();
    let dir = std::env::temp_dir().join("specfem_ft_ablation");
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Checkpoint overhead: identical runs, one writing every 10 steps.
    println!("== 1. checkpoint overhead (6 ranks, NEX 4, 40 steps) ==");
    let clean = build_sim(|_| {});
    let t0 = Instant::now();
    let reference = clean.run_parallel(profile);
    let t_clean = t0.elapsed().as_secs_f64();

    let ckpt = build_sim(|c| c.checkpoint_every = 10);
    let t0 = Instant::now();
    let checkpointed = ckpt
        .run_parallel_checkpointed(profile, &dir)
        .expect("checkpointed run");
    let t_ckpt = t0.elapsed().as_secs_f64();
    let overhead = 100.0 * (t_ckpt - t_clean) / t_clean;
    println!("no checkpoints : {t_clean:.3} s");
    println!("every 10 steps : {t_ckpt:.3} s  → overhead {overhead:+.1} %");
    assert_eq!(
        max_abs_diff_ulps(&reference.seismograms, &checkpointed.seismograms),
        0,
        "checkpoint writing must not perturb the solution"
    );
    println!("checkpointed seismograms match the clean run bit-for-bit");
    let _ = std::fs::remove_dir_all(&dir);

    // 2. Kill a rank, restart, demand identical output.
    println!();
    println!("== 2. kill rank 3 at step 25 → restart from last checkpoint ==");
    let faulty = build_sim(|c| {
        c.checkpoint_every = 10;
        c.recv_timeout = Some(std::time::Duration::from_secs(2));
        c.fault_plan = Some(specfem_comm::FaultPlan::new(0xF417).kill(3, 25));
    });
    let t0 = Instant::now();
    let crash = faulty.run_parallel_checkpointed(profile, &dir);
    let t_crash = t0.elapsed().as_secs_f64();
    let err = crash.expect_err("the killed run must fail");
    println!("failed after {t_crash:.3} s with: {err}");

    let resumed_sim = build_sim(|c| c.checkpoint_every = 10);
    let t0 = Instant::now();
    let resumed = resumed_sim
        .resume_from_checkpoint(profile, &dir)
        .expect("resume");
    let t_recover = t0.elapsed().as_secs_f64();
    let total = resumed.ranks.first().map(|r| r.nsteps).unwrap_or(0);
    println!("recovery wall time: {t_recover:.3} s (carried the run to step {total})");
    let ulps = max_abs_diff_ulps(&reference.seismograms, &resumed.seismograms);
    println!("resumed vs uninterrupted seismograms: max {ulps} ULP difference");
    assert_eq!(ulps, 0, "recovery must be bit-identical");
    let _ = std::fs::remove_dir_all(&dir);

    // Sanity: merged views agree in station count.
    assert_eq!(
        merge_seismograms(&resumed.ranks).len(),
        reference.seismograms.len()
    );

    // 3. Modeled optimal checkpoint cadence at the paper's scale.
    println!();
    println!("== 3. Young/Daly optimal checkpoint interval, 62K cores ==");
    println!(
        "{:<34} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "machine", "MTBF", "δ write", "τ Young", "τ Daly", "waste"
    );
    for p in specfem_perf::survey_62k() {
        println!(
            "{:<34} {:>8.0} s {:>8.0} s {:>8.0} s {:>8.0} s {:>7.1} %",
            p.machine,
            p.system_mtbf_s,
            p.checkpoint_write_s,
            p.young_interval_s,
            p.daly_interval_s,
            100.0 * p.waste_fraction
        );
    }
    println!();
    println!("checkpointing is off the solver's critical path until τ drops toward");
    println!("the per-step wall time; at 62K cores every machine above wants a");
    println!("checkpoint every few thousand seconds, which the versioned CRC-guarded");
    println!("per-rank files of specfem-io provide.");
}
