//! Figure 7: totaled execution time for all cores vs resolution
//! (normalized) — measured over a NEX sweep with the production-style
//! *fixed* radial layering, fitted, and validated on a held-out resolution
//! (the paper validated its NEX=1440 prediction "within 12 %").

use specfem_bench::{prem_mesh_cached, timed};
use specfem_campaign::MeshCache;
use specfem_perf::{RuntimeModel, Sample};
use specfem_solver::{run_serial, SolverConfig};

/// Steps ∝ NEX (the Courant dt shrinks with resolution); this keeps the
/// measured work ∝ NEX³ like the paper's full runs.
fn steps_for(nex: usize) -> usize {
    6 * nex
}

fn total_core_seconds(cache: &MeshCache, nex: usize) -> f64 {
    // Meshes come through the campaign cache, so any resolution measured
    // more than once (validation re-runs, repeated sweeps) meshes once.
    let mesh = prem_mesh_cached(cache, nex, 1, |p| {
        p.radial_layer_nex = Some(6); // fixed radial layering (production style)
    });
    let config = SolverConfig {
        nsteps: steps_for(nex),
        ..SolverConfig::default()
    };
    let (_, seconds) = timed(|| run_serial(&mesh, &config, &[]));
    seconds // one core → core-seconds = wall
}

fn main() {
    println!("== Figure 7: totaled execution time vs resolution (normalized) ==");
    let cache = MeshCache::new(0, None);
    let nexes = [4usize, 6, 8, 10, 12];
    let mut samples = Vec::new();
    println!("{:>6} {:>12} {:>14}", "NEX", "steps", "core-sec");
    for &nex in &nexes {
        let t = total_core_seconds(&cache, nex);
        println!("{nex:>6} {:>12} {t:>14.3}", steps_for(nex));
        samples.push(Sample {
            x: nex as f64,
            y: t,
        });
    }

    // Fit on all but the largest; hold the largest out for validation.
    let fit_set = &samples[..samples.len() - 1];
    let held_out = samples[samples.len() - 1];
    let model = RuntimeModel::fit(fit_set);
    println!();
    println!(
        "fit: T_total(NEX) = c·NEX^{:.2}  (paper Figure 7 shape: ≈ NEX³ growth)",
        model.exponent()
    );
    let err = model.relative_error(held_out.x as usize, held_out.y);
    println!(
        "held-out NEX={} prediction error: {:.1} % (paper: NEX=1440 within 12 %)",
        held_out.x as usize,
        err * 100.0
    );

    println!();
    println!("normalized curve over the paper's resolutions:");
    let full = RuntimeModel::fit(&samples);
    let paper_res = [96usize, 144, 288, 320, 512, 640];
    let curve = full.normalized_curve(&paper_res);
    for (nex, val) in paper_res.iter().zip(&curve) {
        println!("  NEX {nex:>4} → {val:>8.1}");
    }
    println!(
        "range 1 … {:.0} (paper Figure 7 y-axis: 1 … ~301)",
        curve.last().unwrap()
    );
}
