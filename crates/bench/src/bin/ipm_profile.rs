//! §5 reproduction with the `specfem-obs` subsystem: run traced
//! simulations at two rank counts, regenerate the IPM-style table
//! (communication vs computation share of the main loop), and write the
//! full artifact set — `ipm_report.txt`, `ipm_report.json`, and the
//! Perfetto timeline — under `OUTPUT_FILES/ipm_profile/`.
//!
//! The binary also self-checks the pipeline: the report JSON is parsed
//! back and every per-rank row must reproduce the communicator's own
//! byte accounting exactly, and the Perfetto export must be valid JSON.
//!
//! Each run additionally appends one schema-versioned record per rank
//! count to the run-over-run performance ledger
//! (`BENCH_ipm_profile.json`, see `specfem_obs::ledger`); the
//! `perf_ledger` binary diffs the latest records against the committed
//! baseline and fails CI on regression.

use specfem_bench::{append_ledger, ledger_dir, ledger_record};
use specfem_core::{NetworkProfile, Simulation};

fn main() {
    let out_root = std::path::PathBuf::from("OUTPUT_FILES/ipm_profile");
    println!("== IPM-style profile of the solver main loop (§5) ==");
    println!("(paper, measured with IPM on Franklin: 1.9-4.2 % comm, average 3.2 %)");
    println!();
    println!("ranks    comm%(wall)  comm%(modeled)       sent B     msgs   spans");

    for nproc in [1usize, 2] {
        let dir = out_root.join(format!("nproc{nproc}"));
        let sim = Simulation::builder()
            .resolution(4)
            .processors(nproc) // 6·nproc² ranks
            .steps(16)
            .stations(2)
            .trace_dir(&dir)
            .metrics_every(4)
            .build()
            .expect("valid configuration");
        let result = sim.run_parallel(NetworkProfile::loopback());
        let report = result.ipm_report();

        // Self-check 1: the JSON report parses and its per-rank rows match
        // CommStats byte-for-byte.
        let parsed = serde_json::from_str(&report.to_json()).expect("report JSON parses");
        let rows = parsed["per_rank"].as_array().expect("per_rank array");
        assert_eq!(rows.len(), result.ranks.len());
        for r in &result.ranks {
            let row = rows
                .iter()
                .find(|row| row["rank"].as_u64() == Some(r.rank as u64))
                .expect("every rank has a row");
            assert_eq!(
                row["bytes_sent"].as_u64(),
                Some(r.comm.bytes_sent),
                "rank {}: report bytes_sent disagrees with CommStats",
                r.rank
            );
            assert_eq!(row["bytes_received"].as_u64(), Some(r.comm.bytes_received));
            assert_eq!(row["messages_sent"].as_u64(), Some(r.comm.messages_sent));
        }

        // Self-check 2: the Perfetto artifact on disk is loadable JSON.
        let perfetto = std::fs::read_to_string(dir.join("trace.perfetto.json"))
            .expect("trace.perfetto.json written");
        let trace = serde_json::from_str(&perfetto).expect("Perfetto JSON parses");
        let span_events = trace["traceEvents"]
            .as_array()
            .expect("traceEvents array")
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .count();

        // Append this run to the performance ledger (one record per rank
        // count, shared BENCH_ipm_profile.json file).
        let record = ledger_record(&format!("ipm_profile_nproc{nproc}"), &result, "loopback");
        let path = append_ledger(&ledger_dir(), "ipm_profile", &record)
            .expect("ledger append must succeed");
        assert!(path.exists());

        // The modeled share is the dedicated-machine estimate; the wall
        // share on an oversubscribed host is dominated by recv() waits.
        let modeled_mean = result
            .ranks
            .iter()
            .map(|r| {
                let compute = (r.elapsed_s - r.comm.wall_time_s).max(1e-9);
                r.comm.modeled_time_s / (compute + r.comm.modeled_time_s)
            })
            .sum::<f64>()
            / result.ranks.len() as f64;
        println!(
            "{:>5} {:>12.2} {:>15.2} {:>12} {:>8} {:>7}",
            result.ranks.len(),
            100.0 * report.comm_fraction_mean,
            100.0 * modeled_mean,
            report.total_bytes_sent,
            report.total_messages,
            span_events
        );
    }

    println!();
    println!("per-run artifacts (report + Perfetto timeline, load the latter");
    println!(
        "at https://ui.perfetto.dev) are under {}/",
        out_root.display()
    );
    println!();

    // Full banner for the larger run.
    let text = std::fs::read_to_string(out_root.join("nproc2/ipm_report.txt"))
        .expect("ipm_report.txt written");
    print!("{text}");
}
