//! §4.4-1 ablation: the legacy mesher "was actually run twice internally"
//! (geometry, then a second full pass for material properties), slowing it
//! by ~2×; the merged one-pass assignment fixed it.

use specfem_bench::{prem_mesh_with, timed};

fn main() {
    println!("== Mesher pass ablation (paper §4.4-1: legacy two-pass ≈ 2× slower) ==");
    println!(
        "{:>6} {:>14} {:>14} {:>10}",
        "NEX", "one-pass (s)", "two-pass (s)", "ratio"
    );
    for nex in [6usize, 8, 12] {
        // Warm-up build to stabilize the allocator.
        let _ = prem_mesh_with(nex, 1, |_| {});
        let (m1, t1) = timed(|| prem_mesh_with(nex, 1, |p| p.legacy_two_pass_materials = false));
        let (m2, t2) = timed(|| prem_mesh_with(nex, 1, |p| p.legacy_two_pass_materials = true));
        assert_eq!(m1.rho, m2.rho, "both modes must agree");
        println!("{nex:>6} {t1:>14.3} {t2:>14.3} {:>10.2}", t2 / t1);
        // The paper's 2× was on the *generation* phases (its numbering was
        // comparatively cheap); our tolerance-hashing numbering dominates at
        // laptop scale and is unaffected by the merge, so report both.
        let gen1 = m1.report.geometry_seconds + m1.report.material_seconds;
        let gen2 = m2.report.geometry_seconds + m2.report.material_seconds;
        println!(
            "       generation-only ratio {:.2} (geometry {:.3}s/{:.3}s, materials {:.3}s/{:.3}s, numbering {:.3}s/{:.3}s)",
            gen2 / gen1,
            m1.report.geometry_seconds,
            m2.report.geometry_seconds,
            m1.report.material_seconds,
            m2.report.material_seconds,
            m1.report.numbering_seconds,
            m2.report.numbering_seconds,
        );
    }
    println!();
    println!("the two-pass mode regenerates the element geometry wholesale inside the");
    println!("material pass — the paper merged the steps ('assigning properties to each");
    println!("mesh element right after its creation').");
}
