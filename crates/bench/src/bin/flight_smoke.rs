//! Flight-recorder smoke harness for CI.
//!
//! Injects the two headline failure classes — a NaN/growth blow-up past
//! the Courant bound and a mid-run rank kill — into armed-recorder runs,
//! then asserts the forensic contract: **exactly one** merged SFCN crash
//! dossier per incident, classified and naming the failing rank, with
//! the surviving ranks' journals inside. Extracts each dossier's
//! `incident.json` chunk and writes a machine-readable summary so the
//! workflow's Python validator can check the schema without linking the
//! container format. Exits nonzero on any violation.

use std::path::{Path, PathBuf};

use specfem_core::comm::FaultPlan;
use specfem_core::io::{read_crash_dossier, ContainerReader, CrashDossier, DOSSIER_KIND};
use specfem_core::{NetworkProfile, RunOptions, Simulation};

fn base_sim() -> Simulation {
    Simulation::builder()
        .resolution(4)
        .steps(12)
        .stations(3)
        .catalogue_event("argentina_deep")
        .flight_recorder(true)
        .flight_buffer_events(256)
        .build()
        .unwrap()
}

/// The single dossier in `dir` — more or fewer is a contract violation.
fn the_dossier(dir: &Path) -> (PathBuf, CrashDossier) {
    let files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("list {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_string_lossy();
            name.starts_with("dossier_") && name.ends_with(".sfcn")
        })
        .collect();
    assert_eq!(
        files.len(),
        1,
        "exactly one dossier per incident in {}, found {files:?}",
        dir.display()
    );
    let dossier = read_crash_dossier(&files[0]).expect("dossier parses back");
    (files[0].clone(), dossier)
}

/// Pull the raw `incident.json` chunk out of the container for the
/// external schema validator.
fn extract_incident(container: &Path, out: &Path) {
    let mut reader = ContainerReader::open(container).expect("container opens");
    assert_eq!(reader.kind(), DOSSIER_KIND, "dossier container kind");
    let bytes = reader.chunk("incident.json").expect("incident chunk");
    std::fs::write(out, bytes).expect("write incident json");
}

fn main() {
    let mut out_dir = PathBuf::from("OUTPUT_FILES/flight");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out-dir" => out_dir = PathBuf::from(args.next().expect("--out-dir value")),
            other => panic!("unknown argument {other}"),
        }
    }
    let _ = std::fs::remove_dir_all(&out_dir);
    std::fs::create_dir_all(&out_dir).expect("create out dir");

    // Incident 1: NaN/growth health trip on a serial run. A dt far past
    // the Courant bound blows up within a few health samples.
    let health_dir = out_dir.join("health");
    std::fs::create_dir_all(&health_dir).unwrap();
    let mut sim = base_sim();
    sim.config.dt = Some(1000.0);
    sim.config.health_every = 5;
    sim.config.nsteps = 500;
    sim.config.checkpoint_every = 0;
    let (mesh, _) = sim.build_mesh();
    sim.try_run_with_mesh(
        &mesh,
        RunOptions {
            profile: None,
            checkpoint_dir: None,
            resume: false,
            world: None,
            dossier_dir: Some(&health_dir),
        },
    )
    .expect_err("the unstable run must trip the health monitor");
    let (health_path, health) = the_dossier(&health_dir);
    assert_eq!(health.incident.class, "health", "{:?}", health.incident);
    assert_eq!(health.incident.rank, Some(0));
    assert!(health.incident.step.is_some(), "health trip names its step");
    assert!(!health.journals.is_empty(), "the rank's journal survived");
    extract_incident(&health_path, &out_dir.join("health_incident.json"));

    // Incident 2: rank 1 killed at step 6 of a 4-rank partitioned run.
    let kill_dir = out_dir.join("kill");
    std::fs::create_dir_all(&kill_dir).unwrap();
    let mut sim = base_sim();
    sim.config.checkpoint_every = 0;
    sim.config.fault_plan = Some(FaultPlan::new(7).kill(1, 6));
    sim.config.recv_timeout = Some(std::time::Duration::from_secs(5));
    let (mesh, _) = sim.build_mesh();
    sim.try_run_with_mesh(
        &mesh,
        RunOptions {
            profile: Some(NetworkProfile::loopback()),
            checkpoint_dir: None,
            resume: false,
            world: Some(4),
            dossier_dir: Some(&kill_dir),
        },
    )
    .expect_err("the injected kill must abort the run");
    let (kill_path, kill) = the_dossier(&kill_dir);
    assert_eq!(kill.incident.class, "rank_dead", "{:?}", kill.incident);
    assert_eq!(kill.incident.rank, Some(1), "the victim is named");
    assert_eq!(kill.incident.world, 4);
    assert!(
        kill.journals.len() >= 2,
        "surviving ranks' journals merged, got {}",
        kill.journals.len()
    );
    extract_incident(&kill_path, &out_dir.join("kill_incident.json"));

    // Summary for the workflow validator and humans reading artifacts.
    let event_count =
        |d: &CrashDossier| -> usize { d.journals.iter().map(|j| j.events.len()).sum() };
    let summary = format!(
        "{{\n  \"incidents\": [\n    {{\"class\": \"health\", \"rank\": 0, \"world\": 1, \
         \"journals\": {}, \"events\": {}, \"file\": {:?}}},\n    \
         {{\"class\": \"rank_dead\", \"rank\": 1, \"world\": 4, \
         \"journals\": {}, \"events\": {}, \"file\": {:?}}}\n  ]\n}}\n",
        health.journals.len(),
        event_count(&health),
        health_path.file_name().unwrap().to_string_lossy(),
        kill.journals.len(),
        event_count(&kill),
        kill_path.file_name().unwrap().to_string_lossy(),
    );
    std::fs::write(out_dir.join("flight_summary.json"), &summary).unwrap();

    println!(
        "ok: one dossier per incident — health (rank 0, {} events), \
         rank_dead (rank 1, {} journals merged)",
        event_count(&health),
        kill.journals.len()
    );
}
