//! §4.3 ablation at application level: solver runs with the reference,
//! manual-SIMD, and BLAS-style kernels (paper: SIMD +15–20 %, BLAS slower
//! than plain loops). The kernel-only microbenchmark is
//! `cargo bench -p specfem-bench --bench force_kernel`.

use specfem_bench::{prem_mesh, timed};
use specfem_kernels::KernelVariant;
use specfem_solver::{run_serial, SolverConfig};

fn main() {
    println!("== Force-kernel variant ablation (paper §4.3) ==");
    let mesh = prem_mesh(8, 1);
    let nsteps = 60;
    let variants = [
        ("reference loops", KernelVariant::Reference),
        ("manual SIMD 4+1", KernelVariant::Simd),
        ("BLAS-style sgemm", KernelVariant::BlasStyle),
    ];
    let mut reference_time = None;
    println!(
        "{:>18} {:>12} {:>12}",
        "variant", "time (s)", "vs reference"
    );
    for (name, variant) in variants {
        let config = SolverConfig {
            nsteps,
            variant,
            ..SolverConfig::default()
        };
        let (_, t1) = timed(|| run_serial(&mesh, &config, &[]));
        let (_, t2) = timed(|| run_serial(&mesh, &config, &[]));
        let t = t1.min(t2);
        if variant == KernelVariant::Reference {
            reference_time = Some(t);
        }
        let rel = reference_time
            .map(|b| format!("{:+.1} %", 100.0 * (t - b) / b))
            .unwrap_or_else(|| "—".into());
        println!("{name:>18} {t:>12.3} {rel:>12}");
    }
    println!();
    println!("paper: manual vectors gain 15–20 % over the loops; BLAS-style is a");
    println!("clear loss at 5×5 (call overhead + pack/unpack copies).");
}
