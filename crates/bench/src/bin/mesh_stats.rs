//! §4 memory sizing: "the mesher and solver would each require at least
//! 37 TBs … around 62K cores having around 1.85 GB of memory per core" —
//! mesh statistics at laptop scale plus the extrapolated sizing.

use specfem_bench::prem_mesh;
use specfem_mesh::report::{estimate_global_solver_bytes, MeshStatistics};

fn main() {
    println!("== Mesh statistics and the §4 memory sizing ==");
    println!(
        "{:>6} {:>9} {:>9} {:>10} {:>12}",
        "NEX", "nspec", "nglob", "shared", "solver mem"
    );
    for nex in [4usize, 8, 12] {
        let mesh = prem_mesh(nex, 1);
        let stats = MeshStatistics::collect(&mesh);
        println!(
            "{nex:>6} {:>9} {:>9} {:>10} {:>12}",
            stats.nspec,
            stats.nglob,
            stats.shared_points,
            specfem_bench::human_bytes(stats.solver_bytes as f64)
        );
        println!(
            "       regions: crust-mantle {}, outer core {}, inner core {}, cube {}",
            stats.elements[0], stats.elements[1], stats.elements[2], stats.elements[3]
        );
    }

    println!();
    println!("extrapolated production sizing (fixed ~100 radial layers):");
    for (label, nex) in [("3 s", 1456usize), ("2 s", 2176), ("1 s", 4352)] {
        let bytes = estimate_global_solver_bytes(nex, 100);
        let per_core_62k = bytes as f64 / 62_976.0;
        println!(
            "  T = {label:>3} (NEX {nex:>5}): total {:>10}, per core on 62,976 cores: {:>9}",
            specfem_bench::human_bytes(bytes as f64),
            specfem_bench::human_bytes(per_core_62k)
        );
    }
    println!("  paper §4: ~37 TB per application half, ~1.85 GB/core at 62K cores");
}
