//! §4.4-2 ablation: exact nonlinear station location vs nearest grid point
//! — error and cost as resolution grows. The paper switched to nearest at
//! high resolution: the error becomes geophysically negligible while the
//! nonlinear search (and the per-step interpolation it forces) costs time
//! and load balance.

use specfem_bench::{prem_mesh, timed};
use specfem_mesh::stations::{global_network, locate_station_exact, locate_station_nearest};
use specfem_mesh::Partition;

fn main() {
    println!("== Station location ablation (paper §4.4-2) ==");
    let stations = global_network(24);
    println!(
        "{:>6} {:>16} {:>16} {:>14} {:>14}",
        "NEX", "exact err (m)", "nearest err (m)", "exact (s)", "nearest (s)"
    );
    for nex in [4usize, 8, 12] {
        let mesh = prem_mesh(nex, 1);
        let local = Partition::serial(&mesh).extract(&mesh, 0);
        let (exact_errs, t_exact) = timed(|| {
            stations
                .iter()
                .map(|s| locate_station_exact(&local, s).position_error_m)
                .collect::<Vec<_>>()
        });
        let (near_errs, t_near) = timed(|| {
            stations
                .iter()
                .map(|s| locate_station_nearest(&local, s).position_error_m)
                .collect::<Vec<_>>()
        });
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "{nex:>6} {:>16.2} {:>16.0} {:>14.3} {:>14.3}",
            mean(&exact_errs),
            mean(&near_errs),
            t_exact,
            t_near
        );
    }
    println!();
    println!("shape: nearest-grid-point error shrinks ∝ 1/NEX; at production NEX");
    println!("(>1000) it is tens of metres — 'negligible from a geophysical point of");
    println!("view' — while the Newton search costs strictly more per station.");
}
