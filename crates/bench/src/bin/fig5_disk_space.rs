//! Figure 5: total disk space used for communication between MESHFEM3D and
//! SPECFEM3D vs resolution.
//!
//! Measures real serialized bytes of the legacy file handoff at small NEX,
//! fits the paper's regression, and extrapolates to the 2-second
//! (paper: >14 TB) and 1-second (paper: >108 TB) resolutions.

use specfem_bench::{human_bytes, prem_mesh};
use specfem_io::{encode_mesh, write_local_mesh};
use specfem_mesh::{nex_for_period, nominal_shortest_period_s, MeshKey, Partition};
use specfem_perf::{DiskSpaceModel, Sample};

fn main() {
    println!("== Figure 5: mesher→solver disk space vs resolution ==");
    println!(
        "{:>6} {:>12} {:>14} {:>10} {:>16} {:>8}",
        "NEX", "period (s)", "legacy bytes", "files", "merged bytes", "files"
    );

    let mut samples = Vec::new();
    for nex in [4usize, 6, 8, 12, 16] {
        let mesh = prem_mesh(nex, 1);
        let local = Partition::serial(&mesh).extract(&mesh, 0);
        let dir = std::env::temp_dir().join(format!("specfem_fig5_{nex}"));
        let _ = std::fs::remove_dir_all(&dir);
        let report = write_local_mesh(&dir, &local).expect("write mesh");
        let _ = std::fs::remove_dir_all(&dir);
        // The merged single-artifact container replaces the per-array
        // file fan-out with one chunked, CRC-validated file per mesh.
        let key = MeshKey::new(&mesh.params, "prem_iso");
        let merged_bytes = encode_mesh(&mesh, key.fingerprint()).len();
        println!(
            "{nex:>6} {:>12.1} {:>14} {:>10} {:>16} {:>8}",
            nominal_shortest_period_s(nex),
            report.bytes,
            report.files,
            merged_bytes,
            1
        );
        samples.push(Sample {
            x: nex as f64,
            y: report.bytes as f64,
        });
    }

    let model = DiskSpaceModel::fit(&samples);
    println!();
    println!(
        "fitted model: bytes = {:.3e} · NEX^{:.2}   (R² = {:.4})",
        { model.predict_bytes(1) },
        model.exponent(),
        model.r_squared()
    );
    println!();
    println!("extrapolation (paper: >14 TB at 2 s, >108 TB at 1 s):");
    for period in [3.0, 2.0, 1.0] {
        let nex = nex_for_period(period);
        let bytes = model.predict_bytes(nex);
        println!(
            "  T = {period:.0} s (NEX {nex:>5}) → {:>10}",
            human_bytes(bytes)
        );
    }
    let ratio = model.predict_bytes_for_period(1.0) / model.predict_bytes_for_period(2.0);
    println!("  1 s / 2 s volume ratio: {ratio:.1}× (paper: 108/14 ≈ 7.7×)");

    // File-count explosion (§4.1: >3.2 M files at 62K cores).
    let mesh = prem_mesh(8, 2);
    let part = Partition::compute(&mesh);
    let local = part.extract(&mesh, 0);
    let dir = std::env::temp_dir().join("specfem_fig5_files");
    let _ = std::fs::remove_dir_all(&dir);
    let rep = write_local_mesh(&dir, &local).expect("write");
    let _ = std::fs::remove_dir_all(&dir);
    println!();
    println!(
        "files per rank: {} → at 62,976 cores: {:.1} M files (paper: >3.2 M)",
        rep.files,
        rep.files as f64 * 62_976.0 / 1e6
    );

    // The merged-container answer to the explosion: file count is
    // O(meshes + kept checkpoint generations), independent of world size.
    let legacy_campaign = rep.files as f64 * 62_976.0;
    let merged_campaign = 1.0 + specfem_io::checkpoint::DEFAULT_KEEP as f64;
    println!(
        "merged containers at 62,976 cores: 1 mesh artifact + {} checkpoint \
         generation(s) = {} files ({:.1e}× fewer)",
        specfem_io::checkpoint::DEFAULT_KEEP,
        merged_campaign as u64,
        legacy_campaign / merged_campaign
    );
}
