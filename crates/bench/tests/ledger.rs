//! Acceptance test for the run-over-run performance ledger: a full
//! harness-style run appends a schema-versioned record to
//! `BENCH_<harness>.json`, the record round-trips through the parser,
//! and the diff logic that backs the `perf_ledger` gate flags a
//! synthetic slowdown while passing an identical re-run.

use specfem_bench::{append_ledger, ledger_record};
use specfem_core::obs::ledger::{self, LEDGER_SCHEMA_VERSION};
use specfem_core::Simulation;

#[test]
fn harness_run_appends_a_schema_versioned_record() {
    let dir = std::env::temp_dir().join(format!("specfem_ledger_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let sim = Simulation::builder()
        .resolution(4)
        .steps(4)
        .stations(1)
        .build()
        .expect("valid configuration");
    let result = sim.run_serial();

    let record = ledger_record("ledger_roundtrip", &result, "serial");
    let path = append_ledger(&dir, "roundtrip", &record).expect("append");
    assert!(path.ends_with("BENCH_roundtrip.json"), "{}", path.display());

    let records = ledger::load(&path).expect("reload");
    assert_eq!(records.len(), 1);
    let r = &records[0];
    assert_eq!(r.schema_version, LEDGER_SCHEMA_VERSION);
    assert_eq!(r.harness, "ledger_roundtrip");
    assert_eq!(r.ranks, 1);
    assert!(r.wall_s > 0.0);
    assert!(r.element_steps > 0, "nspec × nsteps must be recorded");
    assert_eq!(r.machine.profile, "serial");

    // Appending again grows the file; the deterministic counters of the
    // two records are identical, so the diff passes...
    append_ledger(&dir, "roundtrip", &record).expect("second append");
    let records = ledger::load(&path).expect("reload");
    assert_eq!(records.len(), 2);
    let d = ledger::diff(&records[0], &records[1], 10.0);
    assert!(d.ok(), "{:?}", d.regressions);

    // ...while a synthetic 2× wall slowdown on the same machine is a
    // regression (the perf_ledger `--inflate 2.0` self-test in CI).
    let mut slow = records[1].clone();
    slow.wall_s *= 2.0;
    let d = ledger::diff(&records[0], &slow, 10.0);
    assert!(!d.ok(), "a 2x slowdown must trip the gate: {:?}", d.lines);

    let _ = std::fs::remove_dir_all(&dir);
}
