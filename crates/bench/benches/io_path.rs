//! E-F5 companion microbenchmark (paper §4.1): the legacy file-based
//! mesher→solver handoff — write and read of one rank's full array set —
//! vs the merged in-memory handoff (a clone of the LocalMesh, which is
//! what the merged application effectively avoids entirely).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use specfem_io::{read_local_mesh, write_local_mesh};
use specfem_mesh::{GlobalMesh, MeshParams, Partition};
use specfem_model::Prem;

fn bench_io(c: &mut Criterion) {
    let params = MeshParams::new(6, 1);
    let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
    let local = Partition::serial(&mesh).extract(&mesh, 0);
    let dir = std::env::temp_dir().join("specfem_bench_io");

    let mut group = c.benchmark_group("mesher_solver_handoff");
    group.sample_size(10);
    group.bench_function("legacy_write", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let rep = write_local_mesh(&dir, &local).unwrap();
            black_box(rep.bytes)
        })
    });
    // Ensure the files exist for the read benchmark.
    let _ = std::fs::remove_dir_all(&dir);
    write_local_mesh(&dir, &local).unwrap();
    group.bench_function("legacy_read", |b| {
        b.iter(|| {
            let (mesh, rep) = read_local_mesh(&dir, 0).unwrap();
            black_box((mesh.nglob, rep.bytes))
        })
    });
    group.bench_function("merged_in_memory", |b| {
        b.iter(|| {
            // The merged path's "handoff" is just ownership transfer; a
            // full clone is its worst case.
            black_box(local.clone().nglob)
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_io);
criterion_main!(benches);
