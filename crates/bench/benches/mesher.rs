//! E-MESH2X microbenchmark (paper §4.4-1): one-pass vs legacy two-pass
//! material assignment in the mesher.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use specfem_mesh::{GlobalMesh, MeshParams};
use specfem_model::Prem;

fn bench_mesher(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesher_passes");
    group.sample_size(10);
    let prem = Prem::isotropic_no_ocean();
    for (name, two_pass) in [("one_pass", false), ("legacy_two_pass", true)] {
        group.bench_function(BenchmarkId::new("mode", name), |b| {
            b.iter(|| {
                let mut params = MeshParams::new(6, 1);
                params.legacy_two_pass_materials = two_pass;
                let mesh = GlobalMesh::build(&params, &prem);
                black_box(mesh.nglob)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mesher);
criterion_main!(benches);
