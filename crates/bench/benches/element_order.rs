//! E-CM microbenchmark (paper §4.2): solver main-loop time under the four
//! element orderings. Paper: the multilevel Cuthill-McKee sort gains at
//! most ~5 % because the point renumbering already minimized cache misses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use specfem_comm::SerialComm;
use specfem_mesh::{ElementOrder, GlobalMesh, MeshParams, Partition};
use specfem_model::Prem;
use specfem_solver::{RankSolver, SolverConfig};

fn bench_orders(c: &mut Criterion) {
    let mut group = c.benchmark_group("element_order_solver_steps");
    group.sample_size(10);
    let orders = [
        ("random", ElementOrder::Random(7)),
        ("natural", ElementOrder::Natural),
        ("cuthill_mckee", ElementOrder::CuthillMcKee),
        (
            "multilevel_cm64",
            ElementOrder::MultilevelCuthillMcKee { block: 64 },
        ),
    ];
    for (name, order) in orders {
        let mut params = MeshParams::new(8, 1);
        params.element_order = order;
        let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
        let local = Partition::serial(&mesh).extract(&mesh, 0);
        let config = SolverConfig {
            nsteps: 0,
            ..SolverConfig::default()
        };
        group.bench_function(BenchmarkId::new("order", name), |b| {
            let mut comm = SerialComm::new();
            let mut solver = RankSolver::new(local.clone(), &config, &[], &mut comm);
            b.iter(|| {
                solver.step(0, &mut comm).unwrap();
                black_box(solver.fields.accel[0])
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_orders
}
criterion_main!(benches);
