//! Halo-assembly microbenchmark: the per-step `assemble_MPI` cost (paper
//! §2.4's "costly part of the calculation on parallel computers") on a
//! real mesh decomposition — pack/send/receive/combine over the thread
//! substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use specfem_comm::{assemble_halo, Communicator, NetworkProfile, ThreadWorld};
use specfem_mesh::{GlobalMesh, MeshParams, Partition};
use specfem_model::Prem;

fn bench_halo(c: &mut Criterion) {
    let params = MeshParams::new(8, 2);
    let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
    let part = Partition::compute(&mesh);
    let locals = part.extract_all(&mesh);
    let total_shared: usize = locals.iter().map(|l| l.halo.shared_point_count()).sum();

    let mut group = c.benchmark_group("halo_assembly");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(total_shared as u64));
    group.bench_function("24_ranks_3comp", |b| {
        b.iter(|| {
            let locals = &locals;
            let sums = ThreadWorld::run(locals.len(), NetworkProfile::loopback(), |mut comm| {
                let l = &locals[comm.rank()];
                let mut field = vec![1.0f32; l.nglob * 3];
                for _ in 0..10 {
                    assemble_halo(&mut comm, &l.halo, &mut field, 3, 42).unwrap();
                }
                field[0]
            });
            black_box(sums[0])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_halo);
criterion_main!(benches);
