//! E-SSE microbenchmark (paper §4.3): the cut-plane 5×5 matrix-product
//! kernel in its three implementations, streamed over a batch of elements
//! (as the solver does), plus the padded-vs-unpadded layout comparison.
//!
//! Expected shape: `simd` beats `reference` by roughly the paper's 15–20 %
//! (modern LLVM already auto-vectorizes some of the reference, exactly as
//! the paper notes compilers of its era had begun to); `blas_style` loses
//! badly to both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use specfem_gll::GllBasis;
use specfem_kernels::{blas_style, reference, simd, DerivOps, NGLL3, NGLL3_PADDED};

const BATCH: usize = 512; // elements per iteration — streams like the solver

fn make_batch(pad: usize) -> Vec<f32> {
    (0..BATCH * pad)
        .map(|i| ((i as u32).wrapping_mul(2654435761) % 1000) as f32 / 500.0 - 1.0)
        .collect()
}

fn bench_derivatives(c: &mut Criterion) {
    let ops = DerivOps::from_basis(&GllBasis::new(4));
    let mut group = c.benchmark_group("cutplane_derivatives");
    group.throughput(Throughput::Elements(BATCH as u64));

    let upad = make_batch(NGLL3_PADDED);
    let unpadded = make_batch(NGLL3);

    group.bench_function(BenchmarkId::new("reference", "padded"), |b| {
        let mut t1 = vec![0.0f32; NGLL3_PADDED];
        let mut t2 = vec![0.0f32; NGLL3_PADDED];
        let mut t3 = vec![0.0f32; NGLL3_PADDED];
        b.iter(|| {
            for e in 0..BATCH {
                let u = &upad[e * NGLL3_PADDED..(e + 1) * NGLL3_PADDED];
                reference::cutplane_derivatives(
                    black_box(u),
                    &ops.hprime,
                    &mut t1,
                    &mut t2,
                    &mut t3,
                );
            }
            black_box(t1[0])
        })
    });

    group.bench_function(BenchmarkId::new("reference", "unpadded"), |b| {
        let mut t1 = vec![0.0f32; NGLL3];
        let mut t2 = vec![0.0f32; NGLL3];
        let mut t3 = vec![0.0f32; NGLL3];
        b.iter(|| {
            for e in 0..BATCH {
                let u = &unpadded[e * NGLL3..(e + 1) * NGLL3];
                reference::cutplane_derivatives_unpadded(
                    black_box(u),
                    &ops.hprime,
                    &mut t1,
                    &mut t2,
                    &mut t3,
                );
            }
            black_box(t1[0])
        })
    });

    group.bench_function(BenchmarkId::new("simd_4plus1", "padded"), |b| {
        let mut t1 = vec![0.0f32; NGLL3_PADDED];
        let mut t2 = vec![0.0f32; NGLL3_PADDED];
        let mut t3 = vec![0.0f32; NGLL3_PADDED];
        b.iter(|| {
            for e in 0..BATCH {
                let u = &upad[e * NGLL3_PADDED..(e + 1) * NGLL3_PADDED];
                simd::cutplane_derivatives(black_box(u), &ops.hprime, &mut t1, &mut t2, &mut t3);
            }
            black_box(t1[0])
        })
    });

    group.bench_function(BenchmarkId::new("blas_style", "padded"), |b| {
        let mut t1 = vec![0.0f32; NGLL3_PADDED];
        let mut t2 = vec![0.0f32; NGLL3_PADDED];
        let mut t3 = vec![0.0f32; NGLL3_PADDED];
        b.iter(|| {
            for e in 0..BATCH {
                let u = &upad[e * NGLL3_PADDED..(e + 1) * NGLL3_PADDED];
                blas_style::cutplane_derivatives(
                    black_box(u),
                    &ops.hprime,
                    &mut t1,
                    &mut t2,
                    &mut t3,
                );
            }
            black_box(t1[0])
        })
    });

    group.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let ops = DerivOps::from_basis(&GllBasis::new(4));
    let mut group = c.benchmark_group("cutplane_transpose_accumulate");
    group.throughput(Throughput::Elements(BATCH as u64));
    let f1 = make_batch(NGLL3_PADDED);
    let f2 = make_batch(NGLL3_PADDED);
    let f3 = make_batch(NGLL3_PADDED);

    group.bench_function("reference", |b| {
        let mut out = vec![0.0f32; NGLL3_PADDED];
        b.iter(|| {
            for e in 0..BATCH {
                let s = e * NGLL3_PADDED..(e + 1) * NGLL3_PADDED;
                reference::cutplane_transpose_accumulate(
                    black_box(&f1[s.clone()]),
                    &f2[s.clone()],
                    &f3[s],
                    &ops.hprime_wgll_t,
                    &mut out,
                );
            }
            black_box(out[0])
        })
    });

    group.bench_function("simd_4plus1", |b| {
        let mut out = vec![0.0f32; NGLL3_PADDED];
        b.iter(|| {
            for e in 0..BATCH {
                let s = e * NGLL3_PADDED..(e + 1) * NGLL3_PADDED;
                simd::cutplane_transpose_accumulate(
                    black_box(&f1[s.clone()]),
                    &f2[s.clone()],
                    &f3[s],
                    &ops.hprime_wgll_t,
                    &mut out,
                );
            }
            black_box(out[0])
        })
    });

    group.bench_function("blas_style", |b| {
        let mut out = vec![0.0f32; NGLL3_PADDED];
        b.iter(|| {
            for e in 0..BATCH {
                let s = e * NGLL3_PADDED..(e + 1) * NGLL3_PADDED;
                blas_style::cutplane_transpose_accumulate(
                    black_box(&f1[s.clone()]),
                    &f2[s.clone()],
                    &f3[s],
                    &ops.hprime_wgll_t,
                    &mut out,
                );
            }
            black_box(out[0])
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_derivatives, bench_transpose
}
criterion_main!(benches);
