//! E-ATT microbenchmark (paper §6): solid force kernel with and without
//! the 3-SLS memory-variable update. Paper: attenuation costs ~1.8× in
//! wall time at a nearly unchanged flop rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use specfem_gll::GllBasis;
use specfem_kernels::{DerivOps, FlopCounter, KernelVariant};
use specfem_mesh::{GlobalMesh, MeshParams, Partition};
use specfem_model::Prem;
use specfem_solver::assemble::{PrecomputedGeometry, WaveFields};
use specfem_solver::forces::{compute_solid_forces, AttenuationState};

fn bench_attenuation(c: &mut Criterion) {
    let params = MeshParams::new(6, 1);
    let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
    let local = Partition::serial(&mesh).extract(&mesh, 0);
    let geom = PrecomputedGeometry::compute(&local, None);
    let ops = DerivOps::from_basis(&GllBasis::new(4));

    let mut fields = WaveFields::zeros(local.nglob);
    for (p, coord) in local.coords.iter().enumerate() {
        fields.displ[p * 3] = (coord[0] / 2.0e6).sin() as f32;
        fields.displ[p * 3 + 2] = (coord[1] / 3.0e6).cos() as f32;
    }

    let mut group = c.benchmark_group("solid_forces");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("attenuation", "off"), |b| {
        let mut flops = FlopCounter::new();
        b.iter(|| {
            fields.accel.fill(0.0);
            compute_solid_forces(
                &local,
                &geom,
                &ops,
                KernelVariant::Simd,
                &mut fields,
                None,
                false,
                &mut flops,
            );
            black_box(fields.accel[0])
        })
    });
    group.bench_function(BenchmarkId::new("attenuation", "on"), |b| {
        let mut att = AttenuationState::new(&local, 1.0, 100.0);
        let mut flops = FlopCounter::new();
        b.iter(|| {
            fields.accel.fill(0.0);
            compute_solid_forces(
                &local,
                &geom,
                &ops,
                KernelVariant::Simd,
                &mut fields,
                Some(&mut att),
                false,
                &mut flops,
            );
            black_box(fields.accel[0])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_attenuation);
criterion_main!(benches);
