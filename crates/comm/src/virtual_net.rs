//! Deterministic network cost model: the `α + n/β` (latency + bandwidth)
//! time assigned to each message for *modeled* communication time.
//!
//! This is how the reproduction predicts communication behaviour on machines
//! it does not have: messages moved over in-process channels are *also*
//! charged against a profile of the target interconnect (InfiniBand CLOS on
//! Ranger, SeaStar/SeaStar2 3-D torus on the Cray XT4s), mirroring the
//! paper's §5 model-and-extrapolate methodology.

/// Latency/bandwidth profile of an interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Per-message latency (s).
    pub latency_s: f64,
    /// Point-to-point bandwidth (bytes/s).
    pub bandwidth_bps: f64,
    /// Extra per-hop latency × expected hop count (s) — torus networks pay
    /// distance, CLOS trees mostly do not.
    pub topology_penalty_s: f64,
}

impl NetworkProfile {
    /// Time to move one `bytes`-sized message.
    #[inline]
    pub fn message_time(&self, bytes: usize) -> f64 {
        self.latency_s + self.topology_penalty_s + bytes as f64 / self.bandwidth_bps
    }

    /// Time for a barrier/reduction over `p` ranks: a log-tree where each
    /// round moves `payload_bytes`. Control-only collectives (barriers)
    /// pass 0 and still pay at least a minimal 8-byte packet per round.
    #[inline]
    pub fn collective_time(&self, p: usize, payload_bytes: usize) -> f64 {
        let rounds = (p.max(2) as f64).log2().ceil();
        rounds * self.message_time(payload_bytes.max(8))
    }

    /// TACC Ranger: full-CLOS InfiniBand (paper §5).
    pub fn ranger_infiniband() -> Self {
        Self {
            name: "Ranger InfiniBand CLOS",
            latency_s: 2.3e-6,
            bandwidth_bps: 1.0e9,
            topology_penalty_s: 0.0,
        }
    }

    /// Cray XT4 SeaStar2 3-D torus (Franklin).
    pub fn xt4_seastar2() -> Self {
        Self {
            name: "XT4 SeaStar2 torus",
            latency_s: 4.5e-6,
            bandwidth_bps: 2.1e9,
            topology_penalty_s: 1.0e-6,
        }
    }

    /// Loopback profile for in-process testing (cheap but nonzero).
    pub fn loopback() -> Self {
        Self {
            name: "loopback",
            latency_s: 1.0e-7,
            bandwidth_bps: 1.0e10,
            topology_penalty_s: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_monotone_in_size() {
        let p = NetworkProfile::ranger_infiniband();
        assert!(p.message_time(1 << 20) > p.message_time(1 << 10));
        assert!(p.message_time(0) >= p.latency_s);
    }

    #[test]
    fn small_messages_latency_bound_large_bandwidth_bound() {
        let p = NetworkProfile::xt4_seastar2();
        // 8-byte message: dominated by latency.
        let t_small = p.message_time(8);
        assert!(t_small < 2.0 * (p.latency_s + p.topology_penalty_s));
        // 100 MB message: dominated by bandwidth.
        let t_big = p.message_time(100_000_000);
        assert!((t_big - 100_000_000.0 / p.bandwidth_bps).abs() / t_big < 0.01);
    }

    #[test]
    fn collective_time_grows_logarithmically() {
        let p = NetworkProfile::ranger_infiniband();
        let t64 = p.collective_time(64, 8);
        let t4096 = p.collective_time(4096, 8);
        assert!((t4096 / t64 - 2.0).abs() < 0.01); // log2: 6 rounds vs 12
    }

    #[test]
    fn collective_time_scales_with_payload() {
        let p = NetworkProfile::ranger_infiniband();
        // Same rank count, bigger payload per round → strictly slower.
        assert!(p.collective_time(64, 1 << 20) > p.collective_time(64, 8));
        // Sub-minimum payloads are clamped to the 8-byte control packet.
        assert_eq!(p.collective_time(64, 0), p.collective_time(64, 8));
    }
}
