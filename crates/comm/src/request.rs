//! Typed handles for non-blocking point-to-point operations.
//!
//! `isend_f32`/`irecv_f32` return a [`Request`]; the operation completes
//! when the request is passed to `wait`/`wait_all`. A `Request` records
//! when it was posted so backends can measure the *overlap window* — the
//! time between posting a message and asking for its completion, which is
//! exactly the computation the solver managed to hide behind the wire.

use std::time::{Duration, Instant};

/// What kind of operation a request tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// A posted send to `dest` with `tag`.
    Send { dest: usize, tag: u32 },
    /// A posted receive matching `(src, tag)`.
    Recv { src: usize, tag: u32 },
}

/// Handle for an in-flight non-blocking operation.
///
/// Must be completed with [`crate::Communicator::wait`] or
/// [`crate::Communicator::wait_all`]; dropping a request abandons the
/// operation (for sends this is harmless — sends are buffered — but an
/// abandoned receive leaves its message in the pending queue).
#[derive(Debug, Clone)]
pub struct Request {
    kind: RequestKind,
    posted: Instant,
}

impl Request {
    /// A posted send.
    pub fn send(dest: usize, tag: u32) -> Self {
        Self {
            kind: RequestKind::Send { dest, tag },
            posted: Instant::now(),
        }
    }

    /// A posted receive.
    pub fn recv(src: usize, tag: u32) -> Self {
        Self {
            kind: RequestKind::Recv { src, tag },
            posted: Instant::now(),
        }
    }

    /// The operation this request tracks.
    pub fn kind(&self) -> RequestKind {
        self.kind
    }

    /// True for receive requests (the ones that yield data at `wait`).
    pub fn is_recv(&self) -> bool {
        matches!(self.kind, RequestKind::Recv { .. })
    }

    /// The remote rank: destination for sends, source for receives.
    pub fn peer(&self) -> usize {
        match self.kind {
            RequestKind::Send { dest, .. } => dest,
            RequestKind::Recv { src, .. } => src,
        }
    }

    /// The message tag.
    pub fn tag(&self) -> u32 {
        match self.kind {
            RequestKind::Send { tag, .. } | RequestKind::Recv { tag, .. } => tag,
        }
    }

    /// Time since the request was posted — at `wait` entry this is the
    /// overlap window the caller achieved.
    pub fn age(&self) -> Duration {
        self.posted.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_accessors() {
        let s = Request::send(3, 100);
        assert!(!s.is_recv());
        assert_eq!(s.peer(), 3);
        assert_eq!(s.tag(), 100);
        assert_eq!(s.kind(), RequestKind::Send { dest: 3, tag: 100 });

        let r = Request::recv(1, 101);
        assert!(r.is_recv());
        assert_eq!(r.peer(), 1);
        assert_eq!(r.tag(), 101);
        assert!(r.age() >= Duration::ZERO);
    }
}
