//! Halo exchange: assembling shared-point contributions across ranks.
//!
//! In the SEM the contributions from all elements sharing a global grid
//! point must be summed before the time step completes (paper §2.4, Figure
//! 3). Points on inter-slice interfaces live on several ranks; each rank
//! holds a *partial* sum. The halo exchange sends each rank's partial values
//! for the shared points to every neighbouring rank and adds the received
//! partials, after which every copy of a shared point holds the full sum —
//! exactly the `assemble_MPI_*` pattern of SPECFEM3D_GLOBE.

use crate::error::CommError;
use crate::request::Request;
use crate::Communicator;

/// One neighbouring rank and the shared points with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Neighbor {
    /// The other rank.
    pub rank: usize,
    /// Local indices of the shared points, ordered by *global* point id so
    /// both sides enumerate identically.
    pub points: Vec<u32>,
}

/// The communication plan of one rank: its neighbours, sorted by rank so
/// that message posting order is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HaloPlan {
    /// Neighbours in ascending rank order.
    pub neighbors: Vec<Neighbor>,
}

impl HaloPlan {
    /// Total shared points over all interfaces (with multiplicity).
    pub fn shared_point_count(&self) -> usize {
        self.neighbors.iter().map(|n| n.points.len()).sum()
    }

    /// Validate internal invariants (sorted neighbours, no self edges,
    /// indices in range for a field of `npoints` points).
    pub fn validate(&self, my_rank: usize, npoints: usize) -> Result<(), String> {
        for w in self.neighbors.windows(2) {
            if w[0].rank >= w[1].rank {
                return Err(format!(
                    "neighbors not strictly ascending: {} then {}",
                    w[0].rank, w[1].rank
                ));
            }
        }
        for n in &self.neighbors {
            if n.rank == my_rank {
                return Err("self edge in halo plan".into());
            }
            if n.points.is_empty() {
                return Err(format!("empty interface with rank {}", n.rank));
            }
            for &p in &n.points {
                if p as usize >= npoints {
                    return Err(format!("point {p} out of range {npoints}"));
                }
            }
        }
        Ok(())
    }
}

/// Sum shared-point contributions of a multi-component field across ranks.
///
/// `field` is laid out `[point * ncomp + component]`. After the call every
/// copy of every shared point holds the sum of all ranks' partials.
pub fn assemble_halo(
    comm: &mut dyn Communicator,
    plan: &HaloPlan,
    field: &mut [f32],
    ncomp: usize,
    tag: u32,
) -> Result<(), CommError> {
    exchange_halo(comm, plan, field, ncomp, tag, |dst, src| *dst += src)
}

/// Generic halo exchange with a custom combine function (`+=` for assembly,
/// `=` would implement ghost-value copy).
pub fn exchange_halo(
    comm: &mut dyn Communicator,
    plan: &HaloPlan,
    field: &mut [f32],
    ncomp: usize,
    tag: u32,
    mut combine: impl FnMut(&mut f32, f32),
) -> Result<(), CommError> {
    if plan.neighbors.is_empty() {
        return Ok(());
    }
    let _span = specfem_obs::span("comm.halo");
    // Post all sends first (non-blocking semantics; avoids deadlock without
    // needing ordered pairwise exchanges).
    let mut sendbuf = Vec::new();
    for n in &plan.neighbors {
        sendbuf.clear();
        sendbuf.reserve(n.points.len() * ncomp);
        for &p in &n.points {
            let base = p as usize * ncomp;
            sendbuf.extend_from_slice(&field[base..base + ncomp]);
        }
        comm.send_f32(n.rank, tag, &sendbuf)?;
    }
    // Then receive from every neighbour and combine.
    for n in &plan.neighbors {
        let recv = comm.recv_f32(n.rank, tag)?;
        if recv.len() != n.points.len() * ncomp {
            return Err(CommError::Protocol {
                detail: format!(
                    "halo size mismatch with rank {}: got {} values, expected {}",
                    n.rank,
                    recv.len(),
                    n.points.len() * ncomp
                ),
            });
        }
        for (i, &p) in n.points.iter().enumerate() {
            let base = p as usize * ncomp;
            for c in 0..ncomp {
                combine(&mut field[base + c], recv[i * ncomp + c]);
            }
        }
    }
    Ok(())
}

/// Post the halo exchange for `field` without completing it: pack and
/// isend this rank's partials to every neighbour, post matching irecvs,
/// and return the receive requests (one per neighbour, ascending rank
/// order — the order [`finish_halo_assembly`] completes them in).
///
/// Between `post` and `finish` the caller may do arbitrary computation —
/// the overlap window — **provided it does not write the shared points of
/// `field`**: their partial sums were already captured into the send
/// buffers, so later writes would diverge from what the neighbours see.
pub fn post_halo_exchange(
    comm: &mut dyn Communicator,
    plan: &HaloPlan,
    field: &[f32],
    ncomp: usize,
    tag: u32,
) -> Result<Vec<Request>, CommError> {
    if plan.neighbors.is_empty() {
        return Ok(Vec::new());
    }
    let _span = specfem_obs::span("comm.halo.post");
    let mut sendbuf = Vec::new();
    for n in &plan.neighbors {
        sendbuf.clear();
        sendbuf.reserve(n.points.len() * ncomp);
        for &p in &n.points {
            let base = p as usize * ncomp;
            sendbuf.extend_from_slice(&field[base..base + ncomp]);
        }
        comm.isend_f32(n.rank, tag, &sendbuf)?;
    }
    let mut reqs = Vec::with_capacity(plan.neighbors.len());
    for n in &plan.neighbors {
        reqs.push(comm.irecv_f32(n.rank, tag)?);
    }
    Ok(reqs)
}

/// Complete a posted halo exchange: wait for each neighbour's partials in
/// ascending rank order and add them into `field`. The combine order is
/// identical to the blocking [`assemble_halo`], which is what keeps the
/// overlapped solver bit-identical to the reference path.
pub fn finish_halo_assembly(
    comm: &mut dyn Communicator,
    plan: &HaloPlan,
    field: &mut [f32],
    ncomp: usize,
    reqs: Vec<Request>,
) -> Result<(), CommError> {
    debug_assert_eq!(reqs.len(), plan.neighbors.len());
    if reqs.is_empty() {
        return Ok(());
    }
    let _span = specfem_obs::span("comm.halo.wait");
    for (n, req) in plan.neighbors.iter().zip(reqs) {
        let recv = comm
            .wait(req)?
            .expect("halo receive request must yield data");
        if recv.len() != n.points.len() * ncomp {
            return Err(CommError::Protocol {
                detail: format!(
                    "halo size mismatch with rank {}: got {} values, expected {}",
                    n.rank,
                    recv.len(),
                    n.points.len() * ncomp
                ),
            });
        }
        for (i, &p) in n.points.iter().enumerate() {
            let base = p as usize * ncomp;
            for c in 0..ncomp {
                field[base + c] += recv[i * ncomp + c];
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread::ThreadWorld;
    use crate::virtual_net::NetworkProfile;

    /// Two ranks sharing points {0, 1}; values should sum.
    #[test]
    fn two_rank_assembly_sums_partials() {
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |mut comm| {
            let rank = comm.rank();
            let plan = HaloPlan {
                neighbors: vec![Neighbor {
                    rank: 1 - rank,
                    points: vec![0, 1],
                }],
            };
            // 3 points, 1 component; point 2 is private.
            let mut field = vec![(rank + 1) as f32; 3];
            assemble_halo(&mut comm, &plan, &mut field, 1, 42).unwrap();
            field
        });
        // Shared points: 1 + 2 = 3 on both ranks; private points unchanged.
        assert_eq!(results[0], vec![3.0, 3.0, 1.0]);
        assert_eq!(results[1], vec![3.0, 3.0, 2.0]);
    }

    #[test]
    fn multicomponent_assembly() {
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |mut comm| {
            let rank = comm.rank();
            let plan = HaloPlan {
                neighbors: vec![Neighbor {
                    rank: 1 - rank,
                    points: vec![1],
                }],
            };
            // 2 points × 3 components.
            let mut field = vec![0.0f32; 6];
            field[3] = rank as f32 + 1.0; // point 1, comp x
            field[5] = 10.0 * (rank as f32 + 1.0); // point 1, comp z
            assemble_halo(&mut comm, &plan, &mut field, 3, 7).unwrap();
            field
        });
        for r in &results {
            assert_eq!(r[3], 3.0);
            assert_eq!(r[4], 0.0);
            assert_eq!(r[5], 30.0);
        }
    }

    #[test]
    fn four_rank_corner_point() {
        // A corner shared by 4 ranks: everyone must end with the 4-way sum,
        // which requires every pair to be neighbours (as SPECFEM's comm
        // lists guarantee for chunk corners).
        let results = ThreadWorld::run(4, NetworkProfile::loopback(), |mut comm| {
            let rank = comm.rank();
            let neighbors = (0..4)
                .filter(|&r| r != rank)
                .map(|r| Neighbor {
                    rank: r,
                    points: vec![0],
                })
                .collect();
            let plan = HaloPlan { neighbors };
            let mut field = vec![2.0f32.powi(rank as i32)]; // 1,2,4,8
            assemble_halo(&mut comm, &plan, &mut field, 1, 9).unwrap();
            field[0]
        });
        for v in results {
            assert_eq!(v, 15.0);
        }
    }

    #[test]
    fn plan_validation_catches_errors() {
        let bad_self = HaloPlan {
            neighbors: vec![Neighbor {
                rank: 3,
                points: vec![0],
            }],
        };
        assert!(bad_self.validate(3, 10).is_err());

        let bad_order = HaloPlan {
            neighbors: vec![
                Neighbor {
                    rank: 2,
                    points: vec![0],
                },
                Neighbor {
                    rank: 1,
                    points: vec![0],
                },
            ],
        };
        assert!(bad_order.validate(0, 10).is_err());

        let bad_range = HaloPlan {
            neighbors: vec![Neighbor {
                rank: 1,
                points: vec![99],
            }],
        };
        assert!(bad_range.validate(0, 10).is_err());

        let good = HaloPlan {
            neighbors: vec![
                Neighbor {
                    rank: 1,
                    points: vec![0, 5],
                },
                Neighbor {
                    rank: 2,
                    points: vec![5],
                },
            ],
        };
        assert!(good.validate(0, 10).is_ok());
        assert_eq!(good.shared_point_count(), 3);
    }

    #[test]
    fn empty_plan_is_noop() {
        let mut comm = crate::serial::SerialComm::new();
        let plan = HaloPlan::default();
        let mut field = vec![1.0f32, 2.0];
        assemble_halo(&mut comm, &plan, &mut field, 1, 0).unwrap();
        assert_eq!(field, vec![1.0, 2.0]);
    }

    #[test]
    fn split_halo_matches_blocking_bitwise() {
        // Same 4-rank corner exchange, run blocking and split (with fake
        // "inner computation" on private points during the window); the
        // assembled fields must agree bit-for-bit.
        let run = |split: bool| {
            ThreadWorld::run(4, NetworkProfile::loopback(), move |mut comm| {
                let rank = comm.rank();
                let neighbors = (0..4)
                    .filter(|&r| r != rank)
                    .map(|r| Neighbor {
                        rank: r,
                        points: vec![0],
                    })
                    .collect();
                let plan = HaloPlan { neighbors };
                // Point 0 shared, point 1 private.
                let mut field = vec![0.1f32 * (rank as f32 + 1.0), 0.0];
                if split {
                    let reqs = post_halo_exchange(&mut comm, &plan, &field, 1, 9).unwrap();
                    field[1] += 7.0; // private work inside the window
                    finish_halo_assembly(&mut comm, &plan, &mut field, 1, reqs).unwrap();
                } else {
                    assemble_halo(&mut comm, &plan, &mut field, 1, 9).unwrap();
                    field[1] += 7.0;
                }
                field
            })
        };
        let blocking = run(false);
        let split = run(true);
        for (b, s) in blocking.iter().zip(&split) {
            assert_eq!(b[0].to_bits(), s[0].to_bits());
            assert_eq!(b[1].to_bits(), s[1].to_bits());
        }
    }

    #[test]
    fn split_halo_empty_plan_is_noop() {
        let mut comm = crate::serial::SerialComm::new();
        let plan = HaloPlan::default();
        let mut field = vec![3.0f32];
        let reqs = post_halo_exchange(&mut comm, &plan, &field, 1, 0).unwrap();
        assert!(reqs.is_empty());
        finish_halo_assembly(&mut comm, &plan, &mut field, 1, reqs).unwrap();
        assert_eq!(field, vec![3.0]);
    }

    #[test]
    fn split_halo_length_mismatch_is_protocol_error() {
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |mut comm| {
            let rank = comm.rank();
            if rank == 0 {
                // Send a wrong-length buffer by hand on the halo tag, then
                // stay alive until rank 1's post arrives so its isend never
                // sees a torn-down endpoint.
                comm.send_f32(1, 9, &[1.0, 2.0, 3.0]).unwrap();
                let _ = comm.recv_f32(1, 9).unwrap();
                None
            } else {
                let plan = HaloPlan {
                    neighbors: vec![Neighbor {
                        rank: 0,
                        points: vec![0],
                    }],
                };
                let mut field = vec![0.0f32];
                let reqs = post_halo_exchange(&mut comm, &plan, &field, 1, 9).unwrap();
                Some(finish_halo_assembly(&mut comm, &plan, &mut field, 1, reqs).unwrap_err())
            }
        });
        assert!(matches!(
            results[1].clone().unwrap(),
            CommError::Protocol { .. }
        ));
    }
}
