//! Single-rank communicator: the degenerate world used for serial runs and
//! as the reference in parallel-vs-serial equivalence tests.

use crate::error::CommError;
use crate::request::{Request, RequestKind};
use crate::stats::{CommStats, StatsSnapshot};
use crate::Communicator;
use std::time::Duration;

/// A world of one. Point-to-point messaging to *any* other rank is a typed
/// error; self-sends are buffered and receivable (matching MPI semantics for
/// buffered self-communication).
#[derive(Debug, Default)]
pub struct SerialComm {
    self_queue: Vec<(u32, Vec<f32>)>,
    stats: CommStats,
}

impl SerialComm {
    /// Create the single-rank communicator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Communicator for SerialComm {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn send_f32(&mut self, dest: usize, tag: u32, data: &[f32]) -> Result<(), CommError> {
        if dest != 0 {
            return Err(CommError::InvalidRank {
                rank: dest,
                size: 1,
            });
        }
        self.stats.on_send(tag, data.len() * 4);
        self.self_queue.push((tag, data.to_vec()));
        Ok(())
    }

    fn recv_f32(&mut self, src: usize, tag: u32) -> Result<Vec<f32>, CommError> {
        if src != 0 {
            return Err(CommError::InvalidRank { rank: src, size: 1 });
        }
        // A receive with no buffered self-message can never complete — in a
        // world of one there is nobody else to send it.
        let pos =
            self.self_queue
                .iter()
                .position(|(t, _)| *t == tag)
                .ok_or(CommError::Timeout {
                    src,
                    tag,
                    waited: std::time::Duration::ZERO,
                })?;
        let (_, data) = self.self_queue.remove(pos);
        self.stats.on_recv(data.len() * 4);
        Ok(data)
    }

    fn isend_f32(&mut self, dest: usize, tag: u32, data: &[f32]) -> Result<Request, CommError> {
        self.send_f32(dest, tag, data)?;
        self.stats.on_post(Duration::ZERO);
        Ok(Request::send(dest, tag))
    }

    fn irecv_f32(&mut self, src: usize, tag: u32) -> Result<Request, CommError> {
        if src != 0 {
            return Err(CommError::InvalidRank { rank: src, size: 1 });
        }
        self.stats.on_post(Duration::ZERO);
        Ok(Request::recv(src, tag))
    }

    fn wait(&mut self, req: Request) -> Result<Option<Vec<f32>>, CommError> {
        let overlap = req.age();
        match req.kind() {
            RequestKind::Send { .. } => {
                self.stats.on_wait(overlap, Duration::ZERO);
                Ok(None)
            }
            RequestKind::Recv { src, tag } => {
                let data = self.recv_f32(src, tag)?;
                self.stats.on_wait(overlap, Duration::ZERO);
                Ok(Some(data))
            }
        }
    }

    fn barrier(&mut self) -> Result<(), CommError> {
        self.stats.collectives += 1;
        Ok(())
    }

    fn allreduce_sum(&mut self, x: f64) -> Result<f64, CommError> {
        self.stats.collectives += 1;
        Ok(x)
    }

    fn allreduce_min(&mut self, x: f64) -> Result<f64, CommError> {
        self.stats.collectives += 1;
        Ok(x)
    }

    fn allreduce_max(&mut self, x: f64) -> Result<f64, CommError> {
        self.stats.collectives += 1;
        Ok(x)
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collectives_are_identity() {
        let mut c = SerialComm::new();
        assert_eq!(c.allreduce_sum(3.5).unwrap(), 3.5);
        assert_eq!(c.allreduce_min(-1.0).unwrap(), -1.0);
        assert_eq!(c.allreduce_max(7.0).unwrap(), 7.0);
        c.barrier().unwrap();
        assert_eq!(c.stats().collectives, 4);
    }

    #[test]
    fn self_send_recv_roundtrip() {
        let mut c = SerialComm::new();
        c.send_f32(0, 3, &[1.0, 2.0]).unwrap();
        c.send_f32(0, 4, &[9.0]).unwrap();
        assert_eq!(c.recv_f32(0, 4).unwrap(), vec![9.0]);
        assert_eq!(c.recv_f32(0, 3).unwrap(), vec![1.0, 2.0]);
        assert_eq!(c.stats().bytes_sent, 12);
    }

    #[test]
    fn send_to_other_rank_is_an_error() {
        let mut c = SerialComm::new();
        assert_eq!(
            c.send_f32(1, 0, &[0.0]).unwrap_err(),
            CommError::InvalidRank { rank: 1, size: 1 }
        );
    }

    #[test]
    fn recv_with_no_buffered_message_is_a_timeout() {
        let mut c = SerialComm::new();
        assert!(matches!(
            c.recv_f32(0, 8).unwrap_err(),
            CommError::Timeout { src: 0, tag: 8, .. }
        ));
    }

    #[test]
    fn nonblocking_self_roundtrip() {
        let mut c = SerialComm::new();
        let sreq = c.isend_f32(0, 3, &[4.0, 5.0]).unwrap();
        let rreq = c.irecv_f32(0, 3).unwrap();
        assert_eq!(c.wait(rreq).unwrap(), Some(vec![4.0, 5.0]));
        assert!(c.wait(sreq).unwrap().is_none());
        assert_eq!(c.stats().posts, 2);
    }

    #[test]
    fn wait_on_unmatched_recv_is_a_timeout() {
        let mut c = SerialComm::new();
        let req = c.irecv_f32(0, 9).unwrap();
        assert!(matches!(
            c.wait(req).unwrap_err(),
            CommError::Timeout { src: 0, tag: 9, .. }
        ));
    }
}
