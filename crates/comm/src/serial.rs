//! Single-rank communicator: the degenerate world used for serial runs and
//! as the reference in parallel-vs-serial equivalence tests.

use crate::stats::{CommStats, StatsSnapshot};
use crate::Communicator;

/// A world of one. Point-to-point messaging to *any* other rank is a logic
/// error; self-sends are buffered and receivable (matching MPI semantics for
/// buffered self-communication).
#[derive(Debug, Default)]
pub struct SerialComm {
    self_queue: Vec<(u32, Vec<f32>)>,
    stats: CommStats,
}

impl SerialComm {
    /// Create the single-rank communicator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Communicator for SerialComm {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn send_f32(&mut self, dest: usize, tag: u32, data: &[f32]) {
        assert_eq!(dest, 0, "serial world has only rank 0");
        self.stats.on_send(data.len() * 4);
        self.self_queue.push((tag, data.to_vec()));
    }

    fn recv_f32(&mut self, src: usize, tag: u32) -> Vec<f32> {
        assert_eq!(src, 0, "serial world has only rank 0");
        let pos = self
            .self_queue
            .iter()
            .position(|(t, _)| *t == tag)
            .expect("no matching self-message buffered");
        let (_, data) = self.self_queue.remove(pos);
        self.stats.on_recv(data.len() * 4);
        data
    }

    fn barrier(&mut self) {
        self.stats.collectives += 1;
    }

    fn allreduce_sum(&mut self, x: f64) -> f64 {
        self.stats.collectives += 1;
        x
    }

    fn allreduce_min(&mut self, x: f64) -> f64 {
        self.stats.collectives += 1;
        x
    }

    fn allreduce_max(&mut self, x: f64) -> f64 {
        self.stats.collectives += 1;
        x
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collectives_are_identity() {
        let mut c = SerialComm::new();
        assert_eq!(c.allreduce_sum(3.5), 3.5);
        assert_eq!(c.allreduce_min(-1.0), -1.0);
        assert_eq!(c.allreduce_max(7.0), 7.0);
        c.barrier();
        assert_eq!(c.stats().collectives, 4);
    }

    #[test]
    fn self_send_recv_roundtrip() {
        let mut c = SerialComm::new();
        c.send_f32(0, 3, &[1.0, 2.0]);
        c.send_f32(0, 4, &[9.0]);
        assert_eq!(c.recv_f32(0, 4), vec![9.0]);
        assert_eq!(c.recv_f32(0, 3), vec![1.0, 2.0]);
        assert_eq!(c.stats().bytes_sent, 12);
    }

    #[test]
    #[should_panic(expected = "serial world")]
    fn send_to_other_rank_panics() {
        let mut c = SerialComm::new();
        c.send_f32(1, 0, &[0.0]);
    }
}
