//! Straggler/stall watchdog for the thread world.
//!
//! At 62K cores the failure mode that wastes the most allocation is not
//! the crash — it is the *silent* straggler: one rank descheduled, stuck
//! in a slow I/O path, or spinning in a kernel, while every other rank
//! blocks in the next halo exchange. The watchdog is the in-flight
//! instrument for that: every rank advances a heartbeat (two relaxed
//! atomic stores — step number and timestamp — per time step, nothing
//! at all when disabled), and a monitor thread owned by
//! [`ThreadWorld::try_run_watched`](crate::ThreadWorld::try_run_watched)
//! polls the heartbeats, computes cross-rank step skew, emits gauges
//! (`watchdog.max_skew_steps`, per-rank `watchdog.rank<N>.last_step`),
//! and flags ranks whose heartbeat age exceeds the configured timeout.
//!
//! A flagged stall *escalates* instead of hanging: the shared state
//! records the stalled rank, and every healthy rank's next
//! `on_time_step` returns [`CommError::Stalled`] naming it — the same
//! typed error path rank death and receive timeouts already use, so the
//! driver's retry/checkpoint machinery handles stragglers for free.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use crate::error::CommError;
use specfem_obs::{MetricsRegistry, MetricsSnapshot};

/// Watchdog configuration for a watched world.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Heartbeat age past which a rank counts as stalled.
    pub timeout: Duration,
    /// Monitor poll cadence; `None` derives `timeout / 4` (≥ 1 ms).
    pub poll_interval: Option<Duration>,
    /// Escalate a detected stall to [`CommError::Stalled`] on the
    /// healthy ranks (true, the default) or only observe and report.
    pub escalate: bool,
}

impl WatchdogConfig {
    /// A watchdog with the given stall threshold and default cadence.
    pub fn new(timeout: Duration) -> Self {
        Self {
            timeout,
            poll_interval: None,
            escalate: true,
        }
    }

    pub(crate) fn effective_poll(&self) -> Duration {
        self.poll_interval
            .unwrap_or_else(|| (self.timeout / 4).max(Duration::from_millis(1)))
    }
}

/// Sentinel for "no stalled rank recorded".
const NO_STALL: usize = usize::MAX;

struct HeartbeatCell {
    /// Last step beaten, stored as `step + 1` (0 = never stepped).
    step: AtomicU64,
    /// Timestamp of the last beat, ns since the shared obs epoch.
    at_ns: AtomicU64,
    /// Set when the rank's communicator is dropped (the rank returned).
    done: AtomicBool,
}

/// Shared heartbeat state between rank endpoints and the monitor.
///
/// All accesses are relaxed atomics: heartbeats are monotonic telemetry,
/// not synchronization, and a beat must cost nothing measurable on the
/// step path.
pub struct Heartbeats {
    cells: Vec<HeartbeatCell>,
    /// First stalled rank the monitor flagged ([`NO_STALL`] = none).
    stalled_rank: AtomicUsize,
    stalled_step: AtomicU64,
    stalled_age_ms: AtomicU64,
}

impl Heartbeats {
    pub(crate) fn new(size: usize) -> Self {
        let now = specfem_obs::timestamp_ns();
        Self {
            cells: (0..size)
                .map(|_| HeartbeatCell {
                    step: AtomicU64::new(0),
                    // Arm from world creation so a rank wedged in setup
                    // (never reaching step 0) still trips the timeout.
                    at_ns: AtomicU64::new(now),
                    done: AtomicBool::new(false),
                })
                .collect(),
            stalled_rank: AtomicUsize::new(NO_STALL),
            stalled_step: AtomicU64::new(0),
            stalled_age_ms: AtomicU64::new(0),
        }
    }

    /// Advance rank `rank`'s heartbeat to `istep`.
    #[inline]
    pub(crate) fn beat(&self, rank: usize, istep: usize) {
        let cell = &self.cells[rank];
        cell.step.store(istep as u64 + 1, Ordering::Relaxed);
        cell.at_ns
            .store(specfem_obs::timestamp_ns(), Ordering::Relaxed);
    }

    /// Mark rank `rank` finished (its endpoint was dropped).
    pub(crate) fn mark_done(&self, rank: usize) {
        self.cells[rank].done.store(true, Ordering::Relaxed);
    }

    /// The escalated stall, if the monitor flagged one: `(rank,
    /// last_step, age)` with `last_step == None` when the rank never
    /// completed a step.
    pub fn stall(&self) -> Option<(usize, Option<u64>, Duration)> {
        let rank = self.stalled_rank.load(Ordering::Relaxed);
        if rank == NO_STALL {
            return None;
        }
        let step = self.stalled_step.load(Ordering::Relaxed);
        Some((
            rank,
            step.checked_sub(1),
            Duration::from_millis(self.stalled_age_ms.load(Ordering::Relaxed)),
        ))
    }

    /// The [`CommError::Stalled`] for the escalated stall, if any.
    pub(crate) fn stall_error(&self) -> Option<CommError> {
        self.stall()
            .map(|(rank, last_step, age)| CommError::Stalled {
                rank,
                last_step,
                age,
            })
    }

    fn record_stall(&self, rank: usize, step_plus_one: u64, age: Duration) {
        // First stall wins; later flags keep the original culprit.
        if self
            .stalled_rank
            .compare_exchange(NO_STALL, rank, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.stalled_step.store(step_plus_one, Ordering::Relaxed);
            self.stalled_age_ms
                .store(age.as_millis() as u64, Ordering::Relaxed);
        }
    }
}

/// One stall observation from the monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallEvent {
    /// The flagged rank.
    pub rank: usize,
    /// Last completed step (`None` = stalled before its first step).
    pub last_step: Option<u64>,
    /// Heartbeat age when flagged.
    pub age: Duration,
}

/// What the monitor observed over the run.
#[derive(Debug, Clone, Default)]
pub struct WatchdogReport {
    /// The world size the monitor actually watched. On an elastic
    /// (shrink-to-survive) resume this is the *post-shrink* world — the
    /// heartbeat table is rebuilt per attempt, so the report and the
    /// `watchdog.*` gauges never echo the original world size.
    pub world_size: usize,
    /// Largest cross-rank step skew seen on any poll (max − min over
    /// ranks still running).
    pub max_skew_steps: u64,
    /// Final heartbeat step per rank (`None` = never stepped).
    pub last_steps: Vec<Option<u64>>,
    /// Ranks flagged as stalled, in detection order (one entry per rank).
    pub stalls: Vec<StallEvent>,
    /// Number of monitor polls taken.
    pub polls: u64,
    /// The monitor's gauges (`watchdog.max_skew_steps`, per-rank
    /// `watchdog.rank<N>.last_step`, `watchdog.stalled_ranks`).
    pub metrics: MetricsSnapshot,
}

impl WatchdogReport {
    /// Whether any rank was flagged as stalled.
    pub fn stalled(&self) -> bool {
        !self.stalls.is_empty()
    }
}

/// The monitor loop: runs on its own thread inside the watched world's
/// scope until `stop` is set, then takes a final sample and returns the
/// report. The monitor owns its [`MetricsRegistry`] — it is not a rank,
/// so it must not touch the thread-local rank recorder.
pub(crate) fn monitor_loop(
    hb: &Heartbeats,
    config: &WatchdogConfig,
    stop: &AtomicBool,
) -> WatchdogReport {
    let size = hb.cells.len();
    // Gauge names are `&'static str` by registry contract; the per-rank
    // names are built once per world and leaked (bounded by nranks).
    let rank_gauges: Vec<&'static str> = (0..size)
        .map(|r| &*Box::leak(format!("watchdog.rank{r}.last_step").into_boxed_str()))
        .collect();
    let mut metrics = MetricsRegistry::default();
    let mut report = WatchdogReport {
        world_size: size,
        last_steps: vec![None; size],
        ..WatchdogReport::default()
    };
    metrics.gauge_set("watchdog.world_size", size as f64);
    let poll = config.effective_poll();
    let timeout_ns = config.timeout.as_nanos() as u64;
    let mut flagged = vec![false; size];
    loop {
        let stopping = stop.load(Ordering::Acquire);
        let now = specfem_obs::timestamp_ns();
        let mut min_step = u64::MAX;
        let mut max_step = 0u64;
        let mut active = 0usize;
        for (rank, cell) in hb.cells.iter().enumerate() {
            let step = cell.step.load(Ordering::Relaxed);
            report.last_steps[rank] = step.checked_sub(1);
            metrics.gauge_set(rank_gauges[rank], step.saturating_sub(1) as f64);
            if cell.done.load(Ordering::Relaxed) {
                continue; // finished ranks are neither skewed nor stalled
            }
            active += 1;
            min_step = min_step.min(step);
            max_step = max_step.max(step);
            let age_ns = now.saturating_sub(cell.at_ns.load(Ordering::Relaxed));
            if !stopping && age_ns > timeout_ns && !flagged[rank] {
                flagged[rank] = true;
                let age = Duration::from_nanos(age_ns);
                report.stalls.push(StallEvent {
                    rank,
                    last_step: step.checked_sub(1),
                    age,
                });
                if config.escalate {
                    hb.record_stall(rank, step, age);
                }
            }
        }
        if active >= 2 {
            let skew = max_step - min_step;
            report.max_skew_steps = report.max_skew_steps.max(skew);
        }
        metrics.gauge_set("watchdog.max_skew_steps", report.max_skew_steps as f64);
        metrics.gauge_set("watchdog.stalled_ranks", report.stalls.len() as f64);
        report.polls += 1;
        if stopping {
            break;
        }
        std::thread::sleep(poll);
    }
    report.metrics = metrics.snapshot();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeats_record_steps_and_stall_escalation() {
        let hb = Heartbeats::new(3);
        hb.beat(0, 5);
        hb.beat(1, 7);
        assert!(hb.stall().is_none());
        assert!(hb.stall_error().is_none());
        hb.record_stall(2, 0, Duration::from_millis(40));
        let (rank, last, age) = hb.stall().unwrap();
        assert_eq!(rank, 2);
        assert_eq!(last, None); // never stepped
        assert_eq!(age, Duration::from_millis(40));
        match hb.stall_error().unwrap() {
            CommError::Stalled {
                rank, last_step, ..
            } => {
                assert_eq!(rank, 2);
                assert_eq!(last_step, None);
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
        // First stall wins.
        hb.record_stall(1, 8, Duration::from_millis(99));
        assert_eq!(hb.stall().unwrap().0, 2);
    }

    #[test]
    fn monitor_observes_skew_and_stalls() {
        let hb = Heartbeats::new(2);
        let stop = AtomicBool::new(false);
        let config = WatchdogConfig {
            timeout: Duration::from_millis(30),
            poll_interval: Some(Duration::from_millis(5)),
            escalate: true,
        };
        // Rank 0 races ahead; rank 1 beats once then goes silent.
        hb.beat(1, 0);
        let report = std::thread::scope(|s| {
            let h = s.spawn(|| monitor_loop(&hb, &config, &stop));
            for step in 0..20 {
                hb.beat(0, step);
                std::thread::sleep(Duration::from_millis(5));
            }
            stop.store(true, Ordering::Release);
            h.join().unwrap()
        });
        assert!(report.max_skew_steps > 0, "{report:?}");
        assert_eq!(report.world_size, 2);
        assert_eq!(report.metrics.gauges["watchdog.world_size"], 2.0);
        assert!(report.stalled());
        assert_eq!(report.stalls[0].rank, 1);
        assert_eq!(report.stalls[0].last_step, Some(0));
        assert!(hb.stall_error().is_some());
        assert!(report
            .metrics
            .gauges
            .contains_key("watchdog.max_skew_steps"));
        assert!(report
            .metrics
            .gauges
            .contains_key("watchdog.rank1.last_step"));
        assert_eq!(report.metrics.gauges["watchdog.rank0.last_step"], 19.0);
    }

    #[test]
    fn observe_only_mode_never_escalates() {
        let hb = Heartbeats::new(1);
        let stop = AtomicBool::new(false);
        let config = WatchdogConfig {
            timeout: Duration::from_millis(1),
            poll_interval: Some(Duration::from_millis(2)),
            escalate: false,
        };
        let report = std::thread::scope(|s| {
            let h = s.spawn(|| monitor_loop(&hb, &config, &stop));
            std::thread::sleep(Duration::from_millis(20));
            stop.store(true, Ordering::Release);
            h.join().unwrap()
        });
        assert!(report.stalled(), "the silent rank must still be flagged");
        assert!(hb.stall().is_none(), "but never escalated");
    }

    #[test]
    fn finished_ranks_are_not_flagged() {
        let hb = Heartbeats::new(2);
        hb.beat(0, 9);
        hb.beat(1, 9);
        hb.mark_done(0);
        hb.mark_done(1);
        let stop = AtomicBool::new(false);
        let config = WatchdogConfig::new(Duration::from_millis(1));
        let report = std::thread::scope(|s| {
            let h = s.spawn(|| monitor_loop(&hb, &config, &stop));
            std::thread::sleep(Duration::from_millis(20));
            stop.store(true, Ordering::Release);
            h.join().unwrap()
        });
        assert!(!report.stalled(), "{report:?}");
        assert_eq!(report.last_steps, vec![Some(9), Some(9)]);
    }

    #[test]
    fn default_poll_is_a_quarter_timeout() {
        let c = WatchdogConfig::new(Duration::from_millis(200));
        assert_eq!(c.effective_poll(), Duration::from_millis(50));
        let tiny = WatchdogConfig::new(Duration::from_micros(100));
        assert_eq!(tiny.effective_poll(), Duration::from_millis(1));
    }
}
