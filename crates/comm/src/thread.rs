//! The thread-backed communicator: every rank is an OS thread, messages are
//! buffers moved over crossbeam channels.

use crossbeam_channel::{unbounded, Receiver, Sender};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use crate::stats::{CommStats, StatsSnapshot};
use crate::virtual_net::NetworkProfile;
use crate::{tags, Communicator};

/// One in-flight message.
#[derive(Debug)]
enum Payload {
    F32(Vec<f32>),
    F64(Vec<f64>),
}

#[derive(Debug)]
struct Message {
    src: usize,
    tag: u32,
    payload: Payload,
}

impl Message {
    fn len_bytes(&self) -> usize {
        match &self.payload {
            Payload::F32(v) => v.len() * 4,
            Payload::F64(v) => v.len() * 8,
        }
    }
}

/// Factory for a set of connected [`ThreadComm`]s — the "world".
pub struct ThreadWorld;

impl ThreadWorld {
    /// Create `size` connected communicators charged against `profile`.
    pub fn create(size: usize, profile: NetworkProfile) -> Vec<ThreadComm> {
        assert!(size >= 1);
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (s, r) = unbounded::<Message>();
            senders.push(s);
            receivers.push(r);
        }
        let barrier = Arc::new(Barrier::new(size));
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| ThreadComm {
                rank,
                size,
                senders: senders.clone(),
                receiver,
                pending: Vec::new(),
                barrier: barrier.clone(),
                profile,
                stats: CommStats::default(),
            })
            .collect()
    }

    /// Run `f` on `size` ranks (one thread each) and collect the per-rank
    /// results in rank order. This is the `mpirun` analog used by tests,
    /// examples and benchmarks.
    pub fn run<R, F>(size: usize, profile: NetworkProfile, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(ThreadComm) -> R + Sync,
    {
        let comms = Self::create(size, profile);
        let mut out: Vec<Option<R>> = (0..size).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for comm in comms {
                let fref = &f;
                handles.push(scope.spawn(move || fref(comm)));
            }
            for (slot, h) in out.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("rank panicked"));
            }
        });
        out.into_iter().map(|r| r.unwrap()).collect()
    }
}

/// A rank endpoint of the thread world.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Out-of-order messages already pulled off the channel.
    pending: Vec<Message>,
    barrier: Arc<Barrier>,
    profile: NetworkProfile,
    stats: CommStats,
}

impl ThreadComm {
    /// The network profile messages are charged against.
    pub fn profile(&self) -> NetworkProfile {
        self.profile
    }

    fn send_message(&mut self, dest: usize, tag: u32, payload: Payload) {
        assert!(dest < self.size, "send to rank {dest} of {}", self.size);
        let msg = Message {
            src: self.rank,
            tag,
            payload,
        };
        let bytes = msg.len_bytes();
        self.stats.on_send(bytes);
        self.stats.on_modeled(self.profile.message_time(bytes));
        self.senders[dest].send(msg).expect("world disconnected");
    }

    fn recv_message(&mut self, src: usize, tag: u32) -> Message {
        // Check the out-of-order buffer first.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            return self.pending.swap_remove(pos);
        }
        loop {
            let msg = self.receiver.recv().expect("world disconnected");
            if msg.src == src && msg.tag == tag {
                return msg;
            }
            self.pending.push(msg);
        }
    }

    fn allreduce_with(&mut self, x: f64, op: fn(f64, f64) -> f64) -> f64 {
        let t0 = Instant::now();
        self.stats.collectives += 1;
        self.stats.on_modeled(self.profile.collective_time(self.size));
        let result = if self.size == 1 {
            x
        } else if self.rank == 0 {
            // Deterministic reduction in rank order, then broadcast.
            let mut acc = x;
            for src in 1..self.size {
                let msg = self.recv_message(src, tags::REDUCE);
                let v = match msg.payload {
                    Payload::F64(v) => v[0],
                    _ => unreachable!("reduce payload must be f64"),
                };
                acc = op(acc, v);
            }
            for dest in 1..self.size {
                self.send_message(dest, tags::BCAST, Payload::F64(vec![acc]));
            }
            acc
        } else {
            self.send_message(0, tags::REDUCE, Payload::F64(vec![x]));
            let msg = self.recv_message(0, tags::BCAST);
            match msg.payload {
                Payload::F64(v) => v[0],
                _ => unreachable!(),
            }
        };
        self.stats.on_wall(t0.elapsed());
        result
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send_f32(&mut self, dest: usize, tag: u32, data: &[f32]) {
        let t0 = Instant::now();
        self.send_message(dest, tag, Payload::F32(data.to_vec()));
        self.stats.on_wall(t0.elapsed());
    }

    fn recv_f32(&mut self, src: usize, tag: u32) -> Vec<f32> {
        let t0 = Instant::now();
        let msg = self.recv_message(src, tag);
        let bytes = msg.len_bytes();
        self.stats.on_recv(bytes);
        self.stats.on_modeled(self.profile.message_time(bytes));
        self.stats.on_wall(t0.elapsed());
        match msg.payload {
            Payload::F32(v) => v,
            _ => panic!("expected f32 payload for tag {tag}"),
        }
    }

    fn barrier(&mut self) {
        let t0 = Instant::now();
        self.stats.collectives += 1;
        self.stats.on_modeled(self.profile.collective_time(self.size));
        self.barrier.wait();
        self.stats.on_wall(t0.elapsed());
    }

    fn allreduce_sum(&mut self, x: f64) -> f64 {
        self.allreduce_with(x, |a, b| a + b)
    }

    fn allreduce_min(&mut self, x: f64) -> f64 {
        self.allreduce_with(x, f64::min)
    }

    fn allreduce_max(&mut self, x: f64) -> f64 {
        self.allreduce_with(x, f64::max)
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_exchange() {
        let results = ThreadWorld::run(4, NetworkProfile::loopback(), |mut comm| {
            let rank = comm.rank();
            let size = comm.size();
            let next = (rank + 1) % size;
            let prev = (rank + size - 1) % size;
            comm.send_f32(next, 7, &[rank as f32; 3]);
            let got = comm.recv_f32(prev, 7);
            (prev, got)
        });
        for (rank, (prev, got)) in results.iter().enumerate() {
            assert_eq!(got.len(), 3);
            assert_eq!(got[0], *prev as f32, "rank {rank}");
        }
    }

    #[test]
    fn allreduce_sum_min_max() {
        let results = ThreadWorld::run(6, NetworkProfile::loopback(), |mut comm| {
            let x = comm.rank() as f64 + 1.0;
            (
                comm.allreduce_sum(x),
                comm.allreduce_min(x),
                comm.allreduce_max(x),
            )
        });
        for (s, mn, mx) in results {
            assert_eq!(s, 21.0);
            assert_eq!(mn, 1.0);
            assert_eq!(mx, 6.0);
        }
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |mut comm| {
            if comm.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                comm.send_f32(1, 2, &[2.0]);
                comm.send_f32(1, 1, &[1.0]);
                vec![]
            } else {
                let a = comm.recv_f32(0, 1);
                let b = comm.recv_f32(0, 2);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn stats_track_bytes_and_modeled_time() {
        let results = ThreadWorld::run(2, NetworkProfile::ranger_infiniband(), |mut comm| {
            if comm.rank() == 0 {
                comm.send_f32(1, 5, &[0.0; 1000]);
            } else {
                let _ = comm.recv_f32(0, 5);
            }
            comm.barrier();
            comm.stats()
        });
        assert_eq!(results[0].bytes_sent, 4000);
        assert_eq!(results[0].messages_sent, 1);
        assert_eq!(results[1].bytes_received, 4000);
        assert!(results[0].modeled_time_s > 0.0);
        assert!(results[1].wall_time_s > 0.0);
    }

    #[test]
    fn reset_stats_clears() {
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |mut comm| {
            if comm.rank() == 0 {
                comm.send_f32(1, 9, &[1.0]);
            } else {
                let _ = comm.recv_f32(0, 9);
            }
            comm.reset_stats();
            comm.stats()
        });
        assert_eq!(results[0].bytes_sent, 0);
        assert_eq!(results[1].bytes_received, 0);
    }

    #[test]
    fn single_rank_world_collectives_are_identity() {
        let results = ThreadWorld::run(1, NetworkProfile::loopback(), |mut comm| {
            comm.barrier();
            comm.allreduce_sum(42.0)
        });
        assert_eq!(results, vec![42.0]);
    }

    #[test]
    fn many_ranks_heavy_traffic() {
        // All-to-all with distinct payload sizes; checks buffering under load.
        let n = 8;
        let results = ThreadWorld::run(n, NetworkProfile::loopback(), |mut comm| {
            let rank = comm.rank();
            for dest in 0..n {
                if dest != rank {
                    comm.send_f32(dest, 50, &vec![rank as f32; rank + 1]);
                }
            }
            let mut total = 0.0f32;
            for src in 0..n {
                if src != rank {
                    let v = comm.recv_f32(src, 50);
                    assert_eq!(v.len(), src + 1);
                    total += v.iter().sum::<f32>();
                }
            }
            total
        });
        // Σ_{src≠rank} src·(src+1)
        for (rank, total) in results.iter().enumerate() {
            let expect: f32 = (0..n)
                .filter(|&s| s != rank)
                .map(|s| (s * (s + 1)) as f32)
                .sum();
            assert_eq!(*total, expect);
        }
    }
}
