//! The thread-backed communicator: every rank is an OS thread, messages are
//! buffers moved over crossbeam channels.
//!
//! Blocking receives honour a configurable deadline ([`DEFAULT_RECV_TIMEOUT`]
//! unless overridden), so a stalled or dead peer surfaces as
//! [`CommError::Timeout`] naming the `(src, tag)` pair instead of wedging the
//! whole world. The barrier is message-based for the same reason: a
//! `std::sync::Barrier` would hang forever on the first dead rank.

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::CommError;
use crate::request::{Request, RequestKind};
use crate::stats::{CommStats, StatsSnapshot};
use crate::virtual_net::NetworkProfile;
use crate::watchdog::{monitor_loop, Heartbeats, WatchdogConfig, WatchdogReport};
use crate::{tags, Communicator};

/// Deadline applied to blocking receives unless the caller overrides it with
/// [`Communicator::set_recv_timeout`]. Generous enough for debug-build test
/// worlds, short enough that a wedged run fails in bounded time.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(30);

/// One in-flight message.
#[derive(Debug)]
pub(crate) enum Payload {
    F32(Vec<f32>),
    F64(Vec<f64>),
}

#[derive(Debug)]
pub(crate) struct Message {
    pub(crate) src: usize,
    pub(crate) tag: u32,
    pub(crate) payload: Payload,
}

impl Message {
    fn len_bytes(&self) -> usize {
        match &self.payload {
            Payload::F32(v) => v.len() * 4,
            Payload::F64(v) => v.len() * 8,
        }
    }
}

/// A rank whose thread panicked during [`ThreadWorld::try_run`].
#[derive(Debug, Clone)]
pub struct RankPanic {
    /// The rank that died.
    pub rank: usize,
    /// Best-effort panic message.
    pub message: String,
}

impl fmt::Display for RankPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank {} panicked: {}", self.rank, self.message)
    }
}

impl std::error::Error for RankPanic {}

/// Factory for a set of connected [`ThreadComm`]s — the "world".
pub struct ThreadWorld;

impl ThreadWorld {
    /// Create `size` connected communicators charged against `profile`.
    pub fn create(size: usize, profile: NetworkProfile) -> Vec<ThreadComm> {
        assert!(size >= 1);
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (s, r) = unbounded::<Message>();
            senders.push(s);
            receivers.push(r);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| ThreadComm {
                rank,
                size,
                senders: senders.clone(),
                receiver,
                pending: Vec::new(),
                recv_timeout: Some(DEFAULT_RECV_TIMEOUT),
                profile,
                stats: CommStats::default(),
                watchdog: None,
            })
            .collect()
    }

    /// Like [`ThreadWorld::create`], but every endpoint shares a
    /// [`Heartbeats`] board for the straggler watchdog: each rank's
    /// `on_time_step` advances its heartbeat (two relaxed stores) and
    /// checks the escalation flag. Pair with
    /// [`crate::watchdog::WatchdogConfig`] and a monitor (see
    /// [`ThreadWorld::try_run_watched`]).
    pub fn create_watched(
        size: usize,
        profile: NetworkProfile,
    ) -> (Vec<ThreadComm>, Arc<Heartbeats>) {
        let hb = Arc::new(Heartbeats::new(size));
        let mut comms = Self::create(size, profile);
        for c in &mut comms {
            c.watchdog = Some(Arc::clone(&hb));
        }
        (comms, hb)
    }

    /// Run `f` on `size` ranks (one thread each) and collect the per-rank
    /// results in rank order. This is the `mpirun` analog used by tests,
    /// examples and benchmarks. A rank panic propagates — use
    /// [`ThreadWorld::try_run`] to get per-rank errors instead.
    pub fn run<R, F>(size: usize, profile: NetworkProfile, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(ThreadComm) -> R + Sync,
    {
        Self::try_run(size, profile, f)
            .into_iter()
            .map(|r| r.unwrap_or_else(|p| panic!("rank panicked: {p}")))
            .collect()
    }

    /// Like [`ThreadWorld::run`], but a panicking rank yields
    /// `Err(RankPanic)` in its slot instead of tearing down the caller —
    /// the driver can report which rank died and decide to restart.
    pub fn try_run<R, F>(size: usize, profile: NetworkProfile, f: F) -> Vec<Result<R, RankPanic>>
    where
        R: Send,
        F: Fn(ThreadComm) -> R + Sync,
    {
        let comms = Self::create(size, profile);
        let mut out: Vec<Option<Result<R, RankPanic>>> = (0..size).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for comm in comms {
                let fref = &f;
                handles.push(scope.spawn(move || fref(comm)));
            }
            for (rank, (slot, h)) in out.iter_mut().zip(handles).enumerate() {
                *slot = Some(h.join().map_err(|payload| RankPanic {
                    rank,
                    message: panic_message(payload.as_ref()),
                }));
            }
        });
        out.into_iter().map(|r| r.unwrap()).collect()
    }

    /// Like [`ThreadWorld::try_run`], but with the straggler watchdog
    /// armed: a monitor thread polls every rank's heartbeat, tracks
    /// cross-rank step skew, flags ranks whose heartbeat age exceeds
    /// `config.timeout`, and (when `config.escalate`) makes every
    /// healthy rank's next `on_time_step` fail with
    /// [`CommError::Stalled`] naming the straggler. Returns the per-rank
    /// results plus the monitor's [`WatchdogReport`].
    pub fn try_run_watched<R, F>(
        size: usize,
        profile: NetworkProfile,
        config: WatchdogConfig,
        f: F,
    ) -> (Vec<Result<R, RankPanic>>, WatchdogReport)
    where
        R: Send,
        F: Fn(ThreadComm) -> R + Sync,
    {
        let (comms, hb) = Self::create_watched(size, profile);
        let mut out: Vec<Option<Result<R, RankPanic>>> = (0..size).map(|_| None).collect();
        let stop = AtomicBool::new(false);
        let mut report = WatchdogReport::default();
        std::thread::scope(|scope| {
            let monitor = {
                let hb = &hb;
                let config = &config;
                let stop = &stop;
                scope.spawn(move || monitor_loop(hb, config, stop))
            };
            let mut handles = Vec::new();
            for comm in comms {
                let fref = &f;
                handles.push(scope.spawn(move || fref(comm)));
            }
            for (rank, (slot, h)) in out.iter_mut().zip(handles).enumerate() {
                *slot = Some(h.join().map_err(|payload| RankPanic {
                    rank,
                    message: panic_message(payload.as_ref()),
                }));
            }
            stop.store(true, Ordering::Release);
            report = monitor.join().expect("watchdog monitor must not panic");
        });
        (out.into_iter().map(|r| r.unwrap()).collect(), report)
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A rank endpoint of the thread world.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Out-of-order messages already pulled off the channel, in arrival
    /// order — matching receives drain FIFO per `(src, tag)`.
    pending: Vec<Message>,
    /// Deadline for blocking receives; `None` waits forever.
    recv_timeout: Option<Duration>,
    profile: NetworkProfile,
    stats: CommStats,
    /// Shared heartbeat board when this endpoint belongs to a watched
    /// world; `None` (unwatched, the default) keeps `on_time_step` a
    /// no-op, preserving the zero-cost-when-disabled contract.
    watchdog: Option<Arc<Heartbeats>>,
}

impl Drop for ThreadComm {
    fn drop(&mut self) {
        // A dropped endpoint means the rank's closure returned (success
        // or error): tell the monitor so a finished rank is never
        // flagged as a straggler while slower ranks keep stepping.
        if let Some(hb) = &self.watchdog {
            hb.mark_done(self.rank);
        }
    }
}

impl ThreadComm {
    /// The network profile messages are charged against.
    pub fn profile(&self) -> NetworkProfile {
        self.profile
    }

    /// The currently configured receive deadline.
    pub fn recv_timeout(&self) -> Option<Duration> {
        self.recv_timeout
    }

    /// Send without statistics accounting (collective-internal traffic: the
    /// IPM methodology charges collectives once, not per internal message).
    fn send_raw(&mut self, dest: usize, tag: u32, payload: Payload) -> Result<(), CommError> {
        if dest >= self.size {
            return Err(CommError::InvalidRank {
                rank: dest,
                size: self.size,
            });
        }
        let msg = Message {
            src: self.rank,
            tag,
            payload,
        };
        self.senders[dest]
            .send(msg)
            .map_err(|_| CommError::Disconnected { peer: dest })
    }

    fn send_message(&mut self, dest: usize, tag: u32, payload: Payload) -> Result<(), CommError> {
        let bytes = match &payload {
            Payload::F32(v) => v.len() * 4,
            Payload::F64(v) => v.len() * 8,
        };
        self.send_raw(dest, tag, payload)?;
        self.stats.on_send(tag, bytes);
        self.stats.on_modeled(self.profile.message_time(bytes));
        Ok(())
    }

    fn recv_message(&mut self, src: usize, tag: u32) -> Result<Message, CommError> {
        if src >= self.size {
            return Err(CommError::InvalidRank {
                rank: src,
                size: self.size,
            });
        }
        // Check the out-of-order buffer first. `remove` (not `swap_remove`)
        // keeps the buffer in arrival order, so repeated receives on the
        // same `(src, tag)` drain FIFO — swap_remove would reorder messages
        // behind the extracted one and deliver later sends first.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            return Ok(self.pending.remove(pos));
        }
        let started = Instant::now();
        let deadline = self.recv_timeout.map(|t| started + t);
        loop {
            let next = match deadline {
                Some(d) => self.receiver.recv_deadline(d),
                None => self
                    .receiver
                    .recv()
                    .map_err(|_| RecvTimeoutError::Disconnected),
            };
            match next {
                Ok(msg) if msg.src == src && msg.tag == tag => return Ok(msg),
                Ok(msg) => self.pending.push(msg),
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CommError::Timeout {
                        src,
                        tag,
                        waited: started.elapsed(),
                    })
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected { peer: src })
                }
            }
        }
    }

    fn allreduce_with(&mut self, x: f64, op: fn(f64, f64) -> f64) -> Result<f64, CommError> {
        let _span = specfem_obs::span("comm.allreduce");
        let t0 = Instant::now();
        self.stats.collectives += 1;
        // One f64 travels per hop of the reduction tree.
        self.stats
            .on_modeled(self.profile.collective_time(self.size, 8));
        let result = if self.size == 1 {
            x
        } else if self.rank == 0 {
            // Deterministic reduction in rank order, then broadcast.
            let mut acc = x;
            for src in 1..self.size {
                let msg = self.recv_message(src, tags::REDUCE)?;
                let v = match msg.payload {
                    Payload::F64(v) if !v.is_empty() => v[0],
                    _ => {
                        return Err(CommError::PayloadType {
                            src,
                            tag: tags::REDUCE,
                        })
                    }
                };
                acc = op(acc, v);
            }
            for dest in 1..self.size {
                self.send_raw(dest, tags::BCAST, Payload::F64(vec![acc]))?;
            }
            acc
        } else {
            self.send_raw(0, tags::REDUCE, Payload::F64(vec![x]))?;
            let msg = self.recv_message(0, tags::BCAST)?;
            match msg.payload {
                Payload::F64(v) if !v.is_empty() => v[0],
                _ => {
                    return Err(CommError::PayloadType {
                        src: 0,
                        tag: tags::BCAST,
                    })
                }
            }
        };
        self.stats.on_wall(t0.elapsed());
        Ok(result)
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send_f32(&mut self, dest: usize, tag: u32, data: &[f32]) -> Result<(), CommError> {
        let _span = specfem_obs::span("comm.send");
        let t0 = Instant::now();
        self.send_message(dest, tag, Payload::F32(data.to_vec()))?;
        self.stats.on_wall(t0.elapsed());
        Ok(())
    }

    fn recv_f32(&mut self, src: usize, tag: u32) -> Result<Vec<f32>, CommError> {
        let _span = specfem_obs::span("comm.recv");
        let t0 = Instant::now();
        let msg = self.recv_message(src, tag)?;
        let waited = t0.elapsed();
        let bytes = msg.len_bytes();
        self.stats.on_recv(bytes);
        self.stats.on_modeled(self.profile.message_time(bytes));
        self.stats.on_wall(waited);
        specfem_obs::hist_record("comm.recv_wait_ns", waited.as_nanos() as u64);
        match msg.payload {
            Payload::F32(v) => Ok(v),
            _ => Err(CommError::PayloadType { src, tag }),
        }
    }

    fn isend_f32(&mut self, dest: usize, tag: u32, data: &[f32]) -> Result<Request, CommError> {
        // Channels are buffered, so posting *is* completion of the local
        // transfer — the request only carries completion semantics (and the
        // post timestamp the overlap-window measurement needs).
        let _span = specfem_obs::span("comm.isend");
        let t0 = Instant::now();
        self.send_message(dest, tag, Payload::F32(data.to_vec()))?;
        let elapsed = t0.elapsed();
        self.stats.on_post(elapsed);
        self.stats.on_wall(elapsed);
        Ok(Request::send(dest, tag))
    }

    fn irecv_f32(&mut self, src: usize, tag: u32) -> Result<Request, CommError> {
        if src >= self.size {
            return Err(CommError::InvalidRank {
                rank: src,
                size: self.size,
            });
        }
        let t0 = Instant::now();
        self.stats.on_post(t0.elapsed());
        Ok(Request::recv(src, tag))
    }

    fn wait(&mut self, req: Request) -> Result<Option<Vec<f32>>, CommError> {
        let overlap = req.age();
        match req.kind() {
            RequestKind::Send { .. } => {
                self.stats.on_wait(overlap, Duration::ZERO);
                Ok(None)
            }
            RequestKind::Recv { src, tag } => {
                let _span = specfem_obs::span("comm.wait");
                let t0 = Instant::now();
                let msg = self.recv_message(src, tag)?;
                let blocked = t0.elapsed();
                let bytes = msg.len_bytes();
                self.stats.on_recv(bytes);
                self.stats.on_modeled(self.profile.message_time(bytes));
                self.stats.on_wall(blocked);
                self.stats.on_wait(overlap, blocked);
                specfem_obs::hist_record("comm.overlap_window_ns", overlap.as_nanos() as u64);
                specfem_obs::hist_record("comm.wait_blocked_ns", blocked.as_nanos() as u64);
                match msg.payload {
                    Payload::F32(v) => Ok(Some(v)),
                    _ => Err(CommError::PayloadType { src, tag }),
                }
            }
        }
    }

    fn barrier(&mut self) -> Result<(), CommError> {
        // Message-based (gather to rank 0, then release) so the recv
        // deadline applies: a dead rank turns the barrier into a Timeout
        // naming the missing peer instead of an infinite hang.
        let _span = specfem_obs::span("comm.barrier");
        let t0 = Instant::now();
        self.stats.collectives += 1;
        self.stats
            .on_modeled(self.profile.collective_time(self.size, 0));
        if self.size > 1 {
            if self.rank == 0 {
                for src in 1..self.size {
                    self.recv_message(src, tags::BARRIER)?;
                }
                for dest in 1..self.size {
                    self.send_raw(dest, tags::BARRIER, Payload::F32(Vec::new()))?;
                }
            } else {
                self.send_raw(0, tags::BARRIER, Payload::F32(Vec::new()))?;
                self.recv_message(0, tags::BARRIER)?;
            }
        }
        self.stats.on_wall(t0.elapsed());
        Ok(())
    }

    fn allreduce_sum(&mut self, x: f64) -> Result<f64, CommError> {
        self.allreduce_with(x, |a, b| a + b)
    }

    fn allreduce_min(&mut self, x: f64) -> Result<f64, CommError> {
        self.allreduce_with(x, f64::min)
    }

    fn allreduce_max(&mut self, x: f64) -> Result<f64, CommError> {
        self.allreduce_with(x, f64::max)
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) {
        self.recv_timeout = timeout;
    }

    fn on_time_step(&mut self, istep: usize) -> Result<(), CommError> {
        if let Some(hb) = &self.watchdog {
            // Escalated stall anywhere in the world: abort this rank
            // with the typed error instead of letting it block on a
            // halo receive from the straggler until the deadline.
            if let Some(err) = hb.stall_error() {
                return Err(err);
            }
            hb.beat(self.rank, istep);
        }
        Ok(())
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_exchange() {
        let results = ThreadWorld::run(4, NetworkProfile::loopback(), |mut comm| {
            let rank = comm.rank();
            let size = comm.size();
            let next = (rank + 1) % size;
            let prev = (rank + size - 1) % size;
            comm.send_f32(next, 7, &[rank as f32; 3]).unwrap();
            let got = comm.recv_f32(prev, 7).unwrap();
            (prev, got)
        });
        for (rank, (prev, got)) in results.iter().enumerate() {
            assert_eq!(got.len(), 3);
            assert_eq!(got[0], *prev as f32, "rank {rank}");
        }
    }

    #[test]
    fn allreduce_sum_min_max() {
        let results = ThreadWorld::run(6, NetworkProfile::loopback(), |mut comm| {
            let x = comm.rank() as f64 + 1.0;
            (
                comm.allreduce_sum(x).unwrap(),
                comm.allreduce_min(x).unwrap(),
                comm.allreduce_max(x).unwrap(),
            )
        });
        for (s, mn, mx) in results {
            assert_eq!(s, 21.0);
            assert_eq!(mn, 1.0);
            assert_eq!(mx, 6.0);
        }
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |mut comm| {
            if comm.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                comm.send_f32(1, 2, &[2.0]).unwrap();
                comm.send_f32(1, 1, &[1.0]).unwrap();
                vec![]
            } else {
                let a = comm.recv_f32(0, 1).unwrap();
                let b = comm.recv_f32(0, 2).unwrap();
                vec![a[0], b[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn pending_buffer_drains_fifo_per_src_tag() {
        // Regression test for the swap_remove bug: two tags interleaved
        // from the same source must each come out in send order, even when
        // an interleaved receive forces everything through `pending`.
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |mut comm| {
            if comm.rank() == 0 {
                // Interleave two tag streams; all of these get buffered on
                // the receiver while it waits for the tag-9 flush marker.
                comm.send_f32(1, 1, &[10.0]).unwrap();
                comm.send_f32(1, 2, &[20.0]).unwrap();
                comm.send_f32(1, 1, &[11.0]).unwrap();
                comm.send_f32(1, 2, &[21.0]).unwrap();
                comm.send_f32(1, 1, &[12.0]).unwrap();
                comm.send_f32(1, 9, &[0.0]).unwrap();
                vec![]
            } else {
                // Force every earlier message into `pending`...
                let _ = comm.recv_f32(0, 9).unwrap();
                // ...then drain both streams: order within each (src, tag)
                // must be the send order.
                let mut got = Vec::new();
                for _ in 0..3 {
                    got.push(comm.recv_f32(0, 1).unwrap()[0]);
                }
                for _ in 0..2 {
                    got.push(comm.recv_f32(0, 2).unwrap()[0]);
                }
                got
            }
        });
        assert_eq!(results[1], vec![10.0, 11.0, 12.0, 20.0, 21.0]);
    }

    #[test]
    fn recv_times_out_naming_src_and_tag() {
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |mut comm| {
            if comm.rank() == 1 {
                comm.set_recv_timeout(Some(Duration::from_millis(50)));
                // Nobody ever sends on tag 77.
                Some(comm.recv_f32(0, 77).unwrap_err())
            } else {
                None
            }
        });
        match results[1].clone().unwrap() {
            CommError::Timeout { src, tag, waited } => {
                assert_eq!(src, 0);
                assert_eq!(tag, 77);
                assert!(waited >= Duration::from_millis(50));
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn wrong_payload_type_is_reported_not_panicked() {
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |mut comm| {
            if comm.rank() == 0 {
                // Hand-craft an f64 message on a tag the peer reads as f32.
                comm.send_raw(1, 5, Payload::F64(vec![1.0])).unwrap();
                None
            } else {
                Some(comm.recv_f32(0, 5))
            }
        });
        assert_eq!(
            results[1].clone().unwrap().unwrap_err(),
            CommError::PayloadType { src: 0, tag: 5 }
        );
    }

    #[test]
    fn invalid_rank_is_an_error() {
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |mut comm| {
            comm.send_f32(9, 0, &[1.0]).unwrap_err()
        });
        assert_eq!(results[0], CommError::InvalidRank { rank: 9, size: 2 });
    }

    #[test]
    fn try_run_reports_rank_panics_individually() {
        let results = ThreadWorld::try_run(3, NetworkProfile::loopback(), |comm| {
            if comm.rank() == 1 {
                panic!("injected failure on rank 1");
            }
            comm.rank()
        });
        assert_eq!(*results[0].as_ref().unwrap(), 0);
        assert_eq!(*results[2].as_ref().unwrap(), 2);
        let err = results[1].as_ref().unwrap_err();
        assert_eq!(err.rank, 1);
        assert!(err.message.contains("injected failure"), "{}", err.message);
    }

    #[test]
    fn barrier_times_out_when_a_rank_never_arrives() {
        let results = ThreadWorld::run(3, NetworkProfile::loopback(), |mut comm| {
            comm.set_recv_timeout(Some(Duration::from_millis(50)));
            if comm.rank() == 2 {
                // Rank 2 skips the barrier entirely (a "dead" rank).
                return None;
            }
            Some(comm.barrier())
        });
        // Rank 0 gathers entries and must report the missing peer.
        match results[0].clone().unwrap() {
            Err(CommError::Timeout { src: 2, tag, .. }) => assert_eq!(tag, tags::BARRIER),
            other => panic!("expected timeout on rank 2 entry, got {other:?}"),
        }
    }

    #[test]
    fn stats_track_bytes_and_modeled_time() {
        let results = ThreadWorld::run(2, NetworkProfile::ranger_infiniband(), |mut comm| {
            if comm.rank() == 0 {
                comm.send_f32(1, 5, &[0.0; 1000]).unwrap();
            } else {
                let _ = comm.recv_f32(0, 5).unwrap();
            }
            comm.barrier().unwrap();
            comm.stats()
        });
        assert_eq!(results[0].bytes_sent, 4000);
        assert_eq!(results[0].messages_sent, 1);
        assert_eq!(results[1].bytes_received, 4000);
        assert!(results[0].modeled_time_s > 0.0);
        assert!(results[1].wall_time_s > 0.0);
    }

    #[test]
    fn reset_stats_clears() {
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |mut comm| {
            if comm.rank() == 0 {
                comm.send_f32(1, 9, &[1.0]).unwrap();
            } else {
                let _ = comm.recv_f32(0, 9).unwrap();
            }
            comm.reset_stats();
            comm.stats()
        });
        assert_eq!(results[0].bytes_sent, 0);
        assert_eq!(results[1].bytes_received, 0);
    }

    #[test]
    fn single_rank_world_collectives_are_identity() {
        let results = ThreadWorld::run(1, NetworkProfile::loopback(), |mut comm| {
            comm.barrier().unwrap();
            comm.allreduce_sum(42.0).unwrap()
        });
        assert_eq!(results, vec![42.0]);
    }

    #[test]
    fn nonblocking_ring_exchange_matches_blocking() {
        let results = ThreadWorld::run(4, NetworkProfile::loopback(), |mut comm| {
            let rank = comm.rank();
            let size = comm.size();
            let next = (rank + 1) % size;
            let prev = (rank + size - 1) % size;
            let sreq = comm.isend_f32(next, 7, &[rank as f32; 3]).unwrap();
            let rreq = comm.irecv_f32(prev, 7).unwrap();
            let got = comm.wait(rreq).unwrap().expect("recv yields data");
            assert!(comm.wait(sreq).unwrap().is_none(), "send yields no data");
            (prev, got)
        });
        for (rank, (prev, got)) in results.iter().enumerate() {
            assert_eq!(got, &vec![*prev as f32; 3], "rank {rank}");
        }
    }

    #[test]
    fn wait_all_preserves_request_order() {
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |mut comm| {
            if comm.rank() == 0 {
                comm.send_f32(1, 1, &[1.0]).unwrap();
                comm.send_f32(1, 2, &[2.0]).unwrap();
                comm.send_f32(1, 1, &[1.5]).unwrap();
                vec![]
            } else {
                let reqs = vec![
                    comm.irecv_f32(0, 1).unwrap(),
                    comm.irecv_f32(0, 2).unwrap(),
                    comm.irecv_f32(0, 1).unwrap(),
                ];
                comm.wait_all(reqs)
                    .unwrap()
                    .into_iter()
                    .map(|d| d.unwrap()[0])
                    .collect()
            }
        });
        // Same-(src, tag) requests complete in send order (FIFO).
        assert_eq!(results[1], vec![1.0, 2.0, 1.5]);
    }

    #[test]
    fn wait_honours_recv_deadline() {
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |mut comm| {
            if comm.rank() == 1 {
                comm.set_recv_timeout(Some(Duration::from_millis(50)));
                let req = comm.irecv_f32(0, 88).unwrap();
                Some(comm.wait(req).unwrap_err())
            } else {
                None
            }
        });
        match results[1].clone().unwrap() {
            CommError::Timeout { src, tag, .. } => {
                assert_eq!(src, 0);
                assert_eq!(tag, 88);
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn irecv_from_invalid_rank_fails_at_post() {
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |mut comm| {
            comm.irecv_f32(5, 0).unwrap_err()
        });
        assert_eq!(results[0], CommError::InvalidRank { rank: 5, size: 2 });
    }

    #[test]
    fn stats_distinguish_post_overlap_and_wait() {
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |mut comm| {
            if comm.rank() == 0 {
                let req = comm.isend_f32(1, 3, &[0.0; 64]).unwrap();
                comm.wait(req).unwrap();
            } else {
                let req = comm.irecv_f32(0, 3).unwrap();
                // Simulated "inner computation" — this interval must show
                // up as overlap, not wait.
                std::thread::sleep(Duration::from_millis(20));
                let _ = comm.wait(req).unwrap();
            }
            comm.stats()
        });
        assert_eq!(results[0].posts, 1);
        assert_eq!(results[1].posts, 1);
        // The receiver slept 20 ms between post and wait; the message was
        // already in flight, so overlap dominates and wait stays small.
        assert!(results[1].overlap_time_s >= 0.02, "{:?}", results[1]);
        assert!(
            results[1].wait_time_s < results[1].overlap_time_s,
            "{:?}",
            results[1]
        );
    }

    #[test]
    fn watched_healthy_world_reports_no_stall() {
        let config = WatchdogConfig {
            timeout: Duration::from_secs(5),
            poll_interval: Some(Duration::from_millis(2)),
            escalate: true,
        };
        let (results, report) =
            ThreadWorld::try_run_watched(3, NetworkProfile::loopback(), config, |mut comm| {
                for istep in 0..20 {
                    comm.on_time_step(istep)?;
                    comm.barrier()?;
                }
                Ok::<usize, CommError>(comm.rank())
            });
        for (rank, r) in results.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap().as_ref().unwrap(), rank);
        }
        assert!(!report.stalled(), "{report:?}");
        assert_eq!(report.last_steps, vec![Some(19), Some(19), Some(19)]);
        // The barrier keeps ranks in lockstep: skew stays tiny.
        assert!(report.max_skew_steps <= 1, "{report:?}");
    }

    #[test]
    fn watched_world_escalates_a_stalled_rank() {
        let config = WatchdogConfig {
            timeout: Duration::from_millis(40),
            poll_interval: Some(Duration::from_millis(5)),
            escalate: true,
        };
        let (results, report) =
            ThreadWorld::try_run_watched(3, NetworkProfile::loopback(), config, |mut comm| {
                let rank = comm.rank();
                for istep in 0..1000 {
                    comm.on_time_step(istep)?;
                    // Healthy ranks step at a steady cadence; rank 1 is
                    // two hundred times slower — a wedged straggler.
                    let step_time = if rank == 1 { 200 } else { 1 };
                    std::thread::sleep(Duration::from_millis(step_time));
                }
                Ok::<usize, CommError>(rank)
            });
        assert!(report.stalled(), "{report:?}");
        assert_eq!(report.stalls[0].rank, 1);
        // The healthy ranks abort with the typed stall error naming the
        // straggler instead of running to completion or hanging.
        for rank in [0, 2] {
            match results[rank].as_ref().unwrap() {
                Err(CommError::Stalled { rank: culprit, .. }) => assert_eq!(*culprit, 1),
                other => panic!("rank {rank}: expected Stalled, got {other:?}"),
            }
        }
        assert!(
            report.metrics.gauges["watchdog.stalled_ranks"] >= 1.0,
            "{report:?}"
        );
    }

    #[test]
    fn unwatched_comm_on_time_step_is_a_no_op() {
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |mut comm| {
            for istep in 0..5 {
                comm.on_time_step(istep).unwrap();
            }
            comm.rank()
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn many_ranks_heavy_traffic() {
        // All-to-all with distinct payload sizes; checks buffering under load.
        let n = 8;
        let results = ThreadWorld::run(n, NetworkProfile::loopback(), |mut comm| {
            let rank = comm.rank();
            for dest in 0..n {
                if dest != rank {
                    comm.send_f32(dest, 50, &vec![rank as f32; rank + 1])
                        .unwrap();
                }
            }
            let mut total = 0.0f32;
            for src in 0..n {
                if src != rank {
                    let v = comm.recv_f32(src, 50).unwrap();
                    assert_eq!(v.len(), src + 1);
                    total += v.iter().sum::<f32>();
                }
            }
            total
        });
        // Σ_{src≠rank} src·(src+1)
        for (rank, total) in results.iter().enumerate() {
            let expect: f32 = (0..n)
                .filter(|&s| s != rank)
                .map(|s| (s * (s + 1)) as f32)
                .sum();
            assert_eq!(*total, expect);
        }
    }
}
