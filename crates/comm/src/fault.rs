//! Deterministic fault injection for the communication layer.
//!
//! At 62K cores failures are routine, not exceptional: the paper's target
//! machines lose nodes mid-run as a matter of course. [`FaultyComm`] wraps
//! any [`Communicator`] and injects the canonical failure modes — message
//! delay, message loss, payload corruption, and rank death — at chosen time
//! steps, driven by a seeded PRNG so every run of a given [`FaultPlan`] is
//! bit-identical. Per-rank fault accounting rides alongside the IPM-style
//! communication statistics, so ablation harnesses can report exactly what
//! was injected where.

use std::time::Duration;

use crate::error::CommError;
use crate::request::Request;
use crate::stats::StatsSnapshot;
use crate::Communicator;

/// What a fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Stall each affected send by this many microseconds (slow link /
    /// congested switch).
    Delay {
        /// Injected per-message delay.
        micros: u64,
    },
    /// Silently drop affected outgoing messages — the receiver sees a
    /// [`CommError::Timeout`].
    Drop,
    /// Flip bits in affected outgoing payloads (undetected link or memory
    /// corruption; the receiver gets plausible-but-wrong physics).
    Corrupt,
    /// The rank dies: every communicator operation from the trigger step on
    /// fails with [`CommError::RankDead`].
    Die,
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// The rank the fault applies to.
    pub rank: usize,
    /// First time step (0-based) at which the fault is active.
    pub at_step: usize,
    /// How many steps it stays active; `None` means until the end of the
    /// run. Ignored for [`FaultKind::Die`] (death is permanent).
    pub duration_steps: Option<usize>,
    /// Per-message probability in `[0, 1]` that the fault fires (1.0 =
    /// every message). Ignored for [`FaultKind::Die`].
    pub probability: f64,
    /// The failure mode.
    pub kind: FaultKind,
}

impl FaultSpec {
    fn active_at(&self, step: usize) -> bool {
        if step < self.at_step {
            return false;
        }
        match self.duration_steps {
            Some(d) => step < self.at_step + d,
            None => true,
        }
    }
}

/// How an on-disk artifact (checkpoint/mesh container) gets damaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactFaultKind {
    /// Flip one bit in the middle of the file — a chunk CRC must catch it.
    BitFlip,
    /// Cut the file short — the footer parse must reject it.
    Truncate,
    /// Scribble over the leading magic/version words.
    TornHeader,
}

/// One scheduled artifact fault, keyed by write sequence number: the
/// `nth_write`-th artifact (0-based) a store completes gets damaged
/// immediately after it lands on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactFaultSpec {
    /// Which completed artifact write the fault hits (0-based).
    pub nth_write: usize,
    /// The damage applied.
    pub kind: ArtifactFaultKind,
}

/// A deterministic schedule of faults for a whole world.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-rank PRNGs that decide probabilistic faults.
    pub seed: u64,
    /// The scheduled faults.
    pub faults: Vec<FaultSpec>,
    /// Scheduled artifact (storage) faults, applied by the stores in
    /// `specfem-io` rather than the communicator.
    pub artifact_faults: Vec<ArtifactFaultSpec>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0x5eed_f417,
            faults: Vec::new(),
            artifact_faults: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
            artifact_faults: Vec::new(),
        }
    }

    /// Schedule `rank` to die at `step` (builder style).
    pub fn kill(mut self, rank: usize, step: usize) -> Self {
        self.faults.push(FaultSpec {
            rank,
            at_step: step,
            duration_steps: None,
            probability: 1.0,
            kind: FaultKind::Die,
        });
        self
    }

    /// Delay every message `rank` sends from `step` on, for `steps` steps.
    pub fn delay(mut self, rank: usize, step: usize, steps: usize, micros: u64) -> Self {
        self.faults.push(FaultSpec {
            rank,
            at_step: step,
            duration_steps: Some(steps),
            probability: 1.0,
            kind: FaultKind::Delay { micros },
        });
        self
    }

    /// Drop each message `rank` sends during the window with `probability`.
    pub fn drop_messages(
        mut self,
        rank: usize,
        step: usize,
        steps: usize,
        probability: f64,
    ) -> Self {
        self.faults.push(FaultSpec {
            rank,
            at_step: step,
            duration_steps: Some(steps),
            probability,
            kind: FaultKind::Drop,
        });
        self
    }

    /// Corrupt each payload `rank` sends during the window with
    /// `probability`.
    pub fn corrupt(mut self, rank: usize, step: usize, steps: usize, probability: f64) -> Self {
        self.faults.push(FaultSpec {
            rank,
            at_step: step,
            duration_steps: Some(steps),
            probability,
            kind: FaultKind::Corrupt,
        });
        self
    }

    /// Damage the `nth_write`-th artifact a store completes (builder
    /// style). The stores in `specfem-io` consult the plan after each
    /// atomic write and apply the damage to the just-landed file, so the
    /// recovery path (typed error + fall back to the previous good
    /// generation) is exercised end to end.
    pub fn corrupt_artifact(mut self, nth_write: usize, kind: ArtifactFaultKind) -> Self {
        self.artifact_faults
            .push(ArtifactFaultSpec { nth_write, kind });
        self
    }

    /// The faults that apply to `rank`.
    pub fn for_rank(&self, rank: usize) -> Vec<FaultSpec> {
        self.faults
            .iter()
            .filter(|f| f.rank == rank)
            .cloned()
            .collect()
    }

    /// The artifact fault scheduled for completed write number `seq`
    /// (0-based), if any.
    pub fn artifact_fault(&self, seq: usize) -> Option<ArtifactFaultKind> {
        self.artifact_faults
            .iter()
            .find(|f| f.nth_write == seq)
            .map(|f| f.kind)
    }
}

/// Per-rank accounting of injected faults, reported next to the IPM-style
/// [`StatsSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages stalled by an active delay fault.
    pub delays_injected: u64,
    /// Messages silently dropped.
    pub messages_dropped: u64,
    /// Payloads bit-flipped.
    pub payloads_corrupted: u64,
    /// Step at which this rank died, if it did.
    pub died_at_step: Option<usize>,
}

/// SplitMix64 — inlined so the comm crate stays dependency-free; good
/// enough statistics for Bernoulli fault draws and fully deterministic.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Decorator injecting the faults of a [`FaultPlan`] into an inner
/// communicator. The solver drives it through
/// [`Communicator::on_time_step`]; everything else forwards.
pub struct FaultyComm<C: Communicator> {
    inner: C,
    faults: Vec<FaultSpec>,
    rng: SplitMix64,
    step: usize,
    fault_stats: FaultStats,
}

impl<C: Communicator> FaultyComm<C> {
    /// Wrap `inner`, taking this rank's slice of `plan`. The PRNG is seeded
    /// from `plan.seed` and the rank so ranks draw independent but
    /// reproducible streams.
    pub fn new(inner: C, plan: &FaultPlan) -> Self {
        let rank = inner.rank() as u64;
        Self {
            faults: plan.for_rank(inner.rank()),
            rng: SplitMix64::new(plan.seed ^ rank.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            step: 0,
            fault_stats: FaultStats::default(),
            inner,
        }
    }

    /// Injected-fault accounting for this rank.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// The wrapped communicator.
    pub fn into_inner(self) -> C {
        self.inner
    }

    fn dead_error(&self) -> Option<CommError> {
        self.fault_stats
            .died_at_step
            .map(|step| CommError::RankDead {
                rank: self.inner.rank(),
                step,
            })
    }

    /// Decide what happens to one outgoing message: `None` = drop it,
    /// otherwise (delay, corrupt) directives.
    fn outgoing_action(&mut self) -> Option<(Duration, bool)> {
        let mut delay = Duration::ZERO;
        let mut corrupt = false;
        for i in 0..self.faults.len() {
            let f = self.faults[i].clone();
            if !f.active_at(self.step) {
                continue;
            }
            match f.kind {
                FaultKind::Die => {}
                FaultKind::Delay { micros } => {
                    if self.rng.next_f64() < f.probability {
                        delay += Duration::from_micros(micros);
                        self.fault_stats.delays_injected += 1;
                    }
                }
                FaultKind::Drop => {
                    if self.rng.next_f64() < f.probability {
                        self.fault_stats.messages_dropped += 1;
                        return None;
                    }
                }
                FaultKind::Corrupt => {
                    if self.rng.next_f64() < f.probability {
                        self.fault_stats.payloads_corrupted += 1;
                        corrupt = true;
                    }
                }
            }
        }
        Some((delay, corrupt))
    }
}

impl<C: Communicator> Communicator for FaultyComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send_f32(&mut self, dest: usize, tag: u32, data: &[f32]) -> Result<(), CommError> {
        if let Some(e) = self.dead_error() {
            return Err(e);
        }
        match self.outgoing_action() {
            None => Ok(()), // dropped on the (virtual) wire
            Some((delay, corrupt)) => {
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                if corrupt {
                    let mut bad = data.to_vec();
                    if !bad.is_empty() {
                        // Flip a mantissa+sign bit pattern in one element —
                        // deterministic position from the PRNG.
                        let idx = (self.rng.next_u64() as usize) % bad.len();
                        bad[idx] = f32::from_bits(bad[idx].to_bits() ^ 0x8040_0001);
                    }
                    self.inner.send_f32(dest, tag, &bad)
                } else {
                    self.inner.send_f32(dest, tag, data)
                }
            }
        }
    }

    fn recv_f32(&mut self, src: usize, tag: u32) -> Result<Vec<f32>, CommError> {
        if let Some(e) = self.dead_error() {
            return Err(e);
        }
        self.inner.recv_f32(src, tag)
    }

    fn isend_f32(&mut self, dest: usize, tag: u32, data: &[f32]) -> Result<Request, CommError> {
        // Post-time fault site: a dead rank cannot post, and active
        // drop/delay/corrupt faults hit the outgoing payload exactly as
        // they do on the blocking path.
        if let Some(e) = self.dead_error() {
            return Err(e);
        }
        match self.outgoing_action() {
            None => Ok(Request::send(dest, tag)), // dropped on the wire
            Some((delay, corrupt)) => {
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                if corrupt {
                    let mut bad = data.to_vec();
                    if !bad.is_empty() {
                        let idx = (self.rng.next_u64() as usize) % bad.len();
                        bad[idx] = f32::from_bits(bad[idx].to_bits() ^ 0x8040_0001);
                    }
                    self.inner.isend_f32(dest, tag, &bad)
                } else {
                    self.inner.isend_f32(dest, tag, data)
                }
            }
        }
    }

    fn irecv_f32(&mut self, src: usize, tag: u32) -> Result<Request, CommError> {
        if let Some(e) = self.dead_error() {
            return Err(e);
        }
        self.inner.irecv_f32(src, tag)
    }

    fn wait(&mut self, req: Request) -> Result<Option<Vec<f32>>, CommError> {
        // Wait-time fault site: a rank killed *between* post and wait (the
        // overlap window is where deaths land in practice) surfaces the
        // typed error here instead of hanging on the inner receive.
        if let Some(e) = self.dead_error() {
            return Err(e);
        }
        self.inner.wait(req)
    }

    fn wait_all(&mut self, reqs: Vec<Request>) -> Result<Vec<Option<Vec<f32>>>, CommError> {
        if let Some(e) = self.dead_error() {
            return Err(e);
        }
        self.inner.wait_all(reqs)
    }

    fn barrier(&mut self) -> Result<(), CommError> {
        if let Some(e) = self.dead_error() {
            return Err(e);
        }
        self.inner.barrier()
    }

    fn allreduce_sum(&mut self, x: f64) -> Result<f64, CommError> {
        if let Some(e) = self.dead_error() {
            return Err(e);
        }
        self.inner.allreduce_sum(x)
    }

    fn allreduce_min(&mut self, x: f64) -> Result<f64, CommError> {
        if let Some(e) = self.dead_error() {
            return Err(e);
        }
        self.inner.allreduce_min(x)
    }

    fn allreduce_max(&mut self, x: f64) -> Result<f64, CommError> {
        if let Some(e) = self.dead_error() {
            return Err(e);
        }
        self.inner.allreduce_max(x)
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) {
        self.inner.set_recv_timeout(timeout);
    }

    fn on_time_step(&mut self, istep: usize) -> Result<(), CommError> {
        self.step = istep;
        if self.fault_stats.died_at_step.is_none() {
            let death = self
                .faults
                .iter()
                .filter(|f| f.kind == FaultKind::Die && istep >= f.at_step)
                .map(|f| f.at_step)
                .min();
            if let Some(step) = death {
                self.fault_stats.died_at_step = Some(step);
            }
        }
        match self.dead_error() {
            Some(e) => Err(e),
            None => self.inner.on_time_step(istep),
        }
    }

    fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread::ThreadWorld;
    use crate::virtual_net::NetworkProfile;
    use std::time::Duration;

    #[test]
    fn fault_spec_windows() {
        let f = FaultSpec {
            rank: 0,
            at_step: 10,
            duration_steps: Some(5),
            probability: 1.0,
            kind: FaultKind::Drop,
        };
        assert!(!f.active_at(9));
        assert!(f.active_at(10));
        assert!(f.active_at(14));
        assert!(!f.active_at(15));
        let forever = FaultSpec {
            duration_steps: None,
            ..f
        };
        assert!(forever.active_at(1_000_000));
    }

    #[test]
    fn artifact_faults_are_keyed_by_write_sequence() {
        let plan = FaultPlan::new(1)
            .corrupt_artifact(0, ArtifactFaultKind::BitFlip)
            .corrupt_artifact(2, ArtifactFaultKind::Truncate);
        assert_eq!(plan.artifact_fault(0), Some(ArtifactFaultKind::BitFlip));
        assert_eq!(plan.artifact_fault(1), None);
        assert_eq!(plan.artifact_fault(2), Some(ArtifactFaultKind::Truncate));
        // Comm-side faulting is unaffected by artifact faults.
        assert!(plan.for_rank(0).is_empty());
    }

    #[test]
    fn killed_rank_errors_and_peer_times_out() {
        let plan = FaultPlan::new(42).kill(1, 3);
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |comm| {
            let rank = comm.rank();
            let mut comm = FaultyComm::new(comm, &plan);
            comm.set_recv_timeout(Some(Duration::from_millis(50)));
            let mut outcome = Vec::new();
            for istep in 0..5 {
                if let Err(e) = comm.on_time_step(istep) {
                    outcome.push(format!("step {istep}: {e}"));
                    break;
                }
                if rank == 0 {
                    // Rank 0 expects a message from rank 1 each step.
                    match comm.recv_f32(1, 7) {
                        Ok(_) => {}
                        Err(e) => {
                            outcome.push(format!("step {istep}: {e}"));
                            break;
                        }
                    }
                } else {
                    comm.send_f32(0, 7, &[istep as f32]).unwrap();
                }
            }
            (outcome, comm.fault_stats())
        });
        // Rank 1 died at step 3 with a typed error...
        let (out1, stats1) = &results[1];
        assert_eq!(stats1.died_at_step, Some(3));
        assert!(out1[0].contains("dead"), "{out1:?}");
        // ...and rank 0 observed the death as a timeout naming (src 1, tag 7).
        let (out0, _) = &results[0];
        assert!(out0[0].contains("src 1"), "{out0:?}");
        assert!(out0[0].contains("tag 7"), "{out0:?}");
    }

    #[test]
    fn dropped_message_surfaces_as_timeout() {
        let plan = FaultPlan::new(7).drop_messages(0, 0, 100, 1.0);
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |comm| {
            let rank = comm.rank();
            let mut comm = FaultyComm::new(comm, &plan);
            comm.set_recv_timeout(Some(Duration::from_millis(50)));
            comm.on_time_step(0).unwrap();
            if rank == 0 {
                comm.send_f32(1, 3, &[1.0, 2.0]).unwrap();
                (comm.fault_stats().messages_dropped, None)
            } else {
                (0, Some(comm.recv_f32(0, 3).unwrap_err()))
            }
        });
        assert_eq!(results[0].0, 1);
        assert!(matches!(
            results[1].1,
            Some(CommError::Timeout { src: 0, tag: 3, .. })
        ));
    }

    #[test]
    fn corruption_changes_payload_but_not_length() {
        let plan = FaultPlan::new(9).corrupt(0, 0, 10, 1.0);
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |comm| {
            let rank = comm.rank();
            let mut comm = FaultyComm::new(comm, &plan);
            comm.on_time_step(0).unwrap();
            if rank == 0 {
                comm.send_f32(1, 3, &[1.0, 2.0, 3.0, 4.0]).unwrap();
                (comm.fault_stats().payloads_corrupted, Vec::new())
            } else {
                (0, comm.recv_f32(0, 3).unwrap())
            }
        });
        assert_eq!(results[0].0, 1);
        let got = &results[1].1;
        assert_eq!(got.len(), 4);
        assert_ne!(*got, vec![1.0, 2.0, 3.0, 4.0]);
        // Exactly one element differs.
        let ndiff = got
            .iter()
            .zip([1.0f32, 2.0, 3.0, 4.0])
            .filter(|(a, b)| **a != *b)
            .count();
        assert_eq!(ndiff, 1);
    }

    #[test]
    fn injection_is_deterministic_under_fixed_seed() {
        let run_once = || {
            let plan = FaultPlan::new(1234).drop_messages(0, 0, 1000, 0.5);
            ThreadWorld::run(2, NetworkProfile::loopback(), |comm| {
                let rank = comm.rank();
                let mut comm = FaultyComm::new(comm, &plan);
                comm.set_recv_timeout(Some(Duration::from_millis(20)));
                comm.on_time_step(0).unwrap();
                if rank == 0 {
                    for i in 0..64 {
                        comm.send_f32(1, 4, &[i as f32]).unwrap();
                    }
                    (comm.fault_stats(), Vec::new())
                } else {
                    let mut got = Vec::new();
                    while let Ok(v) = comm.recv_f32(0, 4) {
                        got.push(v[0]);
                    }
                    (comm.fault_stats(), got)
                }
            })
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a[0].0, b[0].0, "sender fault stats must be reproducible");
        assert_eq!(a[1].1, b[1].1, "delivered message set must be reproducible");
        // And the 0.5 drop rate actually dropped a nontrivial subset.
        let dropped = a[0].0.messages_dropped;
        assert!(dropped > 5 && dropped < 60, "dropped = {dropped}");
    }

    #[test]
    fn death_between_post_and_wait_is_typed_not_a_hang() {
        // Rank 1 posts its receives at step 2, then advances to step 3 where
        // the plan kills it — the wait on the already-posted request must
        // surface RankDead immediately rather than blocking on the channel.
        let plan = FaultPlan::new(11).kill(1, 3);
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |comm| {
            let rank = comm.rank();
            let mut comm = FaultyComm::new(comm, &plan);
            comm.set_recv_timeout(Some(Duration::from_secs(10)));
            if rank == 0 {
                comm.on_time_step(2).unwrap();
                None
            } else {
                comm.on_time_step(2).unwrap();
                let req = comm.irecv_f32(0, 7).unwrap();
                let _ = comm.on_time_step(3); // death fires here
                let t0 = std::time::Instant::now();
                let err = comm.wait(req).unwrap_err();
                assert!(t0.elapsed() < Duration::from_secs(5), "wait hung");
                Some(err)
            }
        });
        assert_eq!(
            results[1].clone().unwrap(),
            CommError::RankDead { rank: 1, step: 3 }
        );
    }

    #[test]
    fn dead_rank_cannot_post() {
        let plan = FaultPlan::new(3).kill(0, 1);
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |comm| {
            let rank = comm.rank();
            let mut comm = FaultyComm::new(comm, &plan);
            if rank == 0 {
                let _ = comm.on_time_step(1);
                (
                    Some(comm.isend_f32(1, 5, &[1.0]).unwrap_err()),
                    Some(comm.irecv_f32(1, 5).unwrap_err()),
                )
            } else {
                (None, None)
            }
        });
        let dead = CommError::RankDead { rank: 0, step: 1 };
        assert_eq!(results[0].0.clone().unwrap(), dead);
        assert_eq!(results[0].1.clone().unwrap(), dead);
    }

    #[test]
    fn faulty_nonblocking_drop_loses_the_message() {
        let plan = FaultPlan::new(21).drop_messages(0, 0, 10, 1.0);
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |comm| {
            let rank = comm.rank();
            let mut comm = FaultyComm::new(comm, &plan);
            comm.set_recv_timeout(Some(Duration::from_millis(50)));
            comm.on_time_step(0).unwrap();
            if rank == 0 {
                // isend "succeeds" locally but the wire eats the payload.
                let req = comm.isend_f32(1, 6, &[3.0]).unwrap();
                comm.wait(req).unwrap();
                (comm.fault_stats().messages_dropped, None)
            } else {
                let req = comm.irecv_f32(0, 6).unwrap();
                (0, Some(comm.wait(req).unwrap_err()))
            }
        });
        assert_eq!(results[0].0, 1);
        assert!(matches!(
            results[1].1,
            Some(CommError::Timeout { src: 0, tag: 6, .. })
        ));
    }

    #[test]
    fn delay_injects_latency() {
        let plan = FaultPlan::new(5).delay(0, 0, 10, 2_000);
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), |comm| {
            let rank = comm.rank();
            let mut comm = FaultyComm::new(comm, &plan);
            comm.on_time_step(0).unwrap();
            if rank == 0 {
                let t0 = std::time::Instant::now();
                for _ in 0..5 {
                    comm.send_f32(1, 2, &[0.0]).unwrap();
                }
                (comm.fault_stats().delays_injected, t0.elapsed())
            } else {
                for _ in 0..5 {
                    comm.recv_f32(0, 2).unwrap();
                }
                (0, Duration::ZERO)
            }
        });
        assert_eq!(results[0].0, 5);
        assert!(
            results[0].1 >= Duration::from_millis(10),
            "{:?}",
            results[0].1
        );
    }
}
