//! Typed communication failures.
//!
//! At 62K cores the mean time between component failures is measured in
//! hours; a substrate that `panic!`s (or hangs forever) on the first
//! misbehaving peer turns one rank's failure into a whole-allocation loss.
//! Every fallible operation of the [`crate::Communicator`] trait returns a
//! [`CommError`] instead, so the solver can surface the failure, checkpoint
//! accounting can record it, and the driver can decide to restart.

use std::fmt;
use std::time::Duration;

/// A failed communication operation.
#[derive(Debug, Clone, PartialEq)]
pub enum CommError {
    /// No message matching `(src, tag)` arrived within the deadline — the
    /// stall/deadlock detector. Names the pair so the operator knows which
    /// peer wedged.
    Timeout {
        /// Source rank the receive was posted against.
        src: usize,
        /// Message tag the receive was posted against.
        tag: u32,
        /// How long the receiver waited before giving up.
        waited: Duration,
    },
    /// The channel to/from `peer` is gone: the rank's thread exited (death,
    /// panic, or teardown) while we still expected traffic.
    Disconnected {
        /// The peer whose endpoint vanished.
        peer: usize,
    },
    /// A message matching `(src, tag)` carried the wrong payload type —
    /// protocol corruption rather than data corruption.
    PayloadType {
        /// Source rank of the mismatched message.
        src: usize,
        /// Tag of the mismatched message.
        tag: u32,
    },
    /// This rank has been killed by fault injection at `step`; every
    /// subsequent operation on its communicator fails with this error.
    RankDead {
        /// The dead rank (self).
        rank: usize,
        /// Time step at which it died.
        step: usize,
    },
    /// The watchdog flagged `rank` as stalled (heartbeat older than the
    /// configured timeout) and escalated, so the healthy ranks abort
    /// with a typed error instead of blocking until their receive
    /// deadlines fire one by one.
    Stalled {
        /// The straggling rank the watchdog flagged.
        rank: usize,
        /// Its last completed step (`None` = stalled before step 0).
        last_step: Option<u64>,
        /// Heartbeat age when flagged.
        age: Duration,
    },
    /// Destination or source rank outside `0..size`.
    InvalidRank {
        /// The offending rank id.
        rank: usize,
        /// World size.
        size: usize,
    },
    /// A collective partner returned an unexpected payload width.
    Protocol {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout { src, tag, waited } => write!(
                f,
                "timeout after {:.3}s waiting for message (src {src}, tag {tag})",
                waited.as_secs_f64()
            ),
            CommError::Disconnected { peer } => {
                write!(f, "rank {peer} disconnected (endpoint dropped)")
            }
            CommError::PayloadType { src, tag } => {
                write!(f, "wrong payload type for message (src {src}, tag {tag})")
            }
            CommError::RankDead { rank, step } => {
                write!(f, "rank {rank} is dead (killed at step {step})")
            }
            CommError::Stalled {
                rank,
                last_step,
                age,
            } => match last_step {
                Some(s) => write!(
                    f,
                    "watchdog: rank {rank} stalled at step {s} (heartbeat age {:.3}s)",
                    age.as_secs_f64()
                ),
                None => write!(
                    f,
                    "watchdog: rank {rank} stalled before its first step (heartbeat age {:.3}s)",
                    age.as_secs_f64()
                ),
            },
            CommError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} outside world of size {size}")
            }
            CommError::Protocol { detail } => write!(f, "protocol error: {detail}"),
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_display_names_src_and_tag() {
        let e = CommError::Timeout {
            src: 7,
            tag: 100,
            waited: Duration::from_millis(250),
        };
        let s = e.to_string();
        assert!(s.contains("src 7"), "{s}");
        assert!(s.contains("tag 100"), "{s}");
    }

    #[test]
    fn stalled_display_names_rank_and_step() {
        let e = CommError::Stalled {
            rank: 4,
            last_step: Some(17),
            age: Duration::from_millis(1500),
        };
        let s = e.to_string();
        assert!(s.contains("rank 4"), "{s}");
        assert!(s.contains("step 17"), "{s}");
        let never = CommError::Stalled {
            rank: 2,
            last_step: None,
            age: Duration::from_millis(10),
        };
        assert!(never.to_string().contains("before its first step"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            CommError::Disconnected { peer: 3 },
            CommError::Disconnected { peer: 3 }
        );
        assert_ne!(
            CommError::RankDead { rank: 1, step: 5 },
            CommError::RankDead { rank: 1, step: 6 }
        );
    }
}
