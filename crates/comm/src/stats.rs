//! Per-rank communication statistics — the IPM analog (paper §5).

use std::collections::BTreeMap;
use std::time::Duration;

use specfem_obs::{flight_event, FlightEventKind, LogHistogram, TagTraffic};

/// Mutable accumulator owned by one rank's communicator.
#[derive(Debug, Default, Clone)]
pub struct CommStats {
    /// Bytes sent by this rank.
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_received: u64,
    /// Point-to-point messages sent.
    pub messages_sent: u64,
    /// Collective operations entered (barriers + reductions).
    pub collectives: u64,
    /// Wall time spent inside communication calls.
    pub wall_time: Duration,
    /// Deterministic modeled communication time (seconds) from the
    /// latency/bandwidth network profile.
    pub modeled_time_s: f64,
    /// Non-blocking operations posted (`isend` + `irecv`).
    pub posts: u64,
    /// Wall time spent posting non-blocking operations (the cheap part —
    /// should stay near zero if overlap works).
    pub post_time: Duration,
    /// Cumulative overlap window: time between posting a request and
    /// entering `wait` on it — the computation hidden behind the wire.
    pub overlap_time: Duration,
    /// Wall time blocked inside `wait`/`wait_all` — the *exposed*
    /// communication cost an overlapped solver actually pays.
    pub wait_time: Duration,
    /// Sent traffic keyed by message tag (see [`crate::tags`]).
    per_tag: BTreeMap<u32, TagTraffic>,
    /// Distribution of sent message sizes in bytes — IPM's message-size
    /// histogram.
    size_hist: LogHistogram,
}

impl CommStats {
    /// Record a message of `bytes` bytes sent with `tag`.
    pub fn on_send(&mut self, tag: u32, bytes: usize) {
        flight_event(FlightEventKind::CommSend, "", tag as u64, bytes as u64);
        self.bytes_sent += bytes as u64;
        self.messages_sent += 1;
        let t = self.per_tag.entry(tag).or_insert(TagTraffic {
            tag,
            messages: 0,
            bytes: 0,
        });
        t.messages += 1;
        t.bytes += bytes as u64;
        self.size_hist.record(bytes as u64);
    }

    /// Record a received message.
    pub fn on_recv(&mut self, bytes: usize) {
        flight_event(FlightEventKind::CommRecv, "", 0, bytes as u64);
        self.bytes_received += bytes as u64;
    }

    /// Record wall time spent in a communication call.
    pub fn on_wall(&mut self, d: Duration) {
        self.wall_time += d;
    }

    /// Record modeled network time.
    pub fn on_modeled(&mut self, seconds: f64) {
        self.modeled_time_s += seconds;
    }

    /// Record the posting of a non-blocking operation.
    pub fn on_post(&mut self, d: Duration) {
        self.posts += 1;
        self.post_time += d;
    }

    /// Record the completion of a waited request: `overlap` is the window
    /// between post and `wait` entry, `blocked` the time spent inside
    /// `wait` itself.
    pub fn on_wait(&mut self, overlap: Duration, blocked: Duration) {
        flight_event(
            FlightEventKind::CommWait,
            "",
            overlap.as_nanos() as u64,
            blocked.as_nanos() as u64,
        );
        self.overlap_time += overlap;
        self.wait_time += blocked;
    }

    /// Snapshot for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            bytes_sent: self.bytes_sent,
            bytes_received: self.bytes_received,
            messages_sent: self.messages_sent,
            collectives: self.collectives,
            wall_time_s: self.wall_time.as_secs_f64(),
            modeled_time_s: self.modeled_time_s,
            posts: self.posts,
            post_time_s: self.post_time.as_secs_f64(),
            overlap_time_s: self.overlap_time.as_secs_f64(),
            wait_time_s: self.wait_time.as_secs_f64(),
            per_tag: self.per_tag.values().copied().collect(),
            size_hist: self.size_hist.clone(),
        }
    }

    /// Zero all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Immutable copy of one rank's statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub messages_sent: u64,
    pub collectives: u64,
    pub wall_time_s: f64,
    pub modeled_time_s: f64,
    /// Non-blocking operations posted.
    pub posts: u64,
    /// Seconds spent posting non-blocking operations.
    pub post_time_s: f64,
    /// Cumulative post→wait overlap window (seconds).
    pub overlap_time_s: f64,
    /// Seconds blocked inside `wait`/`wait_all`.
    pub wait_time_s: f64,
    /// Sent traffic per message tag, ascending tag order.
    pub per_tag: Vec<TagTraffic>,
    /// Sent message-size distribution (log₂ buckets).
    pub size_hist: LogHistogram,
}

impl StatsSnapshot {
    /// Sent traffic for one message tag as `(messages, bytes)` — `(0, 0)`
    /// when the tag never appeared. Saves every per-tag assertion in the
    /// oracle suites from re-walking `per_tag` by hand.
    pub fn tag_traffic(&self, tag: u32) -> (u64, u64) {
        self.per_tag
            .iter()
            .find(|t| t.tag == tag)
            .map(|t| (t.messages, t.bytes))
            .unwrap_or((0, 0))
    }

    /// Aggregate snapshots from all ranks into "total for all cores" form —
    /// the quantity Figures 6/7 of the paper plot.
    pub fn total(all: &[StatsSnapshot]) -> StatsSnapshot {
        let mut out = StatsSnapshot::default();
        let mut tags: BTreeMap<u32, TagTraffic> = BTreeMap::new();
        for s in all {
            out.bytes_sent += s.bytes_sent;
            out.bytes_received += s.bytes_received;
            out.messages_sent += s.messages_sent;
            out.collectives += s.collectives;
            out.wall_time_s += s.wall_time_s;
            out.modeled_time_s += s.modeled_time_s;
            out.posts += s.posts;
            out.post_time_s += s.post_time_s;
            out.overlap_time_s += s.overlap_time_s;
            out.wait_time_s += s.wait_time_s;
            for t in &s.per_tag {
                let e = tags.entry(t.tag).or_insert(TagTraffic {
                    tag: t.tag,
                    messages: 0,
                    bytes: 0,
                });
                e.messages += t.messages;
                e.bytes += t.bytes;
            }
            out.size_hist.merge(&s.size_hist);
        }
        out.per_tag = tags.into_values().collect();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_resets() {
        let mut s = CommStats::default();
        s.on_send(100, 100);
        s.on_send(101, 50);
        s.on_recv(100);
        s.on_wall(Duration::from_millis(5));
        s.on_modeled(1.5e-6);
        let snap = s.snapshot();
        assert_eq!(snap.bytes_sent, 150);
        assert_eq!(snap.messages_sent, 2);
        assert_eq!(snap.bytes_received, 100);
        assert!(snap.wall_time_s >= 0.005);
        assert!((snap.modeled_time_s - 1.5e-6).abs() < 1e-12);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn tracks_nonblocking_phases() {
        let mut s = CommStats::default();
        s.on_post(Duration::from_micros(3));
        s.on_post(Duration::from_micros(2));
        s.on_wait(Duration::from_millis(4), Duration::from_millis(1));
        let snap = s.snapshot();
        assert_eq!(snap.posts, 2);
        assert!(snap.post_time_s >= 5e-6);
        assert!(snap.overlap_time_s >= 4e-3);
        assert!(snap.wait_time_s >= 1e-3);
        let t = StatsSnapshot::total(&[snap.clone(), snap.clone()]);
        assert_eq!(t.posts, 4);
        assert!((t.overlap_time_s - 2.0 * snap.overlap_time_s).abs() < 1e-12);
        s.reset();
        assert_eq!(s.snapshot().posts, 0);
    }

    #[test]
    fn tracks_per_tag_and_size_distribution() {
        let mut s = CommStats::default();
        s.on_send(100, 4096);
        s.on_send(100, 4096);
        s.on_send(200, 8);
        let snap = s.snapshot();
        assert_eq!(snap.per_tag.len(), 2);
        assert_eq!(snap.per_tag[0].tag, 100);
        assert_eq!(snap.per_tag[0].messages, 2);
        assert_eq!(snap.per_tag[0].bytes, 8192);
        assert_eq!(snap.per_tag[1].tag, 200);
        assert_eq!(snap.per_tag[1].bytes, 8);
        assert_eq!(snap.size_hist.count(), 3);
        assert_eq!(snap.size_hist.sum(), 8200);
        // 4096 = 2^12 lands in the [4096, 8191] bucket, twice.
        assert_eq!(snap.size_hist.top_k(1), vec![(4096, 8191, 2)]);
        // The per-tag accessor reads the same numbers without a walk.
        assert_eq!(snap.tag_traffic(100), (2, 8192));
        assert_eq!(snap.tag_traffic(200), (1, 8));
        assert_eq!(snap.tag_traffic(999), (0, 0));
    }

    #[test]
    fn comm_edges_are_journaled_when_flight_armed() {
        specfem_obs::flight_arm(0, 64);
        let mut s = CommStats::default();
        s.on_send(100, 4096);
        s.on_recv(128);
        s.on_wait(Duration::from_micros(2), Duration::from_micros(1));
        let j = specfem_obs::flight_harvest().unwrap();
        let kinds: Vec<_> = j.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FlightEventKind::CommSend,
                FlightEventKind::CommRecv,
                FlightEventKind::CommWait
            ]
        );
        assert_eq!(j.events[0].a, 100);
        assert_eq!(j.events[0].b, 4096);
        assert_eq!(j.events[1].b, 128);
        assert_eq!(j.events[2].a, 2_000);
        assert_eq!(j.events[2].b, 1_000);
    }

    #[test]
    fn total_sums_ranks() {
        let a = StatsSnapshot {
            bytes_sent: 10,
            messages_sent: 1,
            modeled_time_s: 0.5,
            ..Default::default()
        };
        let b = StatsSnapshot {
            bytes_sent: 20,
            messages_sent: 2,
            modeled_time_s: 0.25,
            ..Default::default()
        };
        let t = StatsSnapshot::total(&[a, b]);
        assert_eq!(t.bytes_sent, 30);
        assert_eq!(t.messages_sent, 3);
        assert!((t.modeled_time_s - 0.75).abs() < 1e-12);
    }

    #[test]
    fn total_merges_tags_and_histograms() {
        let mut s1 = CommStats::default();
        s1.on_send(100, 64);
        s1.on_send(200, 8);
        let mut s2 = CommStats::default();
        s2.on_send(100, 64);
        let t = StatsSnapshot::total(&[s1.snapshot(), s2.snapshot()]);
        assert_eq!(t.per_tag.len(), 2);
        assert_eq!(t.per_tag[0].tag, 100);
        assert_eq!(t.per_tag[0].messages, 2);
        assert_eq!(t.per_tag[0].bytes, 128);
        assert_eq!(t.size_hist.count(), 3);
    }
}
