//! Per-rank communication statistics — the IPM analog (paper §5).

use std::time::Duration;

/// Mutable accumulator owned by one rank's communicator.
#[derive(Debug, Default, Clone)]
pub struct CommStats {
    /// Bytes sent by this rank.
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_received: u64,
    /// Point-to-point messages sent.
    pub messages_sent: u64,
    /// Collective operations entered (barriers + reductions).
    pub collectives: u64,
    /// Wall time spent inside communication calls.
    pub wall_time: Duration,
    /// Deterministic modeled communication time (seconds) from the
    /// latency/bandwidth network profile.
    pub modeled_time_s: f64,
}

impl CommStats {
    /// Record a sent message of `bytes` bytes.
    pub fn on_send(&mut self, bytes: usize) {
        self.bytes_sent += bytes as u64;
        self.messages_sent += 1;
    }

    /// Record a received message.
    pub fn on_recv(&mut self, bytes: usize) {
        self.bytes_received += bytes as u64;
    }

    /// Record wall time spent in a communication call.
    pub fn on_wall(&mut self, d: Duration) {
        self.wall_time += d;
    }

    /// Record modeled network time.
    pub fn on_modeled(&mut self, seconds: f64) {
        self.modeled_time_s += seconds;
    }

    /// Snapshot for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            bytes_sent: self.bytes_sent,
            bytes_received: self.bytes_received,
            messages_sent: self.messages_sent,
            collectives: self.collectives,
            wall_time_s: self.wall_time.as_secs_f64(),
            modeled_time_s: self.modeled_time_s,
        }
    }

    /// Zero all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Immutable copy of one rank's statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatsSnapshot {
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub messages_sent: u64,
    pub collectives: u64,
    pub wall_time_s: f64,
    pub modeled_time_s: f64,
}

impl StatsSnapshot {
    /// Aggregate snapshots from all ranks into "total for all cores" form —
    /// the quantity Figures 6/7 of the paper plot.
    pub fn total(all: &[StatsSnapshot]) -> StatsSnapshot {
        let mut out = StatsSnapshot::default();
        for s in all {
            out.bytes_sent += s.bytes_sent;
            out.bytes_received += s.bytes_received;
            out.messages_sent += s.messages_sent;
            out.collectives += s.collectives;
            out.wall_time_s += s.wall_time_s;
            out.modeled_time_s += s.modeled_time_s;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_resets() {
        let mut s = CommStats::default();
        s.on_send(100);
        s.on_send(50);
        s.on_recv(100);
        s.on_wall(Duration::from_millis(5));
        s.on_modeled(1.5e-6);
        let snap = s.snapshot();
        assert_eq!(snap.bytes_sent, 150);
        assert_eq!(snap.messages_sent, 2);
        assert_eq!(snap.bytes_received, 100);
        assert!(snap.wall_time_s >= 0.005);
        assert!((snap.modeled_time_s - 1.5e-6).abs() < 1e-12);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn total_sums_ranks() {
        let a = StatsSnapshot {
            bytes_sent: 10,
            messages_sent: 1,
            modeled_time_s: 0.5,
            ..Default::default()
        };
        let b = StatsSnapshot {
            bytes_sent: 20,
            messages_sent: 2,
            modeled_time_s: 0.25,
            ..Default::default()
        };
        let t = StatsSnapshot::total(&[a, b]);
        assert_eq!(t.bytes_sent, 30);
        assert_eq!(t.messages_sent, 3);
        assert!((t.modeled_time_s - 0.75).abs() < 1e-12);
    }
}
