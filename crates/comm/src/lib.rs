//! An MPI-like message-passing substrate for the solver.
//!
//! SPECFEM3D_GLOBE distributes mesh slices over MPI ranks and assembles the
//! global system by exchanging shared-point contributions (paper §2.4). This
//! crate reproduces that programming model in-process: every *rank* is an OS
//! thread, messages are typed buffers moved over lock-free channels, and the
//! solver is written against the [`Communicator`] trait exactly as it would
//! be against `MPI_Comm`.
//!
//! Two kinds of timing are recorded per rank (the paper's §5 methodology):
//!
//! * **wall time** actually spent inside communication calls — the IPM
//!   measurement ("communication time spent in the main loop of the solver");
//! * **modeled time** from a latency/bandwidth machine profile — the
//!   deterministic analog used to extrapolate to machines we do not have
//!   (62K-core Ranger and friends).

pub mod halo;
pub mod serial;
pub mod stats;
pub mod thread;
pub mod virtual_net;

pub use halo::{assemble_halo, exchange_halo, HaloPlan, Neighbor};
pub use serial::SerialComm;
pub use stats::{CommStats, StatsSnapshot};
pub use thread::{ThreadComm, ThreadWorld};
pub use virtual_net::NetworkProfile;

/// Message tags used by the solver (mirrors the handful of tags the Fortran
/// code uses).
pub mod tags {
    /// Halo exchange of crust-mantle/solid accelerations.
    pub const HALO_SOLID: u32 = 100;
    /// Halo exchange of fluid (outer-core) potential.
    pub const HALO_FLUID: u32 = 101;
    /// Generic reduction traffic.
    pub const REDUCE: u32 = 200;
    /// Generic broadcast traffic.
    pub const BCAST: u32 = 201;
    /// Mesher → solver handoff (legacy I/O replacement path).
    pub const MESH_HANDOFF: u32 = 300;
}

/// The MPI-like interface the solver programs against.
///
/// Semantics follow MPI two-sided messaging: `send` is asynchronous
/// (buffered, never deadlocks at our message sizes), `recv` blocks until a
/// matching `(src, tag)` message arrives. All collective operations must be
/// entered by every rank.
pub trait Communicator: Send {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;
    /// Number of ranks.
    fn size(&self) -> usize;

    /// Asynchronous buffered send of an `f32` payload.
    fn send_f32(&mut self, dest: usize, tag: u32, data: &[f32]);
    /// Blocking receive matching `(src, tag)`.
    fn recv_f32(&mut self, src: usize, tag: u32) -> Vec<f32>;

    /// Barrier across all ranks.
    fn barrier(&mut self);

    /// Global sum of one `f64`.
    fn allreduce_sum(&mut self, x: f64) -> f64;
    /// Global min of one `f64`.
    fn allreduce_min(&mut self, x: f64) -> f64;
    /// Global max of one `f64`.
    fn allreduce_max(&mut self, x: f64) -> f64;

    /// Statistics snapshot for this rank.
    fn stats(&self) -> StatsSnapshot;

    /// Reset statistics (e.g. after the warm-up phase, so the main-loop
    /// percentages match the paper's IPM methodology).
    fn reset_stats(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_distinct() {
        let all = [
            tags::HALO_SOLID,
            tags::HALO_FLUID,
            tags::REDUCE,
            tags::BCAST,
            tags::MESH_HANDOFF,
        ];
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }
}
