//! An MPI-like message-passing substrate for the solver.
//!
//! SPECFEM3D_GLOBE distributes mesh slices over MPI ranks and assembles the
//! global system by exchanging shared-point contributions (paper §2.4). This
//! crate reproduces that programming model in-process: every *rank* is an OS
//! thread, messages are typed buffers moved over lock-free channels, and the
//! solver is written against the [`Communicator`] trait exactly as it would
//! be against `MPI_Comm`.
//!
//! Two kinds of timing are recorded per rank (the paper's §5 methodology):
//!
//! * **wall time** actually spent inside communication calls — the IPM
//!   measurement ("communication time spent in the main loop of the solver");
//! * **modeled time** from a latency/bandwidth machine profile — the
//!   deterministic analog used to extrapolate to machines we do not have
//!   (62K-core Ranger and friends).
//!
//! All blocking operations are fallible: a stalled or dead peer surfaces as
//! a typed [`CommError`] (with a configurable receive deadline) instead of
//! an infinite hang, and [`fault::FaultyComm`] can deterministically inject
//! the failures a 62K-core run would see in the wild.

pub mod error;
pub mod fault;
pub mod halo;
pub mod request;
pub mod serial;
pub mod stats;
pub mod thread;
pub mod virtual_net;
pub mod watchdog;

pub use error::CommError;
pub use fault::{
    ArtifactFaultKind, ArtifactFaultSpec, FaultKind, FaultPlan, FaultSpec, FaultStats, FaultyComm,
};
pub use halo::{
    assemble_halo, exchange_halo, finish_halo_assembly, post_halo_exchange, HaloPlan, Neighbor,
};
pub use request::{Request, RequestKind};
pub use serial::SerialComm;
pub use stats::{CommStats, StatsSnapshot};
pub use thread::{RankPanic, ThreadComm, ThreadWorld, DEFAULT_RECV_TIMEOUT};
pub use virtual_net::NetworkProfile;
pub use watchdog::{Heartbeats, StallEvent, WatchdogConfig, WatchdogReport};
// Re-exported so downstream crates can consume `StatsSnapshot`'s per-tag
// traffic and size histogram without a direct specfem-obs dependency.
pub use specfem_obs::{LogHistogram, TagTraffic};

use std::time::Duration;

/// Message tags used by the solver (mirrors the handful of tags the Fortran
/// code uses).
pub mod tags {
    /// Halo exchange of crust-mantle/solid accelerations.
    pub const HALO_SOLID: u32 = 100;
    /// Halo exchange of fluid (outer-core) potential.
    pub const HALO_FLUID: u32 = 101;
    /// Batched (K-event-lane) solid halo exchange: one message per
    /// neighbor carries all K lanes, so it is K× the single-lane
    /// message size by design. A distinct tag keeps IPM per-tag
    /// accounting from misreading batching as a message-size
    /// regression on `HALO_SOLID`.
    pub const HALO_BATCHED_SOLID: u32 = 110;
    /// Batched (K-event-lane) fluid halo exchange.
    pub const HALO_BATCHED_FLUID: u32 = 111;
    /// Generic reduction traffic.
    pub const REDUCE: u32 = 200;
    /// Generic broadcast traffic.
    pub const BCAST: u32 = 201;
    /// Barrier entry/release traffic (message-based so it honours the recv
    /// deadline instead of hanging on a dead rank).
    pub const BARRIER: u32 = 202;
    /// Mesher → solver handoff (legacy I/O replacement path).
    pub const MESH_HANDOFF: u32 = 300;
}

/// How many rank-worlds of `ranks_per_job` threads each can run
/// concurrently on this machine without oversubscribing it: at least 1,
/// at most `jobs` (no point spinning up idle workers), and otherwise
/// `available_parallelism / ranks_per_job`. This is the campaign
/// runtime's default worker-pool size.
pub fn recommended_workers(ranks_per_job: usize, jobs: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let fit = cores / ranks_per_job.max(1);
    fit.clamp(1, jobs.max(1))
}

/// The MPI-like interface the solver programs against.
///
/// Semantics follow MPI two-sided messaging: `send` is asynchronous
/// (buffered, never deadlocks at our message sizes), `recv` blocks until a
/// matching `(src, tag)` message arrives *or the configured deadline
/// expires*. All collective operations must be entered by every rank.
///
/// Every blocking call is fallible. A backend that cannot fail (e.g. the
/// serial world) simply always returns `Ok`; the thread backend reports
/// stalls as [`CommError::Timeout`], vanished peers as
/// [`CommError::Disconnected`], and fault injection adds
/// [`CommError::RankDead`].
pub trait Communicator: Send {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;
    /// Number of ranks.
    fn size(&self) -> usize;

    /// Asynchronous buffered send of an `f32` payload.
    fn send_f32(&mut self, dest: usize, tag: u32, data: &[f32]) -> Result<(), CommError>;
    /// Blocking receive matching `(src, tag)`, subject to the recv deadline.
    fn recv_f32(&mut self, src: usize, tag: u32) -> Result<Vec<f32>, CommError>;

    /// Non-blocking send: post the message and return immediately with a
    /// [`Request`]. Because sends are buffered, the default completes the
    /// transfer at post time; the request only tracks completion semantics.
    /// Faulty backends may fail *at post* (e.g. the local rank is dead).
    fn isend_f32(&mut self, dest: usize, tag: u32, data: &[f32]) -> Result<Request, CommError> {
        self.send_f32(dest, tag, data)?;
        Ok(Request::send(dest, tag))
    }

    /// Non-blocking receive: register interest in the next `(src, tag)`
    /// message and return a [`Request`] without blocking. The message is
    /// delivered by `wait`. Matching follows MPI semantics: requests for
    /// the same `(src, tag)` complete in the order the messages were sent
    /// (FIFO per channel).
    fn irecv_f32(&mut self, src: usize, tag: u32) -> Result<Request, CommError> {
        if src >= self.size() {
            return Err(CommError::InvalidRank {
                rank: src,
                size: self.size(),
            });
        }
        Ok(Request::recv(src, tag))
    }

    /// Complete a non-blocking operation, subject to the recv deadline.
    /// Send requests resolve to `Ok(None)`; receive requests block until
    /// the matching message arrives and resolve to `Ok(Some(data))`. A
    /// stalled peer surfaces as [`CommError::Timeout`], a dead one as
    /// [`CommError::RankDead`] — `wait` never hangs forever while a
    /// deadline is configured.
    fn wait(&mut self, req: Request) -> Result<Option<Vec<f32>>, CommError> {
        match req.kind() {
            RequestKind::Send { .. } => Ok(None),
            RequestKind::Recv { src, tag } => self.recv_f32(src, tag).map(Some),
        }
    }

    /// Complete a batch of requests in order, failing fast on the first
    /// error. Results line up index-for-index with `reqs`.
    fn wait_all(&mut self, reqs: Vec<Request>) -> Result<Vec<Option<Vec<f32>>>, CommError> {
        let mut out = Vec::with_capacity(reqs.len());
        for req in reqs {
            out.push(self.wait(req)?);
        }
        Ok(out)
    }

    /// Barrier across all ranks.
    fn barrier(&mut self) -> Result<(), CommError>;

    /// Global sum of one `f64`.
    fn allreduce_sum(&mut self, x: f64) -> Result<f64, CommError>;
    /// Global min of one `f64`.
    fn allreduce_min(&mut self, x: f64) -> Result<f64, CommError>;
    /// Global max of one `f64`.
    fn allreduce_max(&mut self, x: f64) -> Result<f64, CommError>;

    /// Configure the deadline applied to blocking receives. `None` waits
    /// forever (pre-fault-tolerance behaviour); backends without blocking
    /// receives may ignore it.
    fn set_recv_timeout(&mut self, _timeout: Option<Duration>) {}

    /// Solver hook announcing the start of time step `istep`. Fault
    /// injection uses it to trigger step-scheduled faults; plain backends
    /// keep the default no-op.
    fn on_time_step(&mut self, _istep: usize) -> Result<(), CommError> {
        Ok(())
    }

    /// Statistics snapshot for this rank.
    fn stats(&self) -> StatsSnapshot;

    /// Reset statistics (e.g. after the warm-up phase, so the main-loop
    /// percentages match the paper's IPM methodology).
    fn reset_stats(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_workers_is_bounded() {
        assert_eq!(recommended_workers(1_000_000, 8), 1);
        assert_eq!(recommended_workers(1, 1), 1);
        assert!(recommended_workers(1, 4) <= 4);
        assert!(recommended_workers(0, 0) >= 1);
    }

    #[test]
    fn tags_are_distinct() {
        let all = [
            tags::HALO_SOLID,
            tags::HALO_FLUID,
            tags::HALO_BATCHED_SOLID,
            tags::HALO_BATCHED_FLUID,
            tags::REDUCE,
            tags::BCAST,
            tags::BARRIER,
            tags::MESH_HANDOFF,
        ];
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn tag_names_in_obs_match_the_tag_constants() {
        // `specfem_obs::report::tag_name` restates these values (obs
        // stays dependency-free); keep the two in sync.
        use specfem_obs::report::tag_name;
        assert_eq!(tag_name(tags::HALO_SOLID), "halo_solid");
        assert_eq!(tag_name(tags::HALO_FLUID), "halo_fluid");
        assert_eq!(tag_name(tags::HALO_BATCHED_SOLID), "halo_batched_solid");
        assert_eq!(tag_name(tags::HALO_BATCHED_FLUID), "halo_batched_fluid");
        assert_eq!(tag_name(tags::REDUCE), "reduce");
        assert_eq!(tag_name(tags::BCAST), "bcast");
        assert_eq!(tag_name(tags::BARRIER), "barrier");
        assert_eq!(tag_name(tags::MESH_HANDOFF), "mesh_handoff");
    }
}
