//! Property-based tests of the message-passing substrate: assembly
//! correctness on randomized topologies and payloads.
#![allow(clippy::needless_range_loop)] // rank loops double as index and identity

use proptest::prelude::*;
use specfem_comm::{assemble_halo, Communicator, HaloPlan, Neighbor, NetworkProfile, ThreadWorld};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pairwise halo assembly sums the two partials for arbitrary values
    /// and arbitrary shared-point subsets.
    #[test]
    fn pairwise_assembly_sums(
        npoints in 2usize..30,
        shared_mask in prop::collection::vec(any::<bool>(), 2..30),
        v0 in prop::collection::vec(-100.0f32..100.0, 2..30),
        v1 in prop::collection::vec(-100.0f32..100.0, 2..30),
    ) {
        let n = npoints.min(shared_mask.len()).min(v0.len()).min(v1.len());
        let shared: Vec<u32> = (0..n as u32).filter(|&i| shared_mask[i as usize]).collect();
        if shared.is_empty() {
            return Ok(());
        }
        let v0 = v0[..n].to_vec();
        let v1 = v1[..n].to_vec();
        let shared2 = shared.clone();
        let (v0c, v1c) = (v0.clone(), v1.clone());
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), move |mut comm| {
            let rank = comm.rank();
            let plan = HaloPlan {
                neighbors: vec![Neighbor {
                    rank: 1 - rank,
                    points: shared2.clone(),
                }],
            };
            let mut field = if rank == 0 { v0c.clone() } else { v1c.clone() };
            assemble_halo(&mut comm, &plan, &mut field, 1, 5).unwrap();
            field
        });
        for (i, (&a, &b)) in v0.iter().zip(&v1).enumerate() {
            let expect_shared = a + b;
            for r in 0..2 {
                let got = results[r][i];
                if shared.contains(&(i as u32)) {
                    prop_assert!((got - expect_shared).abs() < 1e-4,
                        "rank {r} point {i}: {got} vs {expect_shared}");
                } else {
                    let own = if r == 0 { a } else { b };
                    prop_assert_eq!(got, own);
                }
            }
        }
    }

    /// Allreduce agrees with a local fold for arbitrary rank values.
    #[test]
    fn allreduce_matches_local_fold(
        values in prop::collection::vec(-1.0e6f64..1.0e6, 2..9),
    ) {
        let n = values.len();
        let vals = values.clone();
        let results = ThreadWorld::run(n, NetworkProfile::loopback(), move |mut comm| {
            let x = vals[comm.rank()];
            (comm.allreduce_sum(x).unwrap(), comm.allreduce_min(x).unwrap(), comm.allreduce_max(x).unwrap())
        });
        let sum: f64 = values.iter().sum();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for (s, mn, mx) in results {
            prop_assert!((s - sum).abs() < 1e-6 * (1.0 + sum.abs()));
            prop_assert_eq!(mn, min);
            prop_assert_eq!(mx, max);
        }
    }

    /// Messages arrive intact regardless of interleaving: each rank sends a
    /// distinct payload to every other rank with a random tag offset.
    #[test]
    fn all_to_all_payload_integrity(
        n in 2usize..6,
        base_tag in 0u32..1000,
        len in 1usize..50,
    ) {
        let results = ThreadWorld::run(n, NetworkProfile::loopback(), move |mut comm| {
            let rank = comm.rank();
            for dest in 0..n {
                if dest != rank {
                    let payload: Vec<f32> =
                        (0..len).map(|i| (rank * 1000 + i) as f32).collect();
                    comm.send_f32(dest, base_tag + dest as u32, &payload).unwrap();
                }
            }
            let mut ok = true;
            for src in 0..n {
                if src != rank {
                    let got = comm.recv_f32(src, base_tag + rank as u32).unwrap();
                    ok &= got.len() == len
                        && got.iter().enumerate().all(|(i, &v)| v == (src * 1000 + i) as f32);
                }
            }
            ok
        });
        prop_assert!(results.into_iter().all(|ok| ok));
    }
}
