//! Property-based tests of the message-passing substrate: assembly
//! correctness on randomized topologies and payloads.
#![allow(clippy::needless_range_loop)] // rank loops double as index and identity

use proptest::prelude::*;
use specfem_comm::{
    assemble_halo, CommError, Communicator, FaultPlan, FaultyComm, HaloPlan, Neighbor,
    NetworkProfile, ThreadWorld,
};

/// Deterministic shuffle of `0..n` driven by a key slice (sort-by-key).
fn shuffled_indices(n: usize, keys: &[u64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&i| (keys[i % keys.len()].wrapping_mul(i as u64 + 1), i));
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pairwise halo assembly sums the two partials for arbitrary values
    /// and arbitrary shared-point subsets.
    #[test]
    fn pairwise_assembly_sums(
        npoints in 2usize..30,
        shared_mask in prop::collection::vec(any::<bool>(), 2..30),
        v0 in prop::collection::vec(-100.0f32..100.0, 2..30),
        v1 in prop::collection::vec(-100.0f32..100.0, 2..30),
    ) {
        let n = npoints.min(shared_mask.len()).min(v0.len()).min(v1.len());
        let shared: Vec<u32> = (0..n as u32).filter(|&i| shared_mask[i as usize]).collect();
        if shared.is_empty() {
            return Ok(());
        }
        let v0 = v0[..n].to_vec();
        let v1 = v1[..n].to_vec();
        let shared2 = shared.clone();
        let (v0c, v1c) = (v0.clone(), v1.clone());
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), move |mut comm| {
            let rank = comm.rank();
            let plan = HaloPlan {
                neighbors: vec![Neighbor {
                    rank: 1 - rank,
                    points: shared2.clone(),
                }],
            };
            let mut field = if rank == 0 { v0c.clone() } else { v1c.clone() };
            assemble_halo(&mut comm, &plan, &mut field, 1, 5).unwrap();
            field
        });
        for (i, (&a, &b)) in v0.iter().zip(&v1).enumerate() {
            let expect_shared = a + b;
            for r in 0..2 {
                let got = results[r][i];
                if shared.contains(&(i as u32)) {
                    prop_assert!((got - expect_shared).abs() < 1e-4,
                        "rank {r} point {i}: {got} vs {expect_shared}");
                } else {
                    let own = if r == 0 { a } else { b };
                    prop_assert_eq!(got, own);
                }
            }
        }
    }

    /// Allreduce agrees with a local fold for arbitrary rank values.
    #[test]
    fn allreduce_matches_local_fold(
        values in prop::collection::vec(-1.0e6f64..1.0e6, 2..9),
    ) {
        let n = values.len();
        let vals = values.clone();
        let results = ThreadWorld::run(n, NetworkProfile::loopback(), move |mut comm| {
            let x = vals[comm.rank()];
            (comm.allreduce_sum(x).unwrap(), comm.allreduce_min(x).unwrap(), comm.allreduce_max(x).unwrap())
        });
        let sum: f64 = values.iter().sum();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for (s, mn, mx) in results {
            prop_assert!((s - sum).abs() < 1e-6 * (1.0 + sum.abs()));
            prop_assert_eq!(mn, min);
            prop_assert_eq!(mx, max);
        }
    }

    /// Non-blocking FIFO contract: for every `(src, tag)` pair, waits
    /// complete in message send order no matter how the posts and waits
    /// are interleaved across ranks and tags.
    #[test]
    fn nonblocking_fifo_order_under_arbitrary_interleavings(
        n in 2usize..4,
        ntags in 1u32..3,
        k in 1usize..4,
        post_keys in prop::collection::vec(any::<u64>(), 8),
        wait_keys in prop::collection::vec(any::<u64>(), 8),
    ) {
        let post_keys2 = post_keys.clone();
        let wait_keys2 = wait_keys.clone();
        let results = ThreadWorld::run(n, NetworkProfile::loopback(), move |mut comm| {
            let rank = comm.rank();
            // Every rank sends k numbered messages on every tag to every
            // other rank; the payload encodes (src, tag, seq).
            for dest in 0..n {
                if dest == rank {
                    continue;
                }
                for tag in 0..ntags {
                    for seq in 0..k {
                        let v = (rank * 10_000 + tag as usize * 100 + seq) as f32;
                        comm.isend_f32(dest, tag, &[v]).unwrap();
                    }
                }
            }
            // Post the matching irecvs in a shuffled global order...
            let mut slots: Vec<(usize, u32)> = Vec::new();
            for src in 0..n {
                if src == rank {
                    continue;
                }
                for tag in 0..ntags {
                    for _ in 0..k {
                        slots.push((src, tag));
                    }
                }
            }
            let order = shuffled_indices(slots.len(), &post_keys2);
            let reqs: Vec<_> = order
                .iter()
                .map(|&i| comm.irecv_f32(slots[i].0, slots[i].1).unwrap())
                .collect();
            // ...then wait them in another shuffled order, recording what
            // each (src, tag) stream delivered, in wait order.
            let mut got: Vec<(usize, u32, f32)> = Vec::new();
            for &i in &shuffled_indices(reqs.len(), &wait_keys2) {
                let req = reqs[i].clone();
                let (peer, tag) = (req.peer(), req.tag());
                let data = comm.wait(req).unwrap().unwrap();
                got.push((peer, tag, data[0]));
            }
            got
        });
        // Per (src, tag), the seq numbers must come out 0, 1, 2, … in the
        // order the waits completed — FIFO per channel, MPI semantics.
        for (rank, got) in results.iter().enumerate() {
            for src in 0..n {
                if src == rank {
                    continue;
                }
                for tag in 0..ntags {
                    let seqs: Vec<usize> = got
                        .iter()
                        .filter(|(p, t, _)| *p == src && *t == tag)
                        .map(|(_, _, v)| *v as usize % 100)
                        .collect();
                    let expect: Vec<usize> = (0..k).collect();
                    prop_assert_eq!(&seqs, &expect,
                        "rank {} stream (src {}, tag {})", rank, src, tag);
                }
            }
        }
    }

    /// `wait` on a request posted before this rank's scheduled death
    /// surfaces `CommError::RankDead` promptly instead of hanging until
    /// the receive deadline.
    #[test]
    fn wait_after_rank_death_is_rank_dead_not_a_hang(
        death_step in 1usize..6,
        tag in 0u32..500,
        seed in any::<u64>(),
    ) {
        let plan = FaultPlan::new(seed).kill(1, death_step);
        let results = ThreadWorld::run(2, NetworkProfile::loopback(), move |comm| {
            let rank = comm.rank();
            let mut comm = FaultyComm::new(comm, &plan);
            // Deadline far longer than the test budget: a wait that merely
            // timed out (rather than observing the death) would hang.
            comm.set_recv_timeout(Some(std::time::Duration::from_secs(30)));
            if rank == 0 {
                return None;
            }
            comm.on_time_step(death_step - 1).unwrap();
            let req = comm.irecv_f32(0, tag).unwrap();
            let _ = comm.on_time_step(death_step);
            let t0 = std::time::Instant::now();
            let err = comm.wait(req).unwrap_err();
            assert!(t0.elapsed() < std::time::Duration::from_secs(5));
            Some(err)
        });
        prop_assert_eq!(
            results[1].clone().unwrap(),
            CommError::RankDead { rank: 1, step: death_step }
        );
    }

    /// Messages arrive intact regardless of interleaving: each rank sends a
    /// distinct payload to every other rank with a random tag offset.
    #[test]
    fn all_to_all_payload_integrity(
        n in 2usize..6,
        base_tag in 0u32..1000,
        len in 1usize..50,
    ) {
        let results = ThreadWorld::run(n, NetworkProfile::loopback(), move |mut comm| {
            let rank = comm.rank();
            for dest in 0..n {
                if dest != rank {
                    let payload: Vec<f32> =
                        (0..len).map(|i| (rank * 1000 + i) as f32).collect();
                    comm.send_f32(dest, base_tag + dest as u32, &payload).unwrap();
                }
            }
            let mut ok = true;
            for src in 0..n {
                if src != rank {
                    let got = comm.recv_f32(src, base_tag + rank as u32).unwrap();
                    ok &= got.len() == len
                        && got.iter().enumerate().all(|(i, &v)| v == (src * 1000 + i) as f32);
                }
            }
            ok
        });
        prop_assert!(results.into_iter().all(|ok| ok));
    }
}
