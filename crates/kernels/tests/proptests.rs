//! Property-based equivalence of the kernel variants (paper §4.3): the
//! three implementations are the same linear operator, on arbitrary data.

use proptest::prelude::*;
use specfem_gll::GllBasis;
use specfem_kernels::{blas_style, reference, simd, DerivOps, NGLL3, NGLL3_PADDED};

fn padded(vals: &[f32]) -> Vec<f32> {
    let mut v = vec![0.0f32; NGLL3_PADDED];
    v[..NGLL3].copy_from_slice(&vals[..NGLL3]);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// simd == reference == blas on random fields (derivative stage).
    #[test]
    fn derivative_variants_agree(
        field in prop::collection::vec(-100.0f32..100.0, NGLL3),
    ) {
        let ops = DerivOps::from_basis(&GllBasis::new(4));
        let u = padded(&field);
        let mut outs = Vec::new();
        type Kernel = fn(&[f32], &[[f32; 5]; 5], &mut [f32], &mut [f32], &mut [f32]);
        let kernels: [Kernel; 3] = [
            reference::cutplane_derivatives,
            simd::cutplane_derivatives,
            blas_style::cutplane_derivatives,
        ];
        for k in kernels {
            let mut t1 = vec![0.0f32; NGLL3_PADDED];
            let mut t2 = vec![0.0f32; NGLL3_PADDED];
            let mut t3 = vec![0.0f32; NGLL3_PADDED];
            k(&u, &ops.hprime, &mut t1, &mut t2, &mut t3);
            outs.push((t1, t2, t3));
        }
        let scale = field.iter().map(|v| v.abs()).fold(1.0f32, f32::max);
        for o in &outs[1..] {
            for idx in 0..NGLL3 {
                prop_assert!((outs[0].0[idx] - o.0[idx]).abs() <= 1e-3 * scale);
                prop_assert!((outs[0].1[idx] - o.1[idx]).abs() <= 1e-3 * scale);
                prop_assert!((outs[0].2[idx] - o.2[idx]).abs() <= 1e-3 * scale);
            }
        }
    }

    /// simd == reference on the transpose/accumulate stage, including the
    /// accumulation into pre-existing output.
    #[test]
    fn transpose_variants_agree(
        f1 in prop::collection::vec(-10.0f32..10.0, NGLL3),
        f2 in prop::collection::vec(-10.0f32..10.0, NGLL3),
        f3 in prop::collection::vec(-10.0f32..10.0, NGLL3),
        init in -5.0f32..5.0,
    ) {
        let ops = DerivOps::from_basis(&GllBasis::new(4));
        let (p1, p2, p3) = (padded(&f1), padded(&f2), padded(&f3));
        let mut out_ref = vec![init; NGLL3_PADDED];
        let mut out_simd = vec![init; NGLL3_PADDED];
        reference::cutplane_transpose_accumulate(&p1, &p2, &p3, &ops.hprime_wgll_t, &mut out_ref);
        simd::cutplane_transpose_accumulate(&p1, &p2, &p3, &ops.hprime_wgll_t, &mut out_simd);
        for idx in 0..NGLL3 {
            prop_assert!((out_ref[idx] - out_simd[idx]).abs() <= 2e-3);
        }
    }

    /// Linearity of the derivative kernel: D(a·u + v) = a·D(u) + D(v).
    #[test]
    fn derivative_is_linear(
        u in prop::collection::vec(-10.0f32..10.0, NGLL3),
        v in prop::collection::vec(-10.0f32..10.0, NGLL3),
        a in -4.0f32..4.0,
    ) {
        let ops = DerivOps::from_basis(&GllBasis::new(4));
        let run = |field: &[f32]| {
            let f = padded(field);
            let mut t1 = vec![0.0f32; NGLL3_PADDED];
            let mut t2 = vec![0.0f32; NGLL3_PADDED];
            let mut t3 = vec![0.0f32; NGLL3_PADDED];
            simd::cutplane_derivatives(&f, &ops.hprime, &mut t1, &mut t2, &mut t3);
            t1
        };
        let combo: Vec<f32> = u.iter().zip(&v).map(|(x, y)| a * x + y).collect();
        let lhs = run(&combo);
        let du = run(&u);
        let dv = run(&v);
        for idx in 0..NGLL3 {
            let rhs = a * du[idx] + dv[idx];
            prop_assert!((lhs[idx] - rhs).abs() <= 1e-2 * (1.0 + rhs.abs()));
        }
    }

    /// The generic sgemm multiplies correctly for random small matrices.
    #[test]
    fn sgemm_random_matrices(
        m in 1usize..6,
        n in 1usize..6,
        k in 1usize..6,
        seed in 0u32..1000,
    ) {
        let gen = |len: usize, salt: u32| -> Vec<f32> {
            (0..len)
                .map(|i| {
                    let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed ^ salt);
                    (h % 2000) as f32 / 1000.0 - 1.0
                })
                .collect()
        };
        let a = gen(m * k, 1);
        let b = gen(k * n, 2);
        let mut c = vec![0.0f32; m * n];
        blas_style::sgemm(m, n, k, &a, k, &b, n, 0.0, &mut c, n);
        for i in 0..m {
            for j in 0..n {
                let expect: f32 = (0..k).map(|l| a[i * k + l] * b[l * n + j]).sum();
                prop_assert!((c[i * n + j] - expect).abs() < 1e-4);
            }
        }
    }
}
