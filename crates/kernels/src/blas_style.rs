//! BLAS-style kernels: the approach paper §4.3 evaluated and rejected.
//!
//! "First, the matrices are very small (5 x 5) and therefore the overhead
//! of the BLAS routine is higher than what we can hope to gain. Second …
//! several of these calls to BLAS would be for blocks not linearly aligned
//! in memory and would therefore first require a memory copy to an aligned
//! 2D block."
//!
//! This module reproduces that structure faithfully: a *generic*,
//! runtime-dimension `sgemm` (as a library routine would be — no
//! compile-time 5×5 specialization), invoked through a function pointer to
//! defeat inlining (the call overhead a shared-library BLAS has), plus the
//! pack/unpack copies needed for the `j`- and `k`-direction cut-planes.

use crate::layout::{NGLL, NGLL2};

/// Generic column-major-ish sgemm: `C ← A·B + βC` with runtime dimensions,
/// `A` is `m×k` (row-major, lda), `B` is `k×n` (row-major, ldb), `C` `m×n`.
#[inline(never)]
#[allow(clippy::too_many_arguments)] // mirrors the BLAS sgemm signature
pub fn sgemm(
    m: usize,
    n: usize,
    kk: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..kk {
                acc += a[i * lda + l] * b[l * ldb + j];
            }
            let cij = &mut c[i * ldc + j];
            *cij = acc + beta * *cij;
        }
    }
}

/// Function-pointer indirection: models calling into an opaque BLAS.
pub type SgemmFn = fn(usize, usize, usize, &[f32], usize, &[f32], usize, f32, &mut [f32], usize);

/// The sgemm entry point used below (kept as a `fn` pointer on purpose).
pub static SGEMM: SgemmFn = sgemm;

/// Cut-plane derivatives via repeated library-style sgemm calls.
pub fn cutplane_derivatives(
    u: &[f32],
    h: &[[f32; NGLL]; NGLL],
    t1: &mut [f32],
    t2: &mut [f32],
    t3: &mut [f32],
) {
    // Flatten h row-major for the generic routine.
    let mut hf = [0.0f32; NGLL2];
    for i in 0..NGLL {
        for l in 0..NGLL {
            hf[i * NGLL + l] = h[i][l];
        }
    }
    let mut pack = [0.0f32; NGLL2];
    let mut packed_out = [0.0f32; NGLL2];

    // t1: for each k-plane, t1_k = H · U_k where U_k(l, j) = u(l,j,k) —
    // u is contiguous in i, so U_k as (i rows, j cols) needs A=H (5×5),
    // B = plane with b[l*ldb + j] = u(l, j, k): element (l,j) at offset
    // (k·5+j)·5+l → not row-major in (l,j); pack it.
    for k in 0..NGLL {
        for l in 0..NGLL {
            for j in 0..NGLL {
                pack[l * NGLL + j] = u[(k * NGLL + j) * NGLL + l];
            }
        }
        SGEMM(
            NGLL,
            NGLL,
            NGLL,
            &hf,
            NGLL,
            &pack,
            NGLL,
            0.0,
            &mut packed_out,
            NGLL,
        );
        // unpack: t1(i,j,k) = out(i, j)
        for i in 0..NGLL {
            for j in 0..NGLL {
                t1[(k * NGLL + j) * NGLL + i] = packed_out[i * NGLL + j];
            }
        }
    }

    // t2: t2(i,j,k) = Σ_l h[j][l] u(i,l,k): for each k-plane this is
    // U'_k · Hᵀ with U'_k(i, l) = u(i,l,k) — rows i stride 1? u(i,l,k)
    // offset (k·5+l)·5+i: as (i rows, l cols) not contiguous; pack again.
    let mut ht = [0.0f32; NGLL2];
    for l in 0..NGLL {
        for j in 0..NGLL {
            ht[l * NGLL + j] = h[j][l];
        }
    }
    for k in 0..NGLL {
        for i in 0..NGLL {
            for l in 0..NGLL {
                pack[i * NGLL + l] = u[(k * NGLL + l) * NGLL + i];
            }
        }
        SGEMM(
            NGLL,
            NGLL,
            NGLL,
            &pack,
            NGLL,
            &ht,
            NGLL,
            0.0,
            &mut packed_out,
            NGLL,
        );
        for i in 0..NGLL {
            for j in 0..NGLL {
                t2[(k * NGLL + j) * NGLL + i] = packed_out[i * NGLL + j];
            }
        }
    }

    // t3: t3(i,j,k) = Σ_l h[k][l] u(i,j,l): for each j-plane, pack
    // (i rows, l cols) from offset (l·5+j)·5+i.
    for j in 0..NGLL {
        for i in 0..NGLL {
            for l in 0..NGLL {
                pack[i * NGLL + l] = u[(l * NGLL + j) * NGLL + i];
            }
        }
        // out(i, k) = Σ_l pack(i,l)·h[k][l] = pack · Hᵀ(l,k)
        let mut hkt = [0.0f32; NGLL2];
        for l in 0..NGLL {
            for kx in 0..NGLL {
                hkt[l * NGLL + kx] = h[kx][l];
            }
        }
        SGEMM(
            NGLL,
            NGLL,
            NGLL,
            &pack,
            NGLL,
            &hkt,
            NGLL,
            0.0,
            &mut packed_out,
            NGLL,
        );
        for i in 0..NGLL {
            for kx in 0..NGLL {
                t3[(kx * NGLL + j) * NGLL + i] = packed_out[i * NGLL + kx];
            }
        }
    }
}

/// Weighted-transpose accumulation via the same pack/sgemm/unpack pattern.
pub fn cutplane_transpose_accumulate(
    f1: &[f32],
    f2: &[f32],
    f3: &[f32],
    w: &[[f32; NGLL]; NGLL],
    out: &mut [f32],
) {
    // Reuse the derivative structure: each term is the same cut-plane
    // product with w in place of h, so compute the three products into
    // scratch and accumulate.
    let mut s1 = [0.0f32; 125];
    let mut s2 = [0.0f32; 125];
    let mut s3 = [0.0f32; 125];
    // The transpose stage applies w along the *output* index, which has the
    // same access pattern as the derivative stage with (f, w) in place of
    // (u, h) per term.
    cutplane_derivatives(f1, w, &mut s1, &mut scratch(), &mut scratch());
    {
        let mut tmp = [0.0f32; 125];
        cutplane_derivatives(f2, w, &mut scratch(), &mut s2, &mut tmp);
    }
    {
        let mut tmp = [0.0f32; 125];
        cutplane_derivatives(f3, w, &mut scratch(), &mut tmp, &mut s3);
    }
    for idx in 0..125 {
        out[idx] += s1[idx] + s2[idx] + s3[idx];
    }
}

#[inline]
fn scratch() -> [f32; 125] {
    [0.0; 125]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_sgemm_multiplies_correctly() {
        // 2×3 · 3×2.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        let mut c = [0.0f32; 4];
        sgemm(2, 2, 3, &a, 3, &b, 2, 0.0, &mut c, 2);
        assert_eq!(c, [58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn sgemm_beta_accumulates() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [2.0, 0.0, 0.0, 2.0];
        let mut c = [10.0, 0.0, 0.0, 10.0];
        sgemm(2, 2, 2, &a, 2, &b, 2, 1.0, &mut c, 2);
        assert_eq!(c, [12.0, 0.0, 0.0, 12.0]);
    }
}
