//! Element-block memory layout: 5×5×5 = 125 floats padded to 128 and
//! aligned, exactly as paper §4.3 prescribes ("we align our 3D blocks of
//! 5 x 5 x 5 = 125 floats on 128 in memory using padding with three dummy
//! values set to zero. This induces a negligible waste of memory of
//! 128 / 125 = 2.4%").

/// GLL points per direction at production degree 4.
pub const NGLL: usize = 5;
/// Points per cut-plane.
pub const NGLL2: usize = NGLL * NGLL;
/// Points per element.
pub const NGLL3: usize = NGLL * NGLL * NGLL;
/// Padded block size (125 → 128).
pub const NGLL3_PADDED: usize = 128;

/// One cache-aligned padded element block.
#[derive(Debug, Clone)]
#[repr(align(64))]
pub struct PaddedBlock(pub [f32; NGLL3_PADDED]);

impl Default for PaddedBlock {
    fn default() -> Self {
        Self([0.0; NGLL3_PADDED])
    }
}

impl PaddedBlock {
    /// New zeroed block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Load the first 125 values from a slice; padding stays zero.
    pub fn from_slice(v: &[f32]) -> Self {
        let mut b = Self::default();
        b.0[..NGLL3].copy_from_slice(&v[..NGLL3]);
        b
    }

    /// The live (unpadded) values.
    pub fn values(&self) -> &[f32] {
        &self.0[..NGLL3]
    }

    /// Index for GLL point `(i, j, k)` (`i` fastest).
    #[inline]
    pub const fn idx(i: usize, j: usize, k: usize) -> usize {
        (k * NGLL + j) * NGLL + i
    }
}

/// Index into a lane-major batched buffer: `k` event lanes stored
/// innermost, so lane data for one GLL slot (or one field component of
/// one mesh point) is contiguous. This is the SoA layout the batched
/// 5×5×K kernels and the K-lane halo packing both assume: a point's
/// `ncomp·k` values occupy one contiguous run, which is what lets the
/// existing halo exchange treat a K-lane field as a single field with
/// `ncomp·k` components (one message per neighbor, independent of `k`).
#[inline]
pub const fn lane_major(slot: usize, lane: usize, k: usize) -> usize {
    slot * k + lane
}

/// Fractional memory overhead of the padding (documented 2.4 %).
pub fn padding_overhead() -> f64 {
    NGLL3_PADDED as f64 / NGLL3 as f64 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_is_2_4_percent() {
        assert!((padding_overhead() - 0.024).abs() < 1e-3);
    }

    #[test]
    fn block_is_64_byte_aligned() {
        let b = PaddedBlock::new();
        assert_eq!(&b as *const _ as usize % 64, 0);
        assert_eq!(std::mem::size_of::<PaddedBlock>(), 512);
    }

    #[test]
    fn from_slice_preserves_values_and_zero_padding() {
        let src: Vec<f32> = (0..NGLL3).map(|i| i as f32).collect();
        let b = PaddedBlock::from_slice(&src);
        assert_eq!(b.values()[7], 7.0);
        assert_eq!(b.0[NGLL3], 0.0);
        assert_eq!(b.0[NGLL3_PADDED - 1], 0.0);
    }

    #[test]
    fn idx_is_i_fastest() {
        assert_eq!(PaddedBlock::idx(1, 0, 0), 1);
        assert_eq!(PaddedBlock::idx(0, 1, 0), NGLL);
        assert_eq!(PaddedBlock::idx(0, 0, 1), NGLL2);
        assert_eq!(PaddedBlock::idx(4, 4, 4), NGLL3 - 1);
    }
}
