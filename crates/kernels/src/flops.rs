//! Analytic flop accounting — the PSiNSlight analog (paper §6 measured
//! sustained Tflops with the PSiNS tracer; we count the kernel flops
//! directly, which is what such tracers report for this code).

use crate::layout::{NGLL, NGLL3};

/// Flops of one cut-plane derivative stage for one scalar field:
/// 3 directions × 125 points × (5 multiplies + 5 adds).
pub const DERIVATIVE_STAGE_FLOPS: u64 = (3 * NGLL3 * 2 * NGLL) as u64;

/// Flops of one weighted-transpose accumulation for one scalar field
/// (same shape plus the final accumulate add per point).
pub const TRANSPOSE_STAGE_FLOPS: u64 = (3 * NGLL3 * 2 * NGLL + NGLL3) as u64;

/// Pointwise flops per GLL point in the solid force kernel between the two
/// matrix stages: metric transforms (9→9 chain-rule products ≈ 45 flops),
/// isotropic stress (≈ 25), and the weighted metric re-projection (≈ 45).
pub const SOLID_POINTWISE_FLOPS_PER_POINT: u64 = 115;

/// Pointwise flops per GLL point in the fluid (scalar) kernel.
pub const FLUID_POINTWISE_FLOPS_PER_POINT: u64 = 40;

/// Flops of the full solid internal-force kernel for one element
/// (3 displacement components through both stages + pointwise physics).
pub fn solid_element_flops() -> u64 {
    3 * (DERIVATIVE_STAGE_FLOPS + TRANSPOSE_STAGE_FLOPS)
        + SOLID_POINTWISE_FLOPS_PER_POINT * NGLL3 as u64
}

/// Flops of the full fluid internal-force kernel for one element.
pub fn fluid_element_flops() -> u64 {
    DERIVATIVE_STAGE_FLOPS + TRANSPOSE_STAGE_FLOPS + FLUID_POINTWISE_FLOPS_PER_POINT * NGLL3 as u64
}

/// Extra flops per *solid* element per step when attenuation (3 SLS memory
/// variables on 5 deviatoric strain components) is on: the reason the
/// paper's attenuation runs take ~1.8× longer at nearly the same flop
/// *rate*.
pub fn attenuation_element_flops() -> u64 {
    // Per point: 5 strain components × 3 SLS × (2 mul + 1 add for the
    // recursion) + stress correction (≈ 10).
    ((5 * 3 * 3 + 10) * NGLL3) as u64
}

/// Running flop counter for a solver run.
#[derive(Debug, Default, Clone)]
pub struct FlopCounter {
    total: u64,
}

impl FlopCounter {
    /// New zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` solid elements processed.
    pub fn add_solid_elements(&mut self, n: usize, with_attenuation: bool) {
        self.total += n as u64 * solid_element_flops();
        if with_attenuation {
            self.total += n as u64 * attenuation_element_flops();
        }
    }

    /// Record `n` fluid elements processed.
    pub fn add_fluid_elements(&mut self, n: usize) {
        self.total += n as u64 * fluid_element_flops();
    }

    /// Record raw flops (time-update loops, mass division, …).
    pub fn add_raw(&mut self, flops: u64) {
        self.total += flops;
    }

    /// Total flops so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Overwrite the running total (checkpoint restore).
    pub fn set_total(&mut self, total: u64) {
        self.total = total;
    }

    /// Sustained flop rate over `seconds`.
    pub fn rate(&self, seconds: f64) -> f64 {
        self.total as f64 / seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_flop_constants() {
        assert_eq!(DERIVATIVE_STAGE_FLOPS, 3 * 125 * 10);
        assert_eq!(TRANSPOSE_STAGE_FLOPS, 3 * 125 * 10 + 125);
    }

    #[test]
    fn solid_element_is_about_37k_flops() {
        let f = solid_element_flops();
        // 3·(3750+3875) + 115·125 = 22875 + 14375 = 37250.
        assert_eq!(f, 37_250);
        // The scalar fluid kernel is roughly a third of the 3-component
        // solid kernel.
        assert!(fluid_element_flops() < f / 2);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = FlopCounter::new();
        c.add_solid_elements(10, false);
        c.add_fluid_elements(5);
        c.add_raw(100);
        let expect = 10 * solid_element_flops() + 5 * fluid_element_flops() + 100;
        assert_eq!(c.total(), expect);
        assert!((c.rate(2.0) - expect as f64 / 2.0).abs() < 1.0);
    }

    #[test]
    fn attenuation_adds_meaningful_but_not_dominant_flops() {
        let base = solid_element_flops();
        let att = attenuation_element_flops();
        let ratio = att as f64 / base as f64;
        assert!(ratio > 0.1 && ratio < 0.5, "attenuation ratio {ratio}");
    }
}
