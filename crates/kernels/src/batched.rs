//! Batched (multi-event) cut-plane kernels: the 5×5 matrix products of
//! [`crate::reference`] widened to 5×5×K, with K event lanes stored
//! innermost (lane-major SoA — see [`crate::layout::lane_major`]).
//!
//! This is the transformation of Yamaguchi et al.'s multiple-simulation
//! work: K earthquakes sharing one mesh advance in a single solve, so
//! every metric term, derivative operator row, and cache line of
//! geometry is loaded once and applied to K wavefields.
//!
//! **Bit-identity contract (ULP policy: zero).** A batched solve must be
//! bit-identical to the K serial solves it replaces, per lane:
//!
//! * the lane-fused kernels in this module keep the *per-lane* sequence
//!   of f32 operations exactly equal to the single-lane reference
//!   kernel — accumulators live per lane, the `l` contraction stays the
//!   outer loop, and the three-term accumulate expression keeps the
//!   reference's association order — so each lane reproduces the
//!   reference result bit-for-bit while the lane loop vectorizes;
//! * the `Simd` / `BlasStyle` variants run the *unmodified* single-lane
//!   kernel per lane on gathered blocks (gather → kernel → scatter);
//!   copies are exact, so those variants are trivially bit-identical
//!   to their single-lane selves.

use crate::layout::{NGLL, NGLL3, NGLL3_PADDED};
use crate::{DerivOps, KernelVariant};

/// Hard cap on event lanes per batch: bounds the per-point stack
/// accumulators so the lane loop stays allocation-free.
pub const MAX_BATCH_LANES: usize = 32;

/// Lane-fused `t_d = ∂u/∂(ξ,η,γ)` on a lane-major block: `u[slot·k + lane]`
/// with `slot < NGLL3`. Per lane this performs exactly the reference
/// kernel's operation sequence.
pub fn cutplane_derivatives_lanes(
    u: &[f32],
    k: usize,
    h: &[[f32; NGLL]; NGLL],
    t1: &mut [f32],
    t2: &mut [f32],
    t3: &mut [f32],
) {
    assert!(
        (1..=MAX_BATCH_LANES).contains(&k),
        "lane count {k} out of range"
    );
    let mut a1 = [0.0f32; MAX_BATCH_LANES];
    let mut a2 = [0.0f32; MAX_BATCH_LANES];
    let mut a3 = [0.0f32; MAX_BATCH_LANES];
    for kk in 0..NGLL {
        for j in 0..NGLL {
            for i in 0..NGLL {
                a1[..k].fill(0.0);
                a2[..k].fill(0.0);
                a3[..k].fill(0.0);
                for l in 0..NGLL {
                    let h1 = h[i][l];
                    let h2 = h[j][l];
                    let h3 = h[kk][l];
                    let s1 = ((kk * NGLL + j) * NGLL + l) * k;
                    let s2 = ((kk * NGLL + l) * NGLL + i) * k;
                    let s3 = ((l * NGLL + j) * NGLL + i) * k;
                    for lane in 0..k {
                        a1[lane] += h1 * u[s1 + lane];
                        a2[lane] += h2 * u[s2 + lane];
                        a3[lane] += h3 * u[s3 + lane];
                    }
                }
                let o = ((kk * NGLL + j) * NGLL + i) * k;
                t1[o..o + k].copy_from_slice(&a1[..k]);
                t2[o..o + k].copy_from_slice(&a2[..k]);
                t3[o..o + k].copy_from_slice(&a3[..k]);
            }
        }
    }
}

/// Lane-fused weighted-transpose accumulation on lane-major blocks.
/// Mirrors the reference kernel: one fused accumulator per (point, lane),
/// three products added per `l` iteration in the same association order,
/// a single `+=` into `out` at the end.
pub fn cutplane_transpose_accumulate_lanes(
    f1: &[f32],
    f2: &[f32],
    f3: &[f32],
    k: usize,
    w: &[[f32; NGLL]; NGLL],
    out: &mut [f32],
) {
    assert!(
        (1..=MAX_BATCH_LANES).contains(&k),
        "lane count {k} out of range"
    );
    let mut acc = [0.0f32; MAX_BATCH_LANES];
    for kk in 0..NGLL {
        for j in 0..NGLL {
            for i in 0..NGLL {
                acc[..k].fill(0.0);
                for l in 0..NGLL {
                    let w1 = w[i][l];
                    let w2 = w[j][l];
                    let w3 = w[kk][l];
                    let s1 = ((kk * NGLL + j) * NGLL + l) * k;
                    let s2 = ((kk * NGLL + l) * NGLL + i) * k;
                    let s3 = ((l * NGLL + j) * NGLL + i) * k;
                    for lane in 0..k {
                        acc[lane] += w1 * f1[s1 + lane] + w2 * f2[s2 + lane] + w3 * f3[s3 + lane];
                    }
                }
                let o = ((kk * NGLL + j) * NGLL + i) * k;
                for lane in 0..k {
                    out[o + lane] += acc[lane];
                }
            }
        }
    }
}

/// Copy one lane out of a lane-major block into a padded single-lane
/// block (padding stays zero).
pub fn gather_lane(src: &[f32], k: usize, lane: usize, dst: &mut [f32; NGLL3_PADDED]) {
    for slot in 0..NGLL3 {
        dst[slot] = src[slot * k + lane];
    }
}

/// Write a padded single-lane block back into one lane of a lane-major
/// block.
pub fn scatter_lane(src: &[f32; NGLL3_PADDED], k: usize, lane: usize, dst: &mut [f32]) {
    for slot in 0..NGLL3 {
        dst[slot * k + lane] = src[slot];
    }
}

/// Dispatch: batched cut-plane derivatives on a lane-major block.
/// `Reference` runs the lane-fused kernel; `Simd` / `BlasStyle` run the
/// unmodified single-lane kernel per lane via gather/scatter.
pub fn dispatch_derivatives(
    variant: KernelVariant,
    u: &[f32],
    k: usize,
    ops: &DerivOps,
    t1: &mut [f32],
    t2: &mut [f32],
    t3: &mut [f32],
) {
    match variant {
        KernelVariant::Reference => cutplane_derivatives_lanes(u, k, &ops.hprime, t1, t2, t3),
        KernelVariant::Simd | KernelVariant::BlasStyle => {
            let mut ub = [0.0f32; NGLL3_PADDED];
            let mut b1 = [0.0f32; NGLL3_PADDED];
            let mut b2 = [0.0f32; NGLL3_PADDED];
            let mut b3 = [0.0f32; NGLL3_PADDED];
            for lane in 0..k {
                gather_lane(u, k, lane, &mut ub);
                crate::cutplane_derivatives(variant, &ub, ops, &mut b1, &mut b2, &mut b3);
                scatter_lane(&b1, k, lane, t1);
                scatter_lane(&b2, k, lane, t2);
                scatter_lane(&b3, k, lane, t3);
            }
        }
    }
}

/// Dispatch: batched weighted-transpose accumulation on lane-major
/// blocks (see [`dispatch_derivatives`] for the per-variant strategy).
pub fn dispatch_transpose_accumulate(
    variant: KernelVariant,
    f1: &[f32],
    f2: &[f32],
    f3: &[f32],
    k: usize,
    ops: &DerivOps,
    out: &mut [f32],
) {
    match variant {
        KernelVariant::Reference => {
            cutplane_transpose_accumulate_lanes(f1, f2, f3, k, &ops.hprime_wgll_t, out)
        }
        KernelVariant::Simd | KernelVariant::BlasStyle => {
            let mut g1 = [0.0f32; NGLL3_PADDED];
            let mut g2 = [0.0f32; NGLL3_PADDED];
            let mut g3 = [0.0f32; NGLL3_PADDED];
            let mut ob = [0.0f32; NGLL3_PADDED];
            for lane in 0..k {
                gather_lane(f1, k, lane, &mut g1);
                gather_lane(f2, k, lane, &mut g2);
                gather_lane(f3, k, lane, &mut g3);
                gather_lane(out, k, lane, &mut ob);
                crate::cutplane_transpose_accumulate(variant, &g1, &g2, &g3, ops, &mut ob);
                scatter_lane(&ob, k, lane, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::lane_major;
    use crate::reference;
    use specfem_gll::GllBasis;

    fn lane_field(seed: u32) -> Vec<f32> {
        let mut v = vec![0.0f32; NGLL3_PADDED];
        for (i, x) in v.iter_mut().take(NGLL3).enumerate() {
            *x = ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f32 / 500.0
                - 1.0;
        }
        v
    }

    fn interleave(lanes: &[Vec<f32>]) -> Vec<f32> {
        let k = lanes.len();
        let mut out = vec![0.0f32; NGLL3 * k];
        for (lane, f) in lanes.iter().enumerate() {
            for slot in 0..NGLL3 {
                out[lane_major(slot, lane, k)] = f[slot];
            }
        }
        out
    }

    #[test]
    fn lane_fused_derivatives_are_bit_identical_to_reference_per_lane() {
        let ops = DerivOps::from_basis(&GllBasis::new(4));
        for k in [1usize, 2, 3, 4, 8] {
            let lanes: Vec<Vec<f32>> = (0..k).map(|l| lane_field(l as u32 * 31 + 7)).collect();
            let u = interleave(&lanes);
            let mut t1 = vec![0.0f32; NGLL3 * k];
            let mut t2 = vec![0.0f32; NGLL3 * k];
            let mut t3 = vec![0.0f32; NGLL3 * k];
            cutplane_derivatives_lanes(&u, k, &ops.hprime, &mut t1, &mut t2, &mut t3);
            for (lane, f) in lanes.iter().enumerate() {
                let mut r1 = vec![0.0f32; NGLL3_PADDED];
                let mut r2 = vec![0.0f32; NGLL3_PADDED];
                let mut r3 = vec![0.0f32; NGLL3_PADDED];
                reference::cutplane_derivatives(f, &ops.hprime, &mut r1, &mut r2, &mut r3);
                for slot in 0..NGLL3 {
                    let b = lane_major(slot, lane, k);
                    assert_eq!(t1[b].to_bits(), r1[slot].to_bits(), "k={k} lane={lane}");
                    assert_eq!(t2[b].to_bits(), r2[slot].to_bits());
                    assert_eq!(t3[b].to_bits(), r3[slot].to_bits());
                }
            }
        }
    }

    #[test]
    fn lane_fused_transpose_accumulate_is_bit_identical_per_lane() {
        let ops = DerivOps::from_basis(&GllBasis::new(4));
        for k in [1usize, 2, 4, 5] {
            let f1l: Vec<Vec<f32>> = (0..k).map(|l| lane_field(l as u32 + 1)).collect();
            let f2l: Vec<Vec<f32>> = (0..k).map(|l| lane_field(l as u32 + 100)).collect();
            let f3l: Vec<Vec<f32>> = (0..k).map(|l| lane_field(l as u32 + 200)).collect();
            let outl: Vec<Vec<f32>> = (0..k).map(|l| lane_field(l as u32 + 300)).collect();
            let (f1, f2, f3) = (interleave(&f1l), interleave(&f2l), interleave(&f3l));
            let mut out = interleave(&outl);
            cutplane_transpose_accumulate_lanes(&f1, &f2, &f3, k, &ops.hprime_wgll_t, &mut out);
            for lane in 0..k {
                let mut r = outl[lane].clone();
                reference::cutplane_transpose_accumulate(
                    &f1l[lane],
                    &f2l[lane],
                    &f3l[lane],
                    &ops.hprime_wgll_t,
                    &mut r,
                );
                for slot in 0..NGLL3 {
                    assert_eq!(
                        out[lane_major(slot, lane, k)].to_bits(),
                        r[slot].to_bits(),
                        "k={k} lane={lane} slot={slot}"
                    );
                }
            }
        }
    }

    #[test]
    fn gather_scatter_dispatch_matches_single_lane_kernels_bitwise() {
        let ops = DerivOps::from_basis(&GllBasis::new(4));
        for variant in [KernelVariant::Simd, KernelVariant::BlasStyle] {
            let k = 3;
            let lanes: Vec<Vec<f32>> = (0..k).map(|l| lane_field(l as u32 * 13 + 5)).collect();
            let u = interleave(&lanes);
            let mut t1 = vec![0.0f32; NGLL3 * k];
            let mut t2 = vec![0.0f32; NGLL3 * k];
            let mut t3 = vec![0.0f32; NGLL3 * k];
            dispatch_derivatives(variant, &u, k, &ops, &mut t1, &mut t2, &mut t3);
            for (lane, f) in lanes.iter().enumerate() {
                let mut r1 = vec![0.0f32; NGLL3_PADDED];
                let mut r2 = vec![0.0f32; NGLL3_PADDED];
                let mut r3 = vec![0.0f32; NGLL3_PADDED];
                crate::cutplane_derivatives(variant, f, &ops, &mut r1, &mut r2, &mut r3);
                for slot in 0..NGLL3 {
                    let b = lane_major(slot, lane, k);
                    assert_eq!(t1[b].to_bits(), r1[slot].to_bits(), "{variant:?}");
                    assert_eq!(t2[b].to_bits(), r2[slot].to_bits());
                    assert_eq!(t3[b].to_bits(), r3[slot].to_bits());
                }
            }
        }
    }

    #[test]
    fn k_equals_one_matches_reference_exactly() {
        let ops = DerivOps::from_basis(&GllBasis::new(4));
        let u = lane_field(42);
        let mut t1 = vec![0.0f32; NGLL3];
        let mut t2 = vec![0.0f32; NGLL3];
        let mut t3 = vec![0.0f32; NGLL3];
        dispatch_derivatives(
            KernelVariant::Reference,
            &u[..NGLL3],
            1,
            &ops,
            &mut t1,
            &mut t2,
            &mut t3,
        );
        let mut r1 = vec![0.0f32; NGLL3_PADDED];
        let mut r2 = vec![0.0f32; NGLL3_PADDED];
        let mut r3 = vec![0.0f32; NGLL3_PADDED];
        reference::cutplane_derivatives(&u, &ops.hprime, &mut r1, &mut r2, &mut r3);
        assert_eq!(t1, r1[..NGLL3]);
        assert_eq!(t2, r2[..NGLL3]);
        assert_eq!(t3, r3[..NGLL3]);
    }
}
