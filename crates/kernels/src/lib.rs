//! The computational heart of the solver: small matrix products along
//! cut-planes of 5×5×5 element blocks (paper §4.3), in several
//! implementations so the paper's single-processor findings can be
//! reproduced:
//!
//! * [`reference`] — plain loops, the "existing regular Fortran loops"
//!   baseline;
//! * [`simd`] — manual 4-wide vector arithmetic on 128-float padded blocks
//!   (the SSE/Altivec strategy: process 4 of each 5 values in a vector,
//!   the 5th serially; pad 125 → 128, a 2.4 % memory waste);
//! * [`blas_style`] — a generic runtime-dimension `sgemm` with the
//!   pack/copy overhead a library BLAS call would need for non-contiguous
//!   cut-planes (the approach the paper measured and *rejected*).
//!
//! All variants compute identical results (up to f32 roundoff ordering) and
//! are exercised against each other in tests; `crates/bench` times them.
//!
//! The [`flops`] module is the PSiNSlight analog: analytic flop counts per
//! element for sustained-FLOPS reporting.

// Numeric kernels index several arrays with one loop variable by design.
#![allow(clippy::needless_range_loop)]

pub mod batched;
pub mod blas_style;
pub mod flops;
pub mod layout;
pub mod reference;
pub mod simd;

pub use batched::MAX_BATCH_LANES;
pub use flops::FlopCounter;
pub use layout::{lane_major, PaddedBlock, NGLL, NGLL2, NGLL3, NGLL3_PADDED};

/// The 5×5 one-dimensional derivative operator `h[i][l] = l'_l(x_i)` in
/// `f32`, plus its quadrature-weighted counterpart — the two constant
/// matrices every kernel variant consumes.
#[derive(Debug, Clone, Copy)]
pub struct DerivOps {
    /// `hprime[i][l]`.
    pub hprime: [[f32; NGLL]; NGLL],
    /// `hprime_wgll_t[i][l] = w_l · l'_i(x_l)` — the weighted operator laid
    /// out for the second (transpose) application.
    pub hprime_wgll_t: [[f32; NGLL]; NGLL],
}

impl DerivOps {
    /// Build from a degree-4 GLL basis.
    pub fn from_basis(basis: &specfem_gll::GllBasis) -> Self {
        assert_eq!(
            basis.degree + 1,
            NGLL,
            "kernels are specialized to degree 4 (5 GLL points), like production SPECFEM"
        );
        let mut hprime = [[0.0f32; NGLL]; NGLL];
        let mut hwt = [[0.0f32; NGLL]; NGLL];
        for i in 0..NGLL {
            for l in 0..NGLL {
                hprime[i][l] = basis.hprime[i * NGLL + l] as f32;
                // basis.hprime_wgll[l][i] = w_l · l'_i(x_l); store as [i][l]
                // so the transpose application reads rows contiguously.
                hwt[i][l] = basis.hprime_wgll[l * NGLL + i] as f32;
            }
        }
        Self {
            hprime,
            hprime_wgll_t: hwt,
        }
    }
}

/// Which kernel implementation to run — selected once per solver run.
///
/// The default is the plain-loop reference: on today's LLVM the
/// auto-vectorized loops beat the hand-written 4+1-lane scheme, exactly the
/// effect the paper already observed emerging in 2008 ("modern compilers
/// can automatically unroll loops and generate SSE … therefore the
/// reference time may already include some of the effects"). The manual
/// variant is kept for the §4.3 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelVariant {
    /// Plain loops (auto-vectorized by the compiler; the fastest today).
    #[default]
    Reference,
    /// Manual 4+1-lane vectorized on padded blocks — the paper's SSE
    /// strategy, reproduced for the ablation.
    Simd,
    /// Generic BLAS-style sgemm with packing (for the ablation only).
    BlasStyle,
}

/// Dispatch: cut-plane derivatives `t_d = ∂u/∂(ξ,η,γ)` of one scalar field
/// sampled on the element's GLL block (`i` fastest, length ≥ 125).
#[inline]
pub fn cutplane_derivatives(
    variant: KernelVariant,
    u: &[f32],
    ops: &DerivOps,
    t1: &mut [f32],
    t2: &mut [f32],
    t3: &mut [f32],
) {
    match variant {
        KernelVariant::Reference => reference::cutplane_derivatives(u, &ops.hprime, t1, t2, t3),
        KernelVariant::Simd => simd::cutplane_derivatives(u, &ops.hprime, t1, t2, t3),
        KernelVariant::BlasStyle => blas_style::cutplane_derivatives(u, &ops.hprime, t1, t2, t3),
    }
}

/// Dispatch: weighted-transpose accumulation — the second matrix-product
/// stage of the force kernel:
/// `out(i,j,k) += Σ_l f1(l,j,k)·W[i][l] + Σ_l f2(i,l,k)·W[j][l] + Σ_l f3(i,j,l)·W[k][l]`.
#[inline]
pub fn cutplane_transpose_accumulate(
    variant: KernelVariant,
    f1: &[f32],
    f2: &[f32],
    f3: &[f32],
    ops: &DerivOps,
    out: &mut [f32],
) {
    match variant {
        KernelVariant::Reference => {
            reference::cutplane_transpose_accumulate(f1, f2, f3, &ops.hprime_wgll_t, out)
        }
        KernelVariant::Simd => {
            simd::cutplane_transpose_accumulate(f1, f2, f3, &ops.hprime_wgll_t, out)
        }
        KernelVariant::BlasStyle => {
            blas_style::cutplane_transpose_accumulate(f1, f2, f3, &ops.hprime_wgll_t, out)
        }
    }
}

/// Dispatch: batched cut-plane derivatives on a lane-major block of `k`
/// event lanes (`u[slot·k + lane]`, `slot` i-fastest). Per lane this is
/// bit-identical to [`cutplane_derivatives`] with the same `variant` —
/// see [`batched`] for the per-variant strategy and the ULP policy.
#[inline]
pub fn batched_cutplane_derivatives(
    variant: KernelVariant,
    u: &[f32],
    k: usize,
    ops: &DerivOps,
    t1: &mut [f32],
    t2: &mut [f32],
    t3: &mut [f32],
) {
    batched::dispatch_derivatives(variant, u, k, ops, t1, t2, t3)
}

/// Dispatch: batched weighted-transpose accumulation on lane-major
/// blocks; per lane bit-identical to [`cutplane_transpose_accumulate`].
#[inline]
pub fn batched_cutplane_transpose_accumulate(
    variant: KernelVariant,
    f1: &[f32],
    f2: &[f32],
    f3: &[f32],
    k: usize,
    ops: &DerivOps,
    out: &mut [f32],
) {
    batched::dispatch_transpose_accumulate(variant, f1, f2, f3, k, ops, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfem_gll::GllBasis;

    fn test_field(seed: u32) -> Vec<f32> {
        let mut v = vec![0.0f32; NGLL3_PADDED];
        for (i, x) in v.iter_mut().take(NGLL3).enumerate() {
            *x = ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f32 / 500.0
                - 1.0;
        }
        v
    }

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .take(NGLL3)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn all_variants_agree_on_derivatives() {
        let ops = DerivOps::from_basis(&GllBasis::new(4));
        let u = test_field(7);
        let mut outs = Vec::new();
        for variant in [
            KernelVariant::Reference,
            KernelVariant::Simd,
            KernelVariant::BlasStyle,
        ] {
            let mut t1 = vec![0.0f32; NGLL3_PADDED];
            let mut t2 = vec![0.0f32; NGLL3_PADDED];
            let mut t3 = vec![0.0f32; NGLL3_PADDED];
            cutplane_derivatives(variant, &u, &ops, &mut t1, &mut t2, &mut t3);
            outs.push((t1, t2, t3));
        }
        for o in &outs[1..] {
            assert!(max_abs_diff(&outs[0].0, &o.0) < 1e-4);
            assert!(max_abs_diff(&outs[0].1, &o.1) < 1e-4);
            assert!(max_abs_diff(&outs[0].2, &o.2) < 1e-4);
        }
    }

    #[test]
    fn all_variants_agree_on_transpose_accumulate() {
        let ops = DerivOps::from_basis(&GllBasis::new(4));
        let f1 = test_field(1);
        let f2 = test_field(2);
        let f3 = test_field(3);
        let mut outs = Vec::new();
        for variant in [
            KernelVariant::Reference,
            KernelVariant::Simd,
            KernelVariant::BlasStyle,
        ] {
            let mut out = test_field(9); // nonzero: checks accumulate semantics
            cutplane_transpose_accumulate(variant, &f1, &f2, &f3, &ops, &mut out);
            outs.push(out);
        }
        for o in &outs[1..] {
            assert!(max_abs_diff(&outs[0], o) < 1e-3);
        }
    }

    #[test]
    fn derivative_of_constant_field_is_zero() {
        let ops = DerivOps::from_basis(&GllBasis::new(4));
        let u = vec![3.5f32; NGLL3_PADDED];
        for variant in [
            KernelVariant::Reference,
            KernelVariant::Simd,
            KernelVariant::BlasStyle,
        ] {
            let mut t1 = vec![0.0f32; NGLL3_PADDED];
            let mut t2 = vec![0.0f32; NGLL3_PADDED];
            let mut t3 = vec![0.0f32; NGLL3_PADDED];
            cutplane_derivatives(variant, &u, &ops, &mut t1, &mut t2, &mut t3);
            for idx in 0..NGLL3 {
                assert!(t1[idx].abs() < 1e-4, "{variant:?} t1[{idx}] = {}", t1[idx]);
                assert!(t2[idx].abs() < 1e-4);
                assert!(t3[idx].abs() < 1e-4);
            }
        }
    }

    #[test]
    fn derivative_matches_exact_on_linear_field() {
        // u(ξ) = ξ along direction 1 → t1 ≡ 1, t2 = t3 ≡ 0.
        let basis = GllBasis::new(4);
        let ops = DerivOps::from_basis(&basis);
        let mut u = vec![0.0f32; NGLL3_PADDED];
        for k in 0..NGLL {
            for j in 0..NGLL {
                for i in 0..NGLL {
                    u[(k * NGLL + j) * NGLL + i] = basis.points[i] as f32;
                }
            }
        }
        let mut t1 = vec![0.0f32; NGLL3_PADDED];
        let mut t2 = vec![0.0f32; NGLL3_PADDED];
        let mut t3 = vec![0.0f32; NGLL3_PADDED];
        cutplane_derivatives(KernelVariant::Simd, &u, &ops, &mut t1, &mut t2, &mut t3);
        for idx in 0..NGLL3 {
            assert!((t1[idx] - 1.0).abs() < 1e-4, "t1[{idx}] = {}", t1[idx]);
            assert!(t2[idx].abs() < 1e-4);
            assert!(t3[idx].abs() < 1e-4);
        }
    }

    /// Adjointness: for the diagonal-mass SEM, `⟨D u, f⟩_w = ⟨u, Dᵀ_w f⟩`
    /// connects the two kernel stages; verify numerically.
    #[test]
    fn transpose_stage_is_weighted_adjoint_of_derivative_stage() {
        let basis = GllBasis::new(4);
        let ops = DerivOps::from_basis(&basis);
        let u = test_field(11);
        let f = test_field(23);
        // lhs = Σ_p w3(p)·t1(p)·f(p) with w3 the tensor weights.
        let mut t1 = vec![0.0f32; NGLL3_PADDED];
        let mut t2 = vec![0.0f32; NGLL3_PADDED];
        let mut t3 = vec![0.0f32; NGLL3_PADDED];
        cutplane_derivatives(
            KernelVariant::Reference,
            &u,
            &ops,
            &mut t1,
            &mut t2,
            &mut t3,
        );
        let w = &basis.weights;
        let mut lhs = 0.0f64;
        for k in 0..NGLL {
            for j in 0..NGLL {
                for i in 0..NGLL {
                    let idx = (k * NGLL + j) * NGLL + i;
                    // Full tensor weight on the derivative side; the
                    // transpose operator already folds in the ξ weight, so
                    // the rhs below carries only w_j·w_k.
                    lhs += (w[i] * w[j] * w[k]) * t1[idx] as f64 * f[idx] as f64;
                }
            }
        }
        // rhs = Σ_p u(p)·(Dᵀ_w f)(p)·w(j)w(k)
        let zero = vec![0.0f32; NGLL3_PADDED];
        let mut dtf = vec![0.0f32; NGLL3_PADDED];
        cutplane_transpose_accumulate(KernelVariant::Reference, &f, &zero, &zero, &ops, &mut dtf);
        let mut rhs = 0.0f64;
        for k in 0..NGLL {
            for j in 0..NGLL {
                for i in 0..NGLL {
                    let idx = (k * NGLL + j) * NGLL + i;
                    rhs += (w[j] * w[k]) * u[idx] as f64 * dtf[idx] as f64;
                }
            }
        }
        assert!(
            (lhs - rhs).abs() < 1e-3 * lhs.abs().max(rhs.abs()).max(1.0),
            "adjointness violated: {lhs} vs {rhs}"
        );
    }
}
