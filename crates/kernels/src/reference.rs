//! Reference kernels: the straightforward loop nests — the "regular
//! Fortran loops" the paper's SSE work was measured against.

use crate::layout::{NGLL, NGLL2};

/// `t1(i,j,k) = Σ_l h[i][l]·u(l,j,k)`, `t2` along `j`, `t3` along `k`.
pub fn cutplane_derivatives(
    u: &[f32],
    h: &[[f32; NGLL]; NGLL],
    t1: &mut [f32],
    t2: &mut [f32],
    t3: &mut [f32],
) {
    for k in 0..NGLL {
        for j in 0..NGLL {
            for i in 0..NGLL {
                let mut a1 = 0.0f32;
                let mut a2 = 0.0f32;
                let mut a3 = 0.0f32;
                for l in 0..NGLL {
                    a1 += h[i][l] * u[(k * NGLL + j) * NGLL + l];
                    a2 += h[j][l] * u[(k * NGLL + l) * NGLL + i];
                    a3 += h[k][l] * u[(l * NGLL + j) * NGLL + i];
                }
                let idx = (k * NGLL + j) * NGLL + i;
                t1[idx] = a1;
                t2[idx] = a2;
                t3[idx] = a3;
            }
        }
    }
}

/// `out(i,j,k) += Σ_l w[i][l]·f1(l,j,k) + Σ_l w[j][l]·f2(i,l,k)
///             + Σ_l w[k][l]·f3(i,j,l)` with `w` the weighted-transpose
/// operator.
pub fn cutplane_transpose_accumulate(
    f1: &[f32],
    f2: &[f32],
    f3: &[f32],
    w: &[[f32; NGLL]; NGLL],
    out: &mut [f32],
) {
    for k in 0..NGLL {
        for j in 0..NGLL {
            for i in 0..NGLL {
                let mut acc = 0.0f32;
                for l in 0..NGLL {
                    acc += w[i][l] * f1[(k * NGLL + j) * NGLL + l]
                        + w[j][l] * f2[(k * NGLL + l) * NGLL + i]
                        + w[k][l] * f3[(l * NGLL + j) * NGLL + i];
                }
                out[(k * NGLL + j) * NGLL + i] += acc;
            }
        }
    }
}

/// Unpadded-layout variant used only by the padding ablation: identical
/// math on a tightly packed `125`-float block whose *neighbouring elements*
/// therefore straddle cache lines. The function body is the same; the
/// layout difference matters when arrays of blocks are traversed, which is
/// what the benchmark measures.
pub fn cutplane_derivatives_unpadded(
    u: &[f32],
    h: &[[f32; NGLL]; NGLL],
    t1: &mut [f32],
    t2: &mut [f32],
    t3: &mut [f32],
) {
    debug_assert!(u.len() >= NGLL * NGLL2);
    cutplane_derivatives(u, h, t1, t2, t3);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::NGLL3;

    #[test]
    fn transpose_accumulate_adds_not_overwrites() {
        let f = vec![1.0f32; NGLL3];
        let zero = vec![0.0f32; NGLL3];
        let w = [[0.0f32; NGLL]; NGLL];
        let mut out = vec![5.0f32; NGLL3];
        cutplane_transpose_accumulate(&f, &zero, &zero, &w, &mut out);
        // zero operator → out unchanged
        assert!(out.iter().all(|&v| v == 5.0));
    }

    #[test]
    fn identity_operator_reproduces_sums() {
        // w = identity → out(i,j,k) += f1(i,j,k)+f2(i,j,k)+f3(i,j,k).
        let mut w = [[0.0f32; NGLL]; NGLL];
        for i in 0..NGLL {
            w[i][i] = 1.0;
        }
        let f1: Vec<f32> = (0..NGLL3).map(|i| i as f32).collect();
        let f2: Vec<f32> = (0..NGLL3).map(|i| 2.0 * i as f32).collect();
        let f3: Vec<f32> = (0..NGLL3).map(|i| 3.0 * i as f32).collect();
        let mut out = vec![0.0f32; NGLL3];
        cutplane_transpose_accumulate(&f1, &f2, &f3, &w, &mut out);
        for idx in 0..NGLL3 {
            assert_eq!(out[idx], 6.0 * idx as f32);
        }
    }
}
