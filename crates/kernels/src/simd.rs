//! Manual 4+1-lane vectorized kernels — the Rust analog of the paper's
//! hand-written SSE/Altivec path (§4.3).
//!
//! "Since our matrices are of size 5 x 5 and not 4 x 4, we use vector
//! instructions for 4 out of each set of 5 values and compute the last one
//! serially" — here the 4-lane vector is an explicit `[f32; 4]` with
//! per-lane multiply-add, which stable Rust compiles to SSE/NEON vector
//! instructions, and the 5th value is handled scalar, exactly mirroring the
//! paper's scheme. Blocks are expected padded/aligned per [`crate::layout`].

use crate::layout::NGLL;

#[inline(always)]
fn load4(s: &[f32], off: usize) -> [f32; 4] {
    [s[off], s[off + 1], s[off + 2], s[off + 3]]
}

#[inline(always)]
fn madd4(acc: &mut [f32; 4], a: [f32; 4], b: f32) {
    // One vector multiply-add: the paper's MADD as multiply-then-add.
    acc[0] += a[0] * b;
    acc[1] += a[1] * b;
    acc[2] += a[2] * b;
    acc[3] += a[3] * b;
}

#[inline(always)]
fn store4(d: &mut [f32], off: usize, v: [f32; 4]) {
    d[off] = v[0];
    d[off + 1] = v[1];
    d[off + 2] = v[2];
    d[off + 3] = v[3];
}

/// Vectorized cut-plane derivatives (see
/// [`crate::reference::cutplane_derivatives`] for the definition).
pub fn cutplane_derivatives(
    u: &[f32],
    h: &[[f32; NGLL]; NGLL],
    t1: &mut [f32],
    t2: &mut [f32],
    t3: &mut [f32],
) {
    // Columns of h for the i-direction product: hcol[l] = (h[0][l]..h[3][l]),
    // plus the scalar 5th row.
    let mut hcol = [[0.0f32; 4]; NGLL];
    let mut h4 = [0.0f32; NGLL];
    for l in 0..NGLL {
        for i in 0..4 {
            hcol[l][i] = h[i][l];
        }
        h4[l] = h[4][l];
    }
    for k in 0..NGLL {
        for j in 0..NGLL {
            let row = (k * NGLL + j) * NGLL;
            // --- t1: derivative along i (vector over output lanes i=0..3,
            //     broadcast u(l,j,k)) -------------------------------------
            let mut acc = [0.0f32; 4];
            let mut acc4 = 0.0f32;
            for l in 0..NGLL {
                let ul = u[row + l];
                madd4(&mut acc, hcol[l], ul);
                acc4 += h4[l] * ul;
            }
            store4(t1, row, acc);
            t1[row + 4] = acc4;

            // --- t2: derivative along j (vector over i, broadcast h[j][l]) -
            let mut acc = [0.0f32; 4];
            let mut acc4 = 0.0f32;
            for l in 0..NGLL {
                let src = (k * NGLL + l) * NGLL;
                let hjl = h[j][l];
                madd4(&mut acc, load4(u, src), hjl);
                acc4 += u[src + 4] * hjl;
            }
            store4(t2, row, acc);
            t2[row + 4] = acc4;

            // --- t3: derivative along k (vector over i, broadcast h[k][l]) -
            let mut acc = [0.0f32; 4];
            let mut acc4 = 0.0f32;
            for l in 0..NGLL {
                let src = (l * NGLL + j) * NGLL;
                let hkl = h[k][l];
                madd4(&mut acc, load4(u, src), hkl);
                acc4 += u[src + 4] * hkl;
            }
            store4(t3, row, acc);
            t3[row + 4] = acc4;
        }
    }
}

/// Vectorized weighted-transpose accumulation (see
/// [`crate::reference::cutplane_transpose_accumulate`]).
pub fn cutplane_transpose_accumulate(
    f1: &[f32],
    f2: &[f32],
    f3: &[f32],
    w: &[[f32; NGLL]; NGLL],
    out: &mut [f32],
) {
    let mut wcol = [[0.0f32; 4]; NGLL];
    let mut w4 = [0.0f32; NGLL];
    for l in 0..NGLL {
        for i in 0..4 {
            wcol[l][i] = w[i][l];
        }
        w4[l] = w[4][l];
    }
    for k in 0..NGLL {
        for j in 0..NGLL {
            let row = (k * NGLL + j) * NGLL;
            let mut acc = load4(out, row);
            let mut acc4 = out[row + 4];
            for l in 0..NGLL {
                // f1 term: lanes over output i, broadcast f1(l,j,k).
                let f1l = f1[row + l];
                madd4(&mut acc, wcol[l], f1l);
                acc4 += w4[l] * f1l;
                // f2 term: vector load over i, broadcast w[j][l].
                let src2 = (k * NGLL + l) * NGLL;
                let wjl = w[j][l];
                madd4(&mut acc, load4(f2, src2), wjl);
                acc4 += f2[src2 + 4] * wjl;
                // f3 term.
                let src3 = (l * NGLL + j) * NGLL;
                let wkl = w[k][l];
                madd4(&mut acc, load4(f3, src3), wkl);
                acc4 += f3[src3 + 4] * wkl;
            }
            store4(out, row, acc);
            out[row + 4] = acc4;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{NGLL3, NGLL3_PADDED};
    use crate::reference;

    #[test]
    fn simd_matches_reference_exhaustively_on_basis_vectors() {
        // Drive each kernel with every unit-impulse input; equality on all
        // 125 basis vectors implies equality as linear operators.
        let mut h = [[0.0f32; NGLL]; NGLL];
        for i in 0..NGLL {
            for l in 0..NGLL {
                h[i][l] = (i * NGLL + l) as f32 * 0.17 - 1.3;
            }
        }
        for unit in 0..NGLL3 {
            let mut u = vec![0.0f32; NGLL3_PADDED];
            u[unit] = 1.0;
            let mut r = (
                vec![0.0f32; NGLL3_PADDED],
                vec![0.0f32; NGLL3_PADDED],
                vec![0.0f32; NGLL3_PADDED],
            );
            let mut s = r.clone();
            reference::cutplane_derivatives(&u, &h, &mut r.0, &mut r.1, &mut r.2);
            cutplane_derivatives(&u, &h, &mut s.0, &mut s.1, &mut s.2);
            assert_eq!(r.0[..NGLL3], s.0[..NGLL3], "t1 differs for impulse {unit}");
            assert_eq!(r.1[..NGLL3], s.1[..NGLL3], "t2 differs for impulse {unit}");
            assert_eq!(r.2[..NGLL3], s.2[..NGLL3], "t3 differs for impulse {unit}");
        }
    }

    #[test]
    fn simd_transpose_matches_reference_on_impulses() {
        let mut w = [[0.0f32; NGLL]; NGLL];
        for i in 0..NGLL {
            for l in 0..NGLL {
                w[i][l] = ((i + 2 * l) % 7) as f32 * 0.31 - 0.8;
            }
        }
        for unit in (0..NGLL3).step_by(7) {
            let mut f = vec![0.0f32; NGLL3_PADDED];
            f[unit] = 2.0;
            for role in 0..3 {
                let zero = vec![0.0f32; NGLL3_PADDED];
                let (f1, f2, f3) = match role {
                    0 => (&f, &zero, &zero),
                    1 => (&zero, &f, &zero),
                    _ => (&zero, &zero, &f),
                };
                let mut out_ref = vec![1.0f32; NGLL3_PADDED];
                let mut out_simd = vec![1.0f32; NGLL3_PADDED];
                reference::cutplane_transpose_accumulate(f1, f2, f3, &w, &mut out_ref);
                cutplane_transpose_accumulate(f1, f2, f3, &w, &mut out_simd);
                // Identical math per-lane; roundoff order differs only in
                // the accumulation order of the three terms.
                for idx in 0..NGLL3 {
                    assert!(
                        (out_ref[idx] - out_simd[idx]).abs() < 1e-5,
                        "role {role} impulse {unit} idx {idx}"
                    );
                }
            }
        }
    }
}
