//! The §6 science-run analog: "simulation of a few seconds of an
//! earthquake in Argentina with attenuation turned on", distributed over a
//! simulated MPI world, with IPM-style communication statistics and the
//! PSiNSlight-style sustained-flops measurement.
//!
//! Run with: `cargo run --release --example argentina_earthquake`

use specfem_core::{NetworkProfile, Simulation};

fn main() {
    let nex = 8;
    let nproc = 2; // 6 × 2² = 24 ranks
    println!(
        "== Argentina deep-slab event, attenuation on, {} ranks ==",
        6 * nproc * nproc
    );

    let sim = Simulation::builder()
        .resolution(nex)
        .processors(nproc)
        .steps(200)
        .attenuation(true)
        .rotation(true)
        .catalogue_event("argentina_deep")
        .stations(12)
        .build()
        .expect("valid configuration");

    let result = sim.run_parallel(NetworkProfile::xt4_seastar2());

    // Load balance (abstract: "excellent load balancing").
    let loads: Vec<usize> = result.ranks.iter().map(|r| r.nspec).collect();
    let (min, max) = (loads.iter().min().unwrap(), loads.iter().max().unwrap());
    println!(
        "load balance: {min}–{max} elements/rank (imbalance {:.1} %)",
        100.0 * (*max as f64 - *min as f64) / *max as f64
    );

    // IPM-analog communication summary (§5: 1.9–4.2 %, average 3.2 %).
    let fractions: Vec<f64> = result.ranks.iter().map(|r| r.comm_fraction()).collect();
    let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
    println!(
        "communication share of main loop: mean {:.1} % (min {:.1} %, max {:.1} %)",
        100.0 * mean,
        100.0 * fractions.iter().cloned().fold(f64::INFINITY, f64::min),
        100.0 * fractions.iter().cloned().fold(0.0, f64::max),
    );
    let total_bytes: u64 = result.ranks.iter().map(|r| r.comm.bytes_sent).sum();
    println!(
        "total MPI traffic: {:.1} MB over {} messages",
        total_bytes as f64 / 1e6,
        result
            .ranks
            .iter()
            .map(|r| r.comm.messages_sent)
            .sum::<u64>()
    );

    // PSiNS-analog flops.
    println!(
        "sustained {:.2} Gflop/s aggregate over {} ranks",
        result.total_flop_rate() / 1e9,
        result.ranks.len()
    );

    // Seismograms.
    for seis in result.seismograms.iter().take(5) {
        let peak = seis
            .data
            .iter()
            .flat_map(|v| v.iter())
            .fold(0.0f32, |m, &x| m.max(x.abs()));
        println!("  {}: peak |v| = {peak:.3e} m/s", seis.station);
    }
    println!("  … {} stations total", result.seismograms.len());
}
