//! Attenuation physics study: how anelasticity (3-SLS memory variables)
//! damps and disperses the wavefield, and what it costs (paper §6:
//! "a 1.8 increase in execution time but only an almost imperceptible drop
//! in Tflops").
//!
//! Run with: `cargo run --release --example attenuation_study`

use specfem_core::solver::SourceSpec;
use specfem_core::SourceTimeFunction;
use specfem_core::{Simulation, StfKind};

fn run(attenuation: bool) -> (f64, f64, Vec<f32>) {
    let sim = Simulation::builder()
        .resolution(6)
        .steps(300)
        .attenuation(attenuation)
        .source(SourceSpec::PointForce {
            position: [0.0, 0.0, 5.8e6],
            force: [0.0, 0.0, 1.0e18],
            stf: SourceTimeFunction::new(StfKind::Ricker, 120.0),
        })
        .station_list(vec![specfem_core::Station {
            name: "FARFIELD".into(),
            lat_deg: -30.0,
            lon_deg: 0.0,
        }])
        .build()
        .expect("valid configuration");
    let result = sim.run_serial();
    let rank = &result.ranks[0];
    let trace: Vec<f32> = result.seismograms[0].data.iter().map(|v| v[2]).collect();
    (rank.elapsed_s, rank.flops as f64 / rank.elapsed_s, trace)
}

fn main() {
    println!("== Attenuation study (paper §6) ==");
    let (t_el, rate_el, trace_el) = run(false);
    let (t_an, rate_an, trace_an) = run(true);

    println!("elastic:    {t_el:.2} s wall, {:.2} Gflop/s", rate_el / 1e9);
    println!("anelastic:  {t_an:.2} s wall, {:.2} Gflop/s", rate_an / 1e9);
    println!(
        "runtime ratio {:.2}× (paper: 1.8×); flop-rate change {:+.1} %",
        t_an / t_el,
        100.0 * (rate_an - rate_el) / rate_el
    );

    let peak = |t: &[f32]| t.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    let (p_el, p_an) = (peak(&trace_el), peak(&trace_an));
    println!();
    println!("far-field vertical peak: elastic {p_el:.3e} m/s, anelastic {p_an:.3e} m/s");
    println!(
        "amplitude ratio {:.3} — anelastic waves arrive smaller (physical dissipation)",
        p_an / p_el
    );
}
