//! Traced run with the full observability pipeline (paper §5).
//!
//! Runs a small 24-rank global simulation with span tracing on, prints
//! the IPM-style cross-rank report, and writes the artifacts — the
//! Perfetto timeline (load `trace.perfetto.json` at https://ui.perfetto.dev)
//! and the machine-readable report — to `OUTPUT_FILES/observability/`.
//!
//! Run with: `cargo run --release --example observability`

use specfem_core::{NetworkProfile, Simulation};

fn main() {
    let out_dir = std::path::PathBuf::from("OUTPUT_FILES/observability");
    let sim = Simulation::builder()
        .resolution(8)
        .processors(2) // 6·2² = 24 ranks
        .steps(20)
        .catalogue_event("argentina_deep")
        .stations(4)
        .trace_dir(&out_dir)
        .metrics_every(5)
        .build()
        .expect("valid configuration");

    let result = sim.run_parallel(NetworkProfile::xt4_seastar2());

    print!("{}", result.ipm_report().render_text());

    if let Some(mesher) = &result.mesher_profile {
        println!(
            "mesher: {} spans recorded on the driver thread",
            mesher.trace.events.len()
        );
    }
    let solver_spans: usize = result
        .ranks
        .iter()
        .filter_map(|r| r.profile.as_ref())
        .map(|p| p.trace.events.len())
        .sum();
    println!(
        "solver: {} spans over {} ranks, {:.2} Gflop/s sustained",
        solver_spans,
        result.ranks.len(),
        result.total_flop_rate() / 1e9
    );
    println!("artifacts written to {}/", out_dir.display());
}
