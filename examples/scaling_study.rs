//! Strong-scaling study: the same physical problem on growing rank counts,
//! demonstrating the paper's §5 observations on a laptop-scale analog —
//! total core-seconds roughly constant with rank count, per-core
//! communication time falling, communication staying a small share.
//!
//! Run with: `cargo run --release --example scaling_study`

use specfem_core::{NetworkProfile, Simulation};

fn main() {
    let nex = 8;
    let steps = 60;
    println!("== Strong scaling, NEX = {nex}, {steps} steps ==");
    println!(
        "{:>6} {:>10} {:>14} {:>16} {:>10}",
        "ranks", "wall (s)", "core-sec", "comm/core (ms)", "comm %"
    );

    let mut rows = Vec::new();
    for nproc in [1usize, 2] {
        let sim = Simulation::builder()
            .resolution(nex)
            .processors(nproc)
            .steps(steps)
            .catalogue_event("sumatra_thrust")
            .build()
            .expect("valid configuration");
        let result = sim.run_parallel(NetworkProfile::ranger_infiniband());
        let ranks = result.ranks.len();
        let wall = result
            .ranks
            .iter()
            .map(|r| r.elapsed_s)
            .fold(0.0f64, f64::max);
        let core_sec = result.total_core_seconds();
        let comm_per_core =
            result.ranks.iter().map(|r| r.comm.wall_time_s).sum::<f64>() / ranks as f64;
        let pct = 100.0 * result.mean_comm_fraction();
        println!(
            "{ranks:>6} {wall:>10.2} {core_sec:>14.2} {:>16.2} {pct:>9.1}%",
            comm_per_core * 1e3
        );
        rows.push((ranks, core_sec, comm_per_core));
    }

    // The §5 claims, checked on our own data:
    let (r1, cs1, cc1) = rows[0];
    let (r2, cs2, cc2) = rows[1];
    println!();
    println!(
        "total core-seconds {} ranks → {} ranks: ×{:.2} (paper: ≈ constant at fixed resolution)",
        r1,
        r2,
        cs2 / cs1
    );
    println!(
        "per-core comm time: ×{:.2} (paper: decreases as ranks grow)",
        cc2 / cc1.max(1e-12)
    );
}
