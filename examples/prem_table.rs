//! Print the PREM model as a depth table plus derived quantities — a
//! numerical reference for users (compare with Dziewonski & Anderson 1981,
//! Table 1).
//!
//! Run with: `cargo run --release --example prem_table`

use specfem_core::model::{EarthModel, GravityProfile, Prem, EARTH_RADIUS_M};

fn main() {
    let prem = Prem::default();
    let gravity = GravityProfile::new(&prem, 512);
    println!("== PREM (Dziewonski & Anderson 1981) ==");
    println!(
        "{:>10} {:>10} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "depth(km)", "r(km)", "ρ(kg/m³)", "vp(m/s)", "vs(m/s)", "Qμ", "g(m/s²)"
    );
    let depths_km = [
        0.0, 15.0, 24.4, 100.0, 220.0, 400.0, 670.0, 1000.0, 2000.0, 2891.0, 3500.0, 4500.0,
        5149.5, 5500.0, 6371.0,
    ];
    for &d in &depths_km {
        let r = EARTH_RADIUS_M - d * 1000.0;
        let m = prem.material_at(r, d > 0.0);
        let q = if m.q_mu.is_finite() {
            format!("{:.0}", m.q_mu)
        } else {
            "∞".into()
        };
        println!(
            "{d:>10.1} {:>10.1} {:>9.0} {:>9.0} {:>9.0} {q:>8} {:>8.2}",
            r / 1000.0,
            m.rho,
            m.vp,
            m.vs,
            gravity.g_at(r)
        );
    }
    println!();
    println!(
        "total mass: {:.4e} kg (Earth: 5.972e24)",
        gravity.total_mass()
    );
    println!(
        "surface gravity: {:.3} m/s² — CMB gravity: {:.3} m/s²",
        gravity.g_at(EARTH_RADIUS_M),
        gravity.g_at(specfem_core::model::CMB_RADIUS_M)
    );
}
