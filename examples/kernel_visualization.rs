//! Compute and export an adjoint β-sensitivity kernel (the classic
//! "banana–doughnut" object of ref [13]) as a CSV point cloud.
//!
//! Run with: `cargo run --release --example kernel_visualization`

use specfem_core::mesh::{GlobalMesh, MeshParams, Partition};
use specfem_core::model::{HomogeneousModel, SourceTimeFunction, StfKind};
use specfem_core::solver::assemble::PrecomputedGeometry;
use specfem_core::solver::{run_serial, shear_kernel, SolverConfig, SourceSpec};
use specfem_core::Station;

fn main() {
    let params = MeshParams::new(4, 1);
    let mesh = GlobalMesh::build(&params, &HomogeneousModel::default());

    let src = [0.0, 0.0, 5.5e6];
    let station = Station {
        name: "RX".into(),
        lat_deg: 50.0,
        lon_deg: 0.0,
    };
    let nsteps = 200;
    println!("== β sensitivity kernel: forward run ==");
    let fwd = run_serial(
        &mesh,
        &SolverConfig {
            nsteps,
            snapshot_every: 5,
            source: SourceSpec::PointForce {
                position: src,
                force: [0.0, 0.0, 1.0e18],
                stf: SourceTimeFunction::new(StfKind::Ricker, 150.0),
            },
            exact_station_location: true,
            ..SolverConfig::default()
        },
        std::slice::from_ref(&station),
    );
    let seis = &fwd.seismograms[0];
    println!("== adjoint run (time-reversed receiver trace) ==");
    let mut trace: Vec<[f32; 3]> = seis
        .data
        .iter()
        .rev()
        .map(|v| [v[0] * 1e18, v[1] * 1e18, v[2] * 1e18])
        .collect();
    trace.push([0.0; 3]);
    let adj = run_serial(
        &mesh,
        &SolverConfig {
            nsteps,
            snapshot_every: 5,
            source: SourceSpec::Trace {
                position: station.position(),
                trace,
                trace_dt: seis.dt,
            },
            ..SolverConfig::default()
        },
        &[],
    );

    let local = Partition::serial(&mesh).extract(&mesh, 0);
    let geom = PrecomputedGeometry::compute(&local, None);
    let kernel = shear_kernel(
        &local,
        &geom,
        fwd.snapshots.as_ref().unwrap(),
        adj.snapshots.as_ref().unwrap(),
    );

    // Export element-centre values.
    let n3 = local.points_per_element();
    let centre = n3 / 2;
    let out = std::env::temp_dir().join("specfem_kernel.csv");
    let mut body = String::from("x_km,y_km,z_km,k_beta\n");
    let mut peak = 0.0f32;
    for e in 0..local.nspec {
        let p = local.coords[local.ibool[e * n3 + centre] as usize];
        let k = kernel[e * n3 + centre];
        peak = peak.max(k.abs());
        body.push_str(&format!(
            "{:.1},{:.1},{:.1},{:.6e}\n",
            p[0] / 1e3,
            p[1] / 1e3,
            p[2] / 1e3,
            k
        ));
    }
    std::fs::write(&out, body).expect("write kernel csv");
    println!(
        "kernel peak |K_β| = {peak:.3e}; {} element centres → {}",
        local.nspec,
        out.display()
    );

    // Crude concentration readout.
    let (mut near, mut far) = (0.0f64, 0.0f64);
    let (mut nn, mut nf) = (0usize, 0usize);
    for e in 0..local.nspec {
        let p = local.coords[local.ibool[e * n3 + centre] as usize];
        let k = kernel[e * n3 + centre].abs() as f64;
        if p[2] > 0.0 {
            near += k;
            nn += 1;
        } else {
            far += k;
            nf += 1;
        }
    }
    println!(
        "mean |K| source-receiver hemisphere: {:.3e}; antipodal: {:.3e} (ratio {:.1})",
        near / nn as f64,
        far / nf as f64,
        (near / nn as f64) / (far / nf as f64).max(1e-300)
    );
}
