//! A multi-event campaign: run the whole built-in CMT catalogue against
//! one shared Earth mesh on a bounded worker pool, with mesh-affinity
//! scheduling, automatic retry, and a campaign report.
//!
//! ```sh
//! cargo run --release --example event_campaign
//! ```

use specfem_campaign::{Campaign, CampaignConfig, Job, SchedulePolicy};
use specfem_core::model::builtin_events;
use specfem_core::{Simulation, SourceSpec, SourceTimeFunction, StfKind};

fn main() {
    let events = builtin_events();
    println!(
        "campaign over {} catalogue events (shared NEX-8 PREM mesh)",
        events.len()
    );

    let mut campaign = Campaign::new(CampaignConfig {
        workers: 0, // auto-size to the machine
        policy: SchedulePolicy::MeshAffinity,
        mesh_cache_bytes: 256 << 20,
        ..CampaignConfig::default()
    });
    for (i, event) in events.into_iter().enumerate() {
        let name = event.name.clone();
        let sim = Simulation::builder()
            .resolution(8)
            .steps(40)
            .stations(6)
            .source(SourceSpec::Cmt {
                event,
                stf: SourceTimeFunction::new(StfKind::Ricker, 200.0),
            })
            .build()
            .expect("catalogue event simulation");
        // Deep events first, as a priority demo.
        campaign.submit(Job::new(name, sim).priority(-(i as i32)));
    }

    let result = campaign.finish();
    print!("{}", result.report.render_text());
    assert!(result.all_ok(), "campaign had failed jobs");

    let out = std::path::Path::new("OUTPUT_FILES");
    std::fs::create_dir_all(out).expect("create OUTPUT_FILES");
    std::fs::write(out.join("campaign_report.json"), result.report.to_json())
        .expect("write campaign report");
    std::fs::write(
        out.join("campaign_timeline.perfetto.json"),
        result.perfetto_json(),
    )
    .expect("write campaign timeline");
    println!(
        "wrote OUTPUT_FILES/campaign_report.json and campaign_timeline.perfetto.json \
         (load the timeline at ui.perfetto.dev)"
    );
}
