//! Quickstart: a small global earthquake simulation, serially.
//!
//! Meshes the whole Earth at low resolution (NEX = 8), puts a deep
//! Argentina-like moment-tensor source in the slab, records at six
//! worldwide stations, and prints seismogram summaries plus the solver's
//! sustained flop rate.
//!
//! Run with: `cargo run --release --example quickstart`

use specfem_core::Simulation;

fn main() {
    let nex = 8;
    println!("== SPECFEM3D_GLOBE-rs quickstart ==");
    println!(
        "NEX_XI = {nex} → nominal shortest period {:.1} s",
        specfem_core::mesh::nominal_shortest_period_s(nex)
    );

    let sim = Simulation::builder()
        .resolution(nex)
        .processors(1)
        .steps(300)
        .catalogue_event("argentina_deep")
        .stations(6)
        .build()
        .expect("valid configuration");

    let result = sim.run_serial();
    let rank = &result.ranks[0];
    println!(
        "mesh: {} elements, {} global points, dt = {:.3} s",
        rank.nspec, rank.nglob, result.dt
    );
    println!(
        "ran {} steps in {:.2} s — sustained {:.2} Gflop/s",
        rank.nsteps,
        rank.elapsed_s,
        result.total_flop_rate() / 1e9
    );

    let sim_seconds = result.dt * result.ranks[0].nsteps as f64;
    println!("simulated {sim_seconds:.0} s of wave propagation:");
    for seis in &result.seismograms {
        let peak = seis
            .data
            .iter()
            .flat_map(|v| v.iter())
            .fold(0.0f32, |m, &x| m.max(x.abs()));
        // Below ~1e-15 m/s the station has only numerical noise — the
        // wavefront has not arrived within the simulated window.
        if peak < 1e-15 {
            println!("  {}: wavefront not yet arrived", seis.station);
            continue;
        }
        let first = seis
            .data
            .iter()
            .position(|v| v.iter().any(|&x| x.abs() > 0.05 * peak))
            .map(|i| i as f64 * seis.dt)
            .unwrap_or(0.0);
        println!(
            "  {}: peak |v| = {peak:.3e} m/s, first motion ≈ {first:.0} s",
            seis.station
        );
    }
    println!("(longer runs propagate the wavefront further — raise `steps`)");
}
