//! Regional single-chunk simulation with absorbing boundaries — the
//! mesher's second mode (paper §3: "regional or entire globe"), with the
//! artificial absorbing boundary Γ of Figure 1 on the chunk sides and
//! bottom.
//!
//! Run with: `cargo run --release --example regional_simulation`

use specfem_core::solver::SourceSpec;
use specfem_core::{Simulation, SourceTimeFunction, StfKind};

fn main() {
    // One chunk from the 670-km discontinuity to the surface.
    let r_min = 5_701_000.0;
    println!("== Regional simulation: +Z chunk, 670 km → surface ==");

    let sim = Simulation::builder()
        .resolution(8)
        .processors(1)
        .regional(r_min)
        .steps(400)
        .source(SourceSpec::PointForce {
            position: [0.0, 0.0, 6_250_000.0], // 121 km depth under the pole
            force: [0.0, 0.0, 1.0e17],
            stf: SourceTimeFunction::new(StfKind::Ricker, 40.0),
        })
        .station_list(vec![
            specfem_core::Station {
                name: "NEARPOLE".into(),
                lat_deg: 82.0,
                lon_deg: 10.0,
            },
            specfem_core::Station {
                name: "CHUNKEDGE".into(),
                lat_deg: 56.0,
                lon_deg: 40.0,
            },
        ])
        .energy_every(40)
        .build()
        .expect("valid regional configuration");

    let result = sim.run_serial();
    let rank = &result.ranks[0];
    println!(
        "mesh: {} elements (single chunk, no cube/fluid), dt = {:.3} s",
        rank.nspec, result.dt
    );

    // Energy decays as the wave leaves through the absorbing boundary.
    println!("energy history (should decay once the wave reaches Γ):");
    for (step, ke, pe) in &rank.energy {
        println!("  step {step:>5}: total {:.3e} J", ke + pe);
    }

    for seis in &result.seismograms {
        let peak = seis
            .data
            .iter()
            .flat_map(|v| v.iter())
            .fold(0.0f32, |m, &x| m.max(x.abs()));
        println!("  {}: peak |v| = {peak:.3e} m/s", seis.station);
    }
}
