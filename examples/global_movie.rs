//! Surface "movie" frames: sample the global shaking field as the wave
//! from a deep earthquake sweeps the surface (SPECFEM's movie output in
//! miniature), writing CSV frames for plotting.
//!
//! Run with: `cargo run --release --example global_movie`

use specfem_core::comm::SerialComm;
use specfem_core::mesh::{GlobalMesh, MeshParams, Partition};
use specfem_core::model::Prem;
use specfem_core::solver::surface::SurfaceField;
use specfem_core::solver::{RankSolver, SolverConfig, SourceSpec};
use specfem_core::{builtin_events, SourceTimeFunction, StfKind};

fn main() {
    let params = MeshParams::new(6, 1);
    let mesh = GlobalMesh::build(&params, &Prem::isotropic_no_ocean());
    let local = Partition::serial(&mesh).extract(&mesh, 0);

    let event = builtin_events().remove(0); // argentina_deep
    let config = SolverConfig {
        nsteps: 240,
        source: SourceSpec::Cmt {
            stf: SourceTimeFunction::new(StfKind::Gaussian, 60.0),
            event,
        },
        ..SolverConfig::default()
    };
    let mut comm = SerialComm::new();
    let mut solver = RankSolver::new(local, &config, &[], &mut comm);
    let surface = SurfaceField::build(&solver.mesh);
    let latlon = surface.latlon();
    println!(
        "== global movie: {} surface points, dt = {:.2} s ==",
        surface.points.len(),
        solver.dt
    );

    let out = std::env::temp_dir().join("specfem_movie");
    std::fs::create_dir_all(&out).expect("movie dir");
    let mut frame_no = 0;
    for istep in 0..config.nsteps {
        solver.step(istep, &mut comm).expect("time step failed");
        if istep % 40 == 39 {
            let frame = surface.frame(&solver.fields);
            let path = out.join(format!("frame_{frame_no:03}.csv"));
            let mut body = String::from("lat,lon,vel_magnitude\n");
            for ((lat, lon), v) in latlon.iter().zip(&frame) {
                body.push_str(&format!("{lat:.3},{lon:.3},{v:.6e}\n"));
            }
            std::fs::write(&path, body).expect("write frame");
            let peak = frame.iter().cloned().fold(0.0f32, f32::max);
            let lit = frame.iter().filter(|&&v| v > 0.05 * peak).count();
            println!(
                "t = {:7.1} s: peak |v| = {peak:.3e} m/s, {lit:5} points above 5 % → {}",
                (istep + 1) as f64 * solver.dt,
                path.display()
            );
            frame_no += 1;
        }
    }
    println!("frames written to {}", out.display());
}
