//! Regenerate the paper's §6 results table and §5/§7 extrapolations from
//! the performance models — no heavy compute, just the models.
//!
//! Run with: `cargo run --release --example performance_prediction`

use specfem_core::perf::{paper_runs_table, MachineProfile};

fn main() {
    println!("== Machines of paper §5 ==");
    for make in specfem_core::perf::ALL_MACHINES {
        let m = make();
        println!(
            "  {:<40} {:>7} cores  {:>5.1} GF/core peak  {:>5.2} GF/core sustained",
            m.name,
            m.total_cores,
            m.peak_gflops_per_core,
            m.sustained_gflops_per_core()
        );
    }

    println!();
    println!("== §6 results table (model vs paper) ==");
    println!(
        "{:<40} {:>7} {:>7} {:>9} {:>11} {:>9}",
        "machine", "cores", "NEX", "T_min (s)", "model TF", "paper TF"
    );
    for run in paper_runs_table() {
        println!(
            "{:<40} {:>7} {:>7} {:>9.2} {:>11.1} {:>9}",
            run.machine,
            run.cores,
            run.nex,
            run.period_s,
            run.sustained_tflops,
            run.paper_tflops
                .map(|t| format!("{t:.1}"))
                .unwrap_or_else(|| "—".into()),
        );
    }

    println!();
    println!("== Memory-capacity resolution limits (paper §4: 1–2 s needs ~62K cores) ==");
    let ranger = MachineProfile::ranger();
    for cores in [12_000usize, 32_000, 48_000, 62_000] {
        let nex = ranger.max_nex_for_cores(cores);
        println!(
            "  Ranger {cores:>6} cores → max NEX {nex:>5} → shortest period {:.2} s",
            specfem_core::mesh::nominal_shortest_period_s(nex)
        );
    }
}
